//! The `alertops` command-line tool: simulate a cloud, govern its alert
//! stream, lint strategies, and hunt storms — from a shell.
//!
//! ```text
//! alertops simulate --scenario mini-study --seed 7 [--json out.json]
//! alertops govern   --scenario quickstart --seed 7 [--top N]
//! alertops lint     --scenario quickstart --seed 7
//! alertops storms   --scenario mini-study --seed 7 [--threshold 100]
//! alertops audit    --scenario mini-study --seed 7
//! alertops ingestd  --scenario study --shards 4 [--listen ADDR] [--status ADDR] [--wal DIR]
//! alertops cluster  --scenario study --nodes 3 [--shards N] [--wal DIR] [--flush-every N]
//! alertops replay   --scenario study [--connect ADDR] [--rate N] [--shutdown]
//! alertops metrics  [--status ADDR]
//! ```
//!
//! Every subcommand runs a named scenario (there is no external data to
//! load — the simulator *is* the data source, see DESIGN.md) and prints
//! human-readable output; `--json FILE` additionally dumps the full
//! machine-readable result.
//!
//! `ingestd` runs the sharded ingestion daemon (see `alertops::ingestd`)
//! with per-shard streaming governors built from the scenario's catalog;
//! with `--wal DIR` it journals every accepted alert to a durable
//! write-ahead log and replays the log on startup (lossless restart,
//! `kill -9` included). `cluster` runs an N-node in-process cluster
//! (see `alertops::cluster`) over the scenario trace: range routing,
//! per-node WALs, and one merged governance snapshot per window.
//! `replay` streams the scenario's alert trace into a running daemon
//! over NDJSON/TCP, closing windows along the way; `metrics` scrapes a
//! running daemon's Prometheus text exposition from its status socket.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use alertops::core::prelude::*;
use alertops::ingestd::codec::encode_alert;
use alertops::ingestd::{
    shard_catalog, Ingestd, IngestdConfig, OverflowPolicy, WireFormat, FLUSH_FRAME, SHUTDOWN_FRAME,
};
use alertops::react::{audit_blocker_with, review_queue, AuditConfig};
use alertops::sim::scenarios::{self, Scenario};
use alertops::sim::SimOutput;
use alertops_chaos::Backoff;

fn usage() -> ExitCode {
    eprintln!(
        "usage: alertops <simulate|govern|lint|storms|audit|ingestd|cluster|replay|metrics> \
         [--scenario quickstart|mini-study|storm|cascade|study] [--seed N] \
         [--json FILE] [--top N] [--threshold N] \
         [--shards N] [--queue N] [--tick-ms N] [--overflow block|drop] \
         [--listen ADDR] [--status ADDR] [--wire ndjson|binary] [--chaos] \
         [--no-metrics] [--emerging] \
         [--emerging-budget TOKENS] [--qoa] [--qoa-noise P] \
         [--nodes N] [--wal DIR] \
         [--connect ADDR] [--rate N] [--flush-every N] [--shutdown]"
    );
    ExitCode::FAILURE
}

struct Args {
    command: String,
    scenario: String,
    seed: u64,
    json: Option<String>,
    top: usize,
    threshold: usize,
    // ingestd
    shards: usize,
    queue: usize,
    tick_ms: Option<u64>,
    overflow: OverflowPolicy,
    listen: String,
    status: String,
    /// Ingress wire format (`--wire`): NDJSON lines or binary frames.
    wire: WireFormat,
    chaos: bool,
    metrics: bool,
    emerging: bool,
    /// Per-window token cap for the emerging channel (storm-load
    /// sampling); `None` keeps AO-LDA exact.
    emerging_budget: Option<usize>,
    /// `--qoa`: turn the streaming QoA feedback loop on. The daemon
    /// scores forwarded samples at every close; the cluster also
    /// labels each window with the simulator's seeded feedback oracle.
    qoa: bool,
    /// `--qoa-noise P`: the oracle's per-verdict flip probability.
    qoa_noise: f64,
    // ingestd --wal / cluster
    wal: Option<String>,
    nodes: usize,
    // replay
    connect: String,
    rate: u64,
    flush_every: usize,
    shutdown: bool,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let mut args = Args {
        command,
        scenario: "quickstart".to_owned(),
        seed: 7,
        json: None,
        top: 10,
        threshold: 100,
        shards: 4,
        queue: 1024,
        tick_ms: None,
        overflow: OverflowPolicy::Block,
        listen: "127.0.0.1:4501".to_owned(),
        status: "127.0.0.1:4502".to_owned(),
        wire: WireFormat::default(),
        chaos: false,
        metrics: true,
        emerging: false,
        emerging_budget: None,
        qoa: false,
        qoa_noise: 0.0,
        wal: None,
        nodes: 3,
        connect: "127.0.0.1:4501".to_owned(),
        rate: 0,
        flush_every: 0,
        shutdown: false,
    };
    while let Some(flag) = argv.next() {
        if flag == "--shutdown" {
            args.shutdown = true;
            continue;
        }
        if flag == "--chaos" {
            args.chaos = true;
            continue;
        }
        if flag == "--no-metrics" {
            args.metrics = false;
            continue;
        }
        if flag == "--emerging" {
            args.emerging = true;
            continue;
        }
        if flag == "--qoa" {
            args.qoa = true;
            continue;
        }
        let mut value = || argv.next();
        match flag.as_str() {
            "--scenario" => args.scenario = value()?,
            "--seed" => args.seed = value()?.parse().ok()?,
            "--emerging-budget" => args.emerging_budget = Some(value()?.parse().ok()?),
            "--qoa-noise" => {
                args.qoa_noise = value()?.parse().ok()?;
                if !(0.0..=1.0).contains(&args.qoa_noise) {
                    return None;
                }
            }
            "--json" => args.json = Some(value()?),
            "--top" => args.top = value()?.parse().ok()?,
            "--threshold" => args.threshold = value()?.parse().ok()?,
            "--shards" => args.shards = value()?.parse().ok()?,
            "--queue" => args.queue = value()?.parse().ok()?,
            "--tick-ms" => args.tick_ms = Some(value()?.parse().ok()?),
            "--overflow" => {
                args.overflow = match value()?.as_str() {
                    "block" => OverflowPolicy::Block,
                    "drop" => OverflowPolicy::Drop,
                    _ => return None,
                };
            }
            "--listen" => args.listen = value()?,
            "--status" => args.status = value()?,
            "--wire" => args.wire = value()?.parse().ok()?,
            "--wal" => args.wal = Some(value()?),
            "--nodes" => args.nodes = value()?.parse().ok()?,
            "--connect" => args.connect = value()?,
            "--rate" => args.rate = value()?.parse().ok()?,
            "--flush-every" => args.flush_every = value()?.parse().ok()?,
            _ => return None,
        }
    }
    Some(args)
}

fn scenario_by_name(name: &str, seed: u64) -> Option<Scenario> {
    Some(match name {
        "quickstart" => scenarios::quickstart(seed),
        "mini-study" => scenarios::mini_study(seed),
        "storm" => scenarios::storm_fig3(seed),
        "cascade" => scenarios::cascade_table2(seed),
        "study" => scenarios::study(seed),
        _ => return None,
    })
}

/// A governor over `strategies` (any sub-catalog of the scenario's),
/// configured exactly as the full-catalog one: same guideline context,
/// the sub-catalog's SOPs, and the scenario's dependency graph.
fn governor_over(out: &SimOutput, strategies: Vec<AlertStrategy>) -> AlertGovernor {
    let fault_tolerant: BTreeSet<MicroserviceId> = out
        .topology
        .microservices()
        .iter()
        .filter(|ms| ms.fault_tolerant)
        .map(|ms| ms.id)
        .collect();
    let sops: Vec<Sop> = strategies
        .iter()
        .filter_map(|s| out.catalog.sop(s.id()).cloned())
        .collect();
    AlertGovernor::new(
        strategies,
        GovernorConfig {
            guideline_context: GuidelineContext { fault_tolerant },
            ..GovernorConfig::default()
        },
    )
    .with_sops(sops)
    .with_dependency_graph(out.topology.dependency_graph())
}

fn build_governor(out: &SimOutput) -> AlertGovernor {
    governor_over(out, out.catalog.strategies().to_vec())
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    if !matches!(
        args.command.as_str(),
        "simulate"
            | "govern"
            | "lint"
            | "storms"
            | "audit"
            | "ingestd"
            | "cluster"
            | "replay"
            | "metrics"
    ) {
        eprintln!("unknown command `{}`", args.command);
        return usage();
    }
    if args.command == "metrics" {
        // Scrapes a running daemon — no scenario to build.
        return run_metrics(&args.status);
    }
    let Some(scenario) = scenario_by_name(&args.scenario, args.seed) else {
        eprintln!("unknown scenario `{}`", args.scenario);
        return usage();
    };
    eprintln!(
        "running scenario `{}` (seed {}) ...",
        scenario.name, args.seed
    );
    let out = scenario.run();

    match args.command.as_str() {
        "simulate" => {
            println!(
                "{} alerts, {} strategies, {} microservices, {} incidents, {} fault events",
                out.alerts.len(),
                out.catalog.strategies().len(),
                out.topology.microservices().len(),
                out.incidents.len(),
                out.faults.events().len()
            );
            for alert in out.alerts.iter().take(args.top) {
                println!("  {alert}");
            }
            if let Some(path) = &args.json {
                match serde_json::to_string(&out.alerts) {
                    Ok(json) => {
                        if let Err(err) = std::fs::write(path, json) {
                            eprintln!("failed to write {path}: {err}");
                            return ExitCode::FAILURE;
                        }
                        println!("wrote alert stream to {path}");
                    }
                    Err(err) => {
                        eprintln!("serialization failed: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        "govern" => {
            let governor = build_governor(&out);
            let report = governor.govern(&out.alerts, &out.incidents);
            println!("{report}");
            println!("review shortlist:");
            for qoa in report.review_shortlist(args.top) {
                let title = out
                    .catalog
                    .strategy(qoa.strategy)
                    .map_or("?", |s| s.title_template());
                println!(
                    "  {} QoA {:.2} ({} alerts)  {title:?}",
                    qoa.strategy,
                    qoa.scores.overall(),
                    qoa.alert_count
                );
            }
        }
        "lint" => {
            let governor = build_governor(&out);
            let violations = governor.lint();
            println!(
                "{} guideline violations across {} strategies",
                violations.len(),
                out.catalog.strategies().len()
            );
            for violation in violations.iter().take(args.top) {
                println!("  {violation}");
            }
        }
        "storms" => {
            let storms = alertops::detect::storm::detect_storms(
                &out.alerts,
                &alertops::detect::StormConfig {
                    hourly_threshold: args.threshold,
                },
            );
            println!(
                "{} storm(s) at threshold {}/region/hour:",
                storms.len(),
                args.threshold
            );
            for storm in &storms {
                println!(
                    "  {} {} — {} alerts over {} hour(s), peak {}/hour",
                    storm.region,
                    storm.window,
                    storm.total_alerts,
                    storm.duration_hours(),
                    storm.peak_hourly
                );
            }
        }
        "audit" => {
            let governor = build_governor(&out);
            let findings = governor.detect(&out.alerts, &out.incidents);
            let blocker = governor.derive_blocker(&findings);
            let config = AuditConfig::default();
            let audits = audit_blocker_with(&blocker, &out.alerts, &config, |alert| {
                // Precise harm check: an incident on the alert's own
                // service (via the catalog) covered its raise window.
                let Some(strategy) = out.catalog.strategy(alert.strategy()) else {
                    return false;
                };
                out.incidents.iter().any(|inc| {
                    inc.service() == strategy.service()
                        && inc.covers_or_follows(alert.raised_at(), config.incident_lookahead)
                })
            });
            println!(
                "{} derived blocking rules; {} need review:",
                audits.len(),
                review_queue(&audits).len()
            );
            for audit in review_queue(&audits).into_iter().take(args.top) {
                println!(
                    "  {} — {} hits, stale: {}, suppressed near incidents: {}",
                    audit.rule, audit.total_hits, audit.stale, audit.suppressed_indicative
                );
            }
        }
        "ingestd" => return run_ingestd(&args, &out),
        "cluster" => return run_cluster(&args, &out),
        "replay" => return run_replay(&args, &out),
        _ => unreachable!("command validated before the scenario ran"),
    }
    ExitCode::SUCCESS
}

/// Runs the sharded ingestion daemon until a connection sends
/// `{"ctrl":"shutdown"}` (or the process is killed).
///
/// With `--wal DIR` the daemon journals write-ahead: any log left in
/// `DIR` by a previous incarnation (clean exit or `kill -9` alike) is
/// replayed through normal ingestion first — sealed windows are
/// re-closed, the in-flight tail is re-routed — and the log is
/// rewritten, so restart is lossless and the log never grows past the
/// governor's rolling history.
fn run_ingestd(args: &Args, out: &SimOutput) -> ExitCode {
    let mut streaming = StreamingConfig::default();
    if args.emerging {
        // Shards only forward documents; the coordinator runs the one
        // sequential AO-LDA pass so shard count cannot change output.
        streaming.emerging.mode = EmergingMode::Forward;
        if let Some(cap) = args.emerging_budget {
            streaming.emerging.config.budget = Some(EmergingBudget::new(cap, args.seed));
        }
    }
    if args.qoa {
        // Same split as the emerging channel: shards forward QoA
        // samples, the coordinator runs the one sequential model
        // update so shard count cannot change output.
        streaming.qoa.mode = QoaMode::Forward;
    }
    let config = IngestdConfig {
        shards: args.shards,
        queue_capacity: args.queue,
        tick: args.tick_ms.map(Duration::from_millis),
        overflow: args.overflow,
        streaming,
        listen: Some(args.listen.clone()),
        wire: args.wire,
        status: Some(args.status.clone()),
        metrics: args.metrics,
        chaos: args.chaos,
        defer_emerging: false,
        defer_qoa: false,
    };

    // Recover and re-arm the write-ahead log before the daemon exists.
    let mut recovered = None;
    let journal: Option<std::sync::Arc<dyn alertops::ingestd::WindowJournal>> = match &args.wal {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            let wal = match alertops::cluster::replay(&dir)
                .and_then(|replayed| {
                    alertops::cluster::Wal::wipe(&dir)?;
                    Ok(replayed)
                })
                .and_then(|replayed| {
                    // One past the rolling history: replay needs the
                    // previous window's full scope too, so the last
                    // re-published snapshot is byte-exact.
                    let retain = config.streaming.history_windows.max(1) + 1;
                    Ok((replayed, alertops::cluster::Wal::open(&dir, retain)?))
                }) {
                Ok((replayed, wal)) => {
                    recovered = Some(replayed);
                    wal
                }
                Err(err) => {
                    eprintln!("wal at {} unusable: {err}", dir.display());
                    return ExitCode::FAILURE;
                }
            };
            Some(std::sync::Arc::new(alertops::cluster::WalJournal::new(
                std::sync::Arc::new(wal),
            )))
        }
        None => None,
    };

    let handle = match Ingestd::spawn_with_journal(
        &config,
        |shard, shards| {
            let catalog = shard_catalog(out.catalog.strategies(), shards, shard);
            StreamingGovernor::new(governor_over(out, catalog), config.streaming.clone())
        },
        journal,
    ) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("ingestd failed to start: {err}");
            return ExitCode::FAILURE;
        }
    };

    // Replay-through-ingestion: routing re-journals each alert and the
    // per-window flushes re-seal segments, so this is also compaction.
    if let Some(replayed) = recovered {
        for (_, alerts) in &replayed.windows {
            for alert in alerts {
                handle.route(alert.clone());
            }
            let _ = handle.flush();
        }
        for alert in &replayed.tail {
            handle.route(alert.clone());
        }
        println!(
            "wal replay: {} alert(s) recovered ({} sealed window(s), {} in flight), {} torn record(s)",
            replayed.recovered_alerts,
            replayed.windows.len(),
            replayed.tail.len(),
            replayed.torn_records
        );
    }

    let addr = |a: Option<std::net::SocketAddr>| a.map_or_else(|| "-".into(), |a| a.to_string());
    println!(
        "ingestd up: {} shard(s), ingest {}, status {}",
        args.shards,
        addr(handle.ingest_addr()),
        addr(handle.status_addr()),
    );
    match args.wire {
        WireFormat::Ndjson => {
            println!("frames: NDJSON alerts | {FLUSH_FRAME} | {SHUTDOWN_FRAME}");
        }
        WireFormat::Binary => {
            println!("frames: binary alertops-wire (acks are binary ack frames)");
        }
    }
    if args.chaos {
        println!("chaos mode: panic/stall/resume control frames accepted");
    }
    if args.emerging {
        match args.emerging_budget {
            Some(cap) => println!(
                "emerging channel on: AO-LDA report published per window close \
                 (token budget {cap}/window, seeded sampling under storm load)"
            ),
            None => println!("emerging channel on: AO-LDA report published per window close"),
        }
    }
    if args.qoa {
        println!(
            "qoa feedback loop on: online model updates per window close \
             (labels arrive with labeled flushes; unlabeled windows still score)"
        );
    }
    handle.wait_for_shutdown_request();
    let counters = handle.counters();
    handle.shutdown();
    println!(
        "ingestd stopped: {} ingested, {} dropped, {} decode error(s), {} window(s) closed",
        counters.ingested, counters.dropped, counters.decode_errors, counters.windows_closed
    );
    ExitCode::SUCCESS
}

/// Runs the scenario trace through an N-node in-process cluster:
/// range-routed nodes, per-node write-ahead logs, one merged
/// governance snapshot per `--flush-every` alerts. Prints the final
/// snapshot, the conservation accounting, and (with metrics on) the
/// `alertops_cluster_*` exposition.
fn run_cluster(args: &Args, out: &SimOutput) -> ExitCode {
    use alertops::cluster::{AlertCluster, ClusterConfig};

    let mut streaming = StreamingConfig::default();
    if args.emerging {
        streaming.emerging.mode = EmergingMode::Forward;
        if let Some(cap) = args.emerging_budget {
            streaming.emerging.config.budget = Some(EmergingBudget::new(cap, args.seed));
        }
    }
    if args.qoa {
        // spawn_node forces Forward + defer_qoa per node; the cluster
        // coordinator owns the one model and labels come from the
        // simulator's seeded feedback oracle below.
        streaming.qoa.mode = QoaMode::Forward;
    }
    let node = IngestdConfig {
        shards: args.shards,
        queue_capacity: args.queue,
        tick: None,
        overflow: args.overflow,
        streaming,
        listen: None,
        wire: WireFormat::default(),
        status: None,
        metrics: false,
        chaos: false,
        defer_emerging: false,
        defer_qoa: false,
    };
    let wal_root = args.wal.clone().map_or_else(
        || std::env::temp_dir().join(format!("alertops-cluster-{}", std::process::id())),
        std::path::PathBuf::from,
    );
    let config = ClusterConfig {
        nodes: args.nodes,
        node,
        wal_root: wal_root.clone(),
        wal_format: alertops::cluster::WalFormat::default(),
    };

    let factory_out = std::sync::Arc::new(out.clone());
    let factory_streaming = config.node.streaming.clone();
    let factory: alertops::cluster::GovernorFactory = std::sync::Arc::new(move |catalog| {
        StreamingGovernor::new(
            governor_over(&factory_out, catalog.to_vec()),
            factory_streaming.clone(),
        )
    });

    let mut cluster = match AlertCluster::spawn(config, out.catalog.strategies().to_vec(), factory)
    {
        Ok(cluster) => cluster,
        Err(err) => {
            eprintln!("cluster failed to start: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cluster up: {} node(s) x {} shard(s), wal at {}",
        args.nodes,
        args.shards,
        wal_root.display()
    );
    for (range, node) in cluster.range_map().spans() {
        println!("  node {node}: strategies {}..={}", range.start, range.end);
    }

    let oracle = args
        .qoa
        .then(|| alertops::sim::FeedbackOracle::new(args.seed, args.qoa_noise));
    if oracle.is_some() {
        println!(
            "qoa feedback loop on: seeded oracle labels every window (noise {})",
            args.qoa_noise
        );
    }
    let label = |cluster: &AlertCluster, window: &[Alert]| -> Vec<QoaLabel> {
        oracle.as_ref().map_or_else(Vec::new, |oracle| {
            oracle.label_window(
                cluster.next_window_seq(),
                &out.catalog,
                window,
                &out.incidents,
            )
        })
    };

    let per_window = if args.flush_every > 0 {
        args.flush_every
    } else {
        500
    };
    let mut window_start = 0;
    for (index, alert) in out.alerts.iter().enumerate() {
        if let Err(err) = cluster.route(alert.clone()) {
            eprintln!("route failed at alert {index}: {err}");
            return ExitCode::FAILURE;
        }
        if (index + 1) % per_window == 0 {
            let labels = label(&cluster, &out.alerts[window_start..=index]);
            window_start = index + 1;
            if let Err(err) = cluster.close_window_labeled(labels) {
                eprintln!("window close failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let labels = label(&cluster, &out.alerts[window_start..]);
    match cluster.close_window_labeled(labels) {
        Ok(snapshot) => {
            println!(
                "final window {}: {} alert(s), {} finding(s) flagged, {} storm(s), triage depth {}",
                snapshot.window_index,
                snapshot.alert_count,
                snapshot.new_findings.len(),
                snapshot.storms.len(),
                snapshot.triage.len()
            );
            if let Some(qoa) = &snapshot.qoa {
                println!(
                    "  qoa: {} sample(s) absorbed, {} strategy(ies) scored, {} demoted, {} promoted",
                    qoa.absorbed,
                    qoa.scored.len(),
                    qoa.demoted.len(),
                    qoa.promoted.len()
                );
            }
        }
        Err(err) => {
            eprintln!("final window close failed: {err}");
            return ExitCode::FAILURE;
        }
    }
    let counters = cluster.counters();
    println!(
        "conservation: {} ingested == {} delivered + {} dropped + {} quarantined + {} in flight ({})",
        counters.ingested,
        counters.delivered,
        counters.dropped,
        counters.quarantined,
        counters.in_flight,
        if counters.is_conserved() { "exact" } else { "VIOLATED" }
    );
    if args.metrics {
        print!("{}", cluster.render_metrics());
    }
    cluster.shutdown();
    if args.wal.is_none() {
        // Ephemeral run: don't leave temp logs behind.
        let _ = std::fs::remove_dir_all(&wal_root);
    }
    if counters.is_conserved() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scrapes a running daemon's Prometheus exposition: connect to the
/// status socket, send the `metrics` request line, stream the reply.
fn run_metrics(addr: &str) -> ExitCode {
    let scrape = || -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(b"metrics\n")?;
        let mut body = String::new();
        std::io::Read::read_to_string(&mut stream, &mut body)?;
        Ok(body)
    };
    match scrape() {
        Ok(body) => {
            print!("{body}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("metrics scrape from {addr} failed: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Streams the scenario's alert trace into a running daemon.
fn run_replay(args: &Args, out: &SimOutput) -> ExitCode {
    match replay_trace(args, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("replay failed: {err}");
            ExitCode::FAILURE
        }
    }
}

/// One replay connection (split read/write halves of the same stream).
struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Connects with capped exponential backoff and seeded jitter, so a
/// daemon restarting mid-replay is retried instead of fatal (and
/// reconnect storms from parallel replayers decorrelate).
fn connect_with_backoff(addr: &str, backoff: &mut Backoff) -> std::io::Result<Connection> {
    const MAX_ATTEMPTS: u32 = 8;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let reader = BufReader::new(stream.try_clone()?);
                backoff.reset();
                return Ok(Connection {
                    reader,
                    writer: BufWriter::new(stream),
                });
            }
            Err(err) if backoff.attempts() + 1 < MAX_ATTEMPTS => {
                let delay = backoff.next_delay();
                eprintln!(
                    "connect to {addr} failed ({err}); retry {} in {delay:?}",
                    backoff.attempts()
                );
                std::thread::sleep(delay);
            }
            Err(err) => return Err(err),
        }
    }
}

fn replay_trace(args: &Args, out: &SimOutput) -> std::io::Result<()> {
    let mut backoff = Backoff::new(Duration::from_millis(25), Duration::from_secs(2), args.seed);
    let mut conn = connect_with_backoff(&args.connect, &mut backoff)?;
    let started = Instant::now();
    for (index, alert) in out.alerts.iter().enumerate() {
        // Pace against the absolute schedule so encoding time does not
        // accumulate into drift.
        if let Some(interval) = (index as u64 * 1_000_000).checked_div(args.rate) {
            let due = started + Duration::from_micros(interval);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                conn.writer.flush()?;
                std::thread::sleep(wait);
            }
        }
        let line = encode_alert(alert);
        if writeln!(conn.writer, "{line}").is_err() || conn.writer.flush().is_err() {
            // Connection reset mid-stream: reconnect and resend this
            // alert (the daemon quarantines any half-written frame).
            eprintln!("connection lost at alert {index}; reconnecting");
            conn = connect_with_backoff(&args.connect, &mut backoff)?;
            writeln!(conn.writer, "{line}")?;
        }
        if args.flush_every > 0 && (index + 1) % args.flush_every == 0 {
            println!(
                "  window: {}",
                send_frame(&mut conn.writer, &mut conn.reader, FLUSH_FRAME)?
            );
        }
    }
    let ack = send_frame(&mut conn.writer, &mut conn.reader, FLUSH_FRAME)?;
    println!(
        "replayed {} alert(s) in {:.2}s; final {ack}",
        out.alerts.len(),
        started.elapsed().as_secs_f64()
    );
    if args.shutdown {
        println!(
            "daemon said: {}",
            send_frame(&mut conn.writer, &mut conn.reader, SHUTDOWN_FRAME)?
        );
    }
    Ok(())
}

/// Sends one control frame and reads the daemon's one-line reply.
fn send_frame(
    writer: &mut impl Write,
    reader: &mut impl BufRead,
    frame: &str,
) -> std::io::Result<String> {
    writeln!(writer, "{frame}")?;
    writer.flush()?;
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    if reply.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection before acknowledging",
        ));
    }
    Ok(reply.trim_end().to_owned())
}
