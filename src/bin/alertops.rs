//! The `alertops` command-line tool: simulate a cloud, govern its alert
//! stream, lint strategies, and hunt storms — from a shell.
//!
//! ```text
//! alertops simulate --scenario mini-study --seed 7 [--json out.json]
//! alertops govern   --scenario quickstart --seed 7 [--top N]
//! alertops lint     --scenario quickstart --seed 7
//! alertops storms   --scenario mini-study --seed 7 [--threshold 100]
//! alertops audit    --scenario mini-study --seed 7
//! ```
//!
//! Every subcommand runs a named scenario (there is no external data to
//! load — the simulator *is* the data source, see DESIGN.md) and prints
//! human-readable output; `--json FILE` additionally dumps the full
//! machine-readable result.

use std::collections::BTreeSet;
use std::process::ExitCode;

use alertops::core::prelude::*;
use alertops::react::{audit_blocker_with, review_queue, AuditConfig};
use alertops::sim::scenarios::{self, Scenario};

fn usage() -> ExitCode {
    eprintln!(
        "usage: alertops <simulate|govern|lint|storms|audit> \
         [--scenario quickstart|mini-study|storm|cascade|study] [--seed N] \
         [--json FILE] [--top N] [--threshold N]"
    );
    ExitCode::FAILURE
}

struct Args {
    command: String,
    scenario: String,
    seed: u64,
    json: Option<String>,
    top: usize,
    threshold: usize,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let mut args = Args {
        command,
        scenario: "quickstart".to_owned(),
        seed: 7,
        json: None,
        top: 10,
        threshold: 100,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next();
        match flag.as_str() {
            "--scenario" => args.scenario = value()?,
            "--seed" => args.seed = value()?.parse().ok()?,
            "--json" => args.json = Some(value()?),
            "--top" => args.top = value()?.parse().ok()?,
            "--threshold" => args.threshold = value()?.parse().ok()?,
            _ => return None,
        }
    }
    Some(args)
}

fn scenario_by_name(name: &str, seed: u64) -> Option<Scenario> {
    Some(match name {
        "quickstart" => scenarios::quickstart(seed),
        "mini-study" => scenarios::mini_study(seed),
        "storm" => scenarios::storm_fig3(seed),
        "cascade" => scenarios::cascade_table2(seed),
        "study" => scenarios::study(seed),
        _ => return None,
    })
}

fn build_governor(out: &alertops::sim::SimOutput) -> AlertGovernor {
    let fault_tolerant: BTreeSet<MicroserviceId> = out
        .topology
        .microservices()
        .iter()
        .filter(|ms| ms.fault_tolerant)
        .map(|ms| ms.id)
        .collect();
    AlertGovernor::new(
        out.catalog.strategies().to_vec(),
        GovernorConfig {
            guideline_context: GuidelineContext { fault_tolerant },
            ..GovernorConfig::default()
        },
    )
    .with_sops(
        out.catalog
            .strategies()
            .iter()
            .filter_map(|s| out.catalog.sop(s.id()).cloned()),
    )
    .with_dependency_graph(out.topology.dependency_graph())
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    if !matches!(
        args.command.as_str(),
        "simulate" | "govern" | "lint" | "storms" | "audit"
    ) {
        eprintln!("unknown command `{}`", args.command);
        return usage();
    }
    let Some(scenario) = scenario_by_name(&args.scenario, args.seed) else {
        eprintln!("unknown scenario `{}`", args.scenario);
        return usage();
    };
    eprintln!(
        "running scenario `{}` (seed {}) ...",
        scenario.name, args.seed
    );
    let out = scenario.run();

    match args.command.as_str() {
        "simulate" => {
            println!(
                "{} alerts, {} strategies, {} microservices, {} incidents, {} fault events",
                out.alerts.len(),
                out.catalog.strategies().len(),
                out.topology.microservices().len(),
                out.incidents.len(),
                out.faults.events().len()
            );
            for alert in out.alerts.iter().take(args.top) {
                println!("  {alert}");
            }
            if let Some(path) = &args.json {
                match serde_json::to_string(&out.alerts) {
                    Ok(json) => {
                        if let Err(err) = std::fs::write(path, json) {
                            eprintln!("failed to write {path}: {err}");
                            return ExitCode::FAILURE;
                        }
                        println!("wrote alert stream to {path}");
                    }
                    Err(err) => {
                        eprintln!("serialization failed: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        "govern" => {
            let governor = build_governor(&out);
            let report = governor.govern(&out.alerts, &out.incidents);
            println!("{report}");
            println!("review shortlist:");
            for qoa in report.review_shortlist(args.top) {
                let title = out
                    .catalog
                    .strategy(qoa.strategy)
                    .map_or("?", |s| s.title_template());
                println!(
                    "  {} QoA {:.2} ({} alerts)  {title:?}",
                    qoa.strategy,
                    qoa.scores.overall(),
                    qoa.alert_count
                );
            }
        }
        "lint" => {
            let governor = build_governor(&out);
            let violations = governor.lint();
            println!(
                "{} guideline violations across {} strategies",
                violations.len(),
                out.catalog.strategies().len()
            );
            for violation in violations.iter().take(args.top) {
                println!("  {violation}");
            }
        }
        "storms" => {
            let storms = alertops::detect::storm::detect_storms(
                &out.alerts,
                &alertops::detect::StormConfig {
                    hourly_threshold: args.threshold,
                },
            );
            println!(
                "{} storm(s) at threshold {}/region/hour:",
                storms.len(),
                args.threshold
            );
            for storm in &storms {
                println!(
                    "  {} {} — {} alerts over {} hour(s), peak {}/hour",
                    storm.region,
                    storm.window,
                    storm.total_alerts,
                    storm.duration_hours(),
                    storm.peak_hourly
                );
            }
        }
        "audit" => {
            let governor = build_governor(&out);
            let findings = governor.detect(&out.alerts, &out.incidents);
            let blocker = governor.derive_blocker(&findings);
            let config = AuditConfig::default();
            let audits = audit_blocker_with(&blocker, &out.alerts, &config, |alert| {
                // Precise harm check: an incident on the alert's own
                // service (via the catalog) covered its raise window.
                let Some(strategy) = out.catalog.strategy(alert.strategy()) else {
                    return false;
                };
                out.incidents.iter().any(|inc| {
                    inc.service() == strategy.service()
                        && inc.covers_or_follows(alert.raised_at(), config.incident_lookahead)
                })
            });
            println!(
                "{} derived blocking rules; {} need review:",
                audits.len(),
                review_queue(&audits).len()
            );
            for audit in review_queue(&audits).into_iter().take(args.top) {
                println!(
                    "  {} — {} hits, stale: {}, suppressed near incidents: {}",
                    audit.rule, audit.total_hits, audit.stale, audit.suppressed_indicative
                );
            }
        }
        _ => unreachable!("command validated before the scenario ran"),
    }
    ExitCode::SUCCESS
}
