//! # alertops
//!
//! A Rust toolkit for **alert governance** in cloud systems: detecting
//! the anti-patterns of alerts, mitigating them with the standard
//! industrial reactions, and evaluating the Quality of Alerts (QoA) —
//! a full reproduction of *"Characterizing and Mitigating Anti-patterns
//! of Alerts in Industrial Cloud Systems"* (DSN 2022).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`model`] | `alertops-model` | Alerts, strategies, SOPs, incidents, ids, time |
//! | [`text`] | `alertops-text` | Tokenizer, TF-IDF, similarity, title scoring, templates |
//! | [`topics`] | `alertops-topics` | Online LDA and adaptive online LDA |
//! | [`sim`] | `alertops-sim` | The cloud/monitoring simulator and scenario presets |
//! | [`detect`] | `alertops-detect` | Anti-pattern detectors A1–A6, storms, candidate mining |
//! | [`react`] | `alertops-react` | Reactions R1–R4 and the reaction pipeline |
//! | [`qoa`] | `alertops-qoa` | QoA criteria, features, learned models |
//! | [`survey`] | `alertops-survey` | The 18-OCE survey dataset and Likert analysis |
//! | [`core`] | `alertops-core` | The [`AlertGovernor`](core::AlertGovernor) facade |
//! | [`ingestd`] | `alertops-ingestd` | The sharded streaming ingestion daemon |
//! | [`cluster`] | `alertops-cluster` | Multi-node clustering, write-ahead logs, range handoff |
//! | [`load`] | `alertops-load` | Soak/load harness: sustained TCP load with hard gates |
//! | [`obs`] | `alertops-obs` | Metrics registry, histograms, spans, Prometheus text |
//! | [`chaos`] | `alertops-chaos` | Seeded fault schedules, frame corruption, backoff |
//!
//! # Quickstart
//!
//! ```
//! use alertops::core::prelude::*;
//! use alertops::sim::scenarios;
//!
//! // Simulate a small cloud for six hours...
//! let out = scenarios::quickstart(7).run();
//! // ...and govern its alert stream.
//! let governor = AlertGovernor::new(
//!     out.catalog.strategies().to_vec(),
//!     GovernorConfig::default(),
//! )
//! .with_dependency_graph(out.topology.dependency_graph());
//! let report = governor.govern(&out.alerts, &out.incidents);
//! assert!(report.pipeline.reduction > 0.0);
//! ```
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use alertops_chaos as chaos;
pub use alertops_cluster as cluster;
pub use alertops_core as core;
pub use alertops_detect as detect;
pub use alertops_ingestd as ingestd;
pub use alertops_load as load;
pub use alertops_model as model;
pub use alertops_obs as obs;
pub use alertops_qoa as qoa;
pub use alertops_react as react;
pub use alertops_sim as sim;
pub use alertops_survey as survey;
pub use alertops_text as text;
pub use alertops_topics as topics;
pub use alertops_wire as wire;
