//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable RNG (splitmix64 core — good
//! statistical quality for simulation workloads, no external deps)
//! behind the same module/trait layout the real crate uses:
//! `rand::rngs::StdRng`, `rand::{Rng, SeedableRng}`, and
//! `rand::seq::SliceRandom`. The streams differ from the real
//! `StdRng` (ChaCha12), which is fine: the workspace only relies on
//! determinism-for-a-seed, never on specific stream values.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, implemented for all RNG cores.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in the given range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        self.next_f64() < p
    }

    /// A uniformly random `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        #[allow(clippy::cast_precision_loss)]
        let x = (self.next_u64() >> 11) as f64;
        x / (1u64 << 53) as f64
    }
}

/// Types that can be sampled from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Samples a uniform value in `range`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * rng.next_f64()
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.abs_diff(range.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible (< 2^-64 * span) for simulation use.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                let offset = hi as $t;
                range.start.wrapping_add(offset)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic RNG (splitmix64 core in this
    /// stand-in; ChaCha12 in the real crate).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed so nearby seeds land on well-separated
            // points of the splitmix sequence.
            Self {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(5),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut data: Vec<u32> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(data, sorted, "shuffle should change order");
    }
}
