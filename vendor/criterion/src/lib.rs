//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `Criterion` /
//! `BenchmarkGroup` API shape so the workspace's `harness = false`
//! benches compile and run without the real crate, replacing its
//! statistical machinery with a straightforward timed loop:
//!
//! - each benchmark runs a short warm-up, then `sample_size` samples;
//! - the median per-iteration time is reported, plus derived
//!   throughput when [`Throughput::Elements`] was set;
//! - output is plain text on stdout (no HTML reports, no comparison
//!   against saved baselines).
//!
//! Numbers from this harness are comparable within one run on one
//! machine, which is what the workspace's benches are for.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], like real criterion.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup {name}");
        BenchmarkGroup {
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) {
        let mut group = BenchmarkGroup {
            sample_size: 100,
            throughput: None,
        };
        group.bench_function(name, f);
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its median iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let name = name.as_ref();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: find an iteration count that takes a perceptible
        // amount of time, so Instant resolution does not dominate.
        let mut iters: u64 = 1;
        loop {
            bencher.iters = iters;
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            f(&mut bencher);
            #[allow(clippy::cast_precision_loss)]
            samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
        let median = samples[samples.len() / 2];

        match self.throughput {
            #[allow(clippy::cast_precision_loss)]
            Some(Throughput::Elements(n)) if median > 0.0 => {
                println!(
                    "  {name}: {} / iter ({:.0} elem/s)",
                    format_duration(median),
                    n as f64 / median
                );
            }
            #[allow(clippy::cast_precision_loss)]
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                println!(
                    "  {name}: {} / iter ({:.0} B/s)",
                    format_duration(median),
                    n as f64 / median
                );
            }
            _ => println!("  {name}: {} / iter", format_duration(median)),
        }
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Handed to each benchmark closure; times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`;
            // accept and ignore them, as real criterion does.
            $($group();)+
        }
    };
}
