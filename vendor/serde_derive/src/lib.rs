//! Offline stand-in for `serde_derive`.
//!
//! The build container has no registry access, so the real
//! `serde_derive` (and its `syn`/`quote` dependency tree) cannot be
//! used. This crate re-implements `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the *shapes this workspace contains*
//! with a hand-rolled `proc_macro::TokenStream` parser:
//!
//! - structs with named fields, tuple structs, unit structs;
//! - enums with unit, newtype, tuple, and struct variants
//!   (external tagging, like real serde);
//! - `#[serde(transparent)]` and `#[serde(rename_all = "snake_case")]`;
//! - one level of type generics with simple bounds (`<A: Ord>`).
//!
//! The generated impls target the value-based `Serialize` /
//! `Deserialize` traits of the vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// `(param name, bounds)` pairs, e.g. `("A", "Ord")`.
    generics: Vec<(String, String)>,
    transparent: bool,
    rename_all_snake: bool,
    data: Data,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }

    /// Consumes leading `#[...]` attributes, returning the token strings
    /// inside any `#[serde(...)]` groups.
    fn take_attrs(&mut self) -> Vec<String> {
        let mut serde_items = Vec::new();
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next(); // '#'
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive: malformed attribute: {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        serde_items.push(args.stream().to_string());
                    }
                }
            }
        }
        serde_items
    }

    /// Skips `pub`, `pub(crate)`, etc.
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let serde_attrs = cur.take_attrs();
    let transparent = serde_attrs.iter().any(|a| a.trim() == "transparent");
    let rename_all_snake = serde_attrs
        .iter()
        .any(|a| a.replace(' ', "").contains("rename_all=\"snake_case\""));

    cur.skip_visibility();
    let kind = cur.expect_ident();
    let name = cur.expect_ident();
    let generics = parse_generics(&mut cur);

    if matches!(cur.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("serde_derive: `where` clauses are not supported (type {name})");
    }

    let data = match kind.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde_derive: unexpected struct body for {name}: {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body for {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        transparent,
        rename_all_snake,
        data,
    }
}

/// Parses `<A: Ord, B>` into `[("A", "Ord"), ("B", "")]`. Returns an
/// empty list when the type has no generics.
fn parse_generics(cur: &mut Cursor) -> Vec<(String, String)> {
    if !cur.eat_punct('<') {
        return Vec::new();
    }
    // Collect raw tokens until the matching `>` at depth zero.
    let mut depth = 0usize;
    let mut raw: Vec<TokenTree> = Vec::new();
    loop {
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                raw.push(TokenTree::Punct(p));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
                raw.push(TokenTree::Punct(p));
            }
            Some(t) => raw.push(t),
            None => panic!("serde_derive: unterminated generic parameter list"),
        }
    }
    // Split on top-level commas.
    let mut params = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle = 0usize;
    for t in raw {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                params.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(t);
    }
    if !current.is_empty() {
        params.push(current);
    }
    params
        .into_iter()
        .map(|tokens| {
            let mut name = String::new();
            let mut bounds = String::new();
            let mut in_bounds = false;
            for t in tokens {
                match &t {
                    TokenTree::Punct(p) if p.as_char() == ':' && !in_bounds => {
                        in_bounds = true;
                    }
                    _ if in_bounds => {
                        bounds.push_str(&t.to_string());
                        bounds.push(' ');
                    }
                    TokenTree::Ident(id) if name.is_empty() => name = id.to_string(),
                    _ => panic!("serde_derive: unsupported generic parameter shape"),
                }
            }
            (name, bounds.trim().to_owned())
        })
        .collect()
}

/// Extracts the field names of a named-field body, skipping attributes,
/// visibility, and types.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        if cur.peek().is_none() {
            break;
        }
        cur.take_attrs();
        cur.skip_visibility();
        let name = cur.expect_ident();
        assert!(
            cur.eat_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        // Skip the type: everything until a comma at angle-depth zero
        // (parens/brackets/braces arrive as single Group tokens).
        let mut angle = 0usize;
        loop {
            match cur.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    cur.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    cur.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    cur.next();
                    break;
                }
                _ => {
                    cur.next();
                }
            }
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of a tuple-struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle = 0usize;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        if cur.peek().is_none() {
            break;
        }
        cur.take_attrs();
        let name = cur.expect_ident();
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        assert!(
            cur.eat_punct(',') || cur.peek().is_none(),
            "serde_derive: expected `,` after variant `{name}`"
        );
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------

/// `CamelCase` → `camel_case`, matching serde's `rename_all = "snake_case"`.
fn to_snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl Item {
    fn wire_variant_name(&self, variant: &str) -> String {
        if self.rename_all_snake {
            to_snake_case(variant)
        } else {
            variant.to_owned()
        }
    }

    /// `impl<A: Ord + EXTRA> ... for Name<A>` header pieces.
    fn impl_header(&self, trait_path: &str, extra_bound: &str) -> String {
        if self.generics.is_empty() {
            return format!("impl {trait_path} for {}", self.name);
        }
        let params: Vec<String> = self
            .generics
            .iter()
            .map(|(name, bounds)| {
                if bounds.is_empty() {
                    format!("{name}: {extra_bound}")
                } else {
                    format!("{name}: {bounds} + {extra_bound}")
                }
            })
            .collect();
        let args: Vec<&str> = self.generics.iter().map(|(n, _)| n.as_str()).collect();
        format!(
            "impl<{}> {trait_path} for {}<{}>",
            params.join(", "),
            self.name,
            args.join(", ")
        )
    }
}

const ALLOW: &str = "#[automatically_derived]\n#[allow(clippy::all, clippy::pedantic, clippy::nursery, unused_mut)]\n";

// ---------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            if item.transparent {
                assert!(
                    fields.len() == 1,
                    "serde_derive: #[serde(transparent)] needs exactly one field"
                );
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            } else {
                let mut s = String::from("let mut __map = ::serde::Map::new();\n");
                for f in fields {
                    s.push_str(&format!(
                        "__map.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(__map)");
                s
            }
        }
        Data::TupleStruct(arity) => match arity {
            0 => "::serde::Value::Array(::std::vec::Vec::new())".to_owned(),
            1 => "::serde::Serialize::to_value(&self.0)".to_owned(),
            n => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        },
        Data::UnitStruct => "::serde::Value::Null".to_owned(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = item.wire_variant_name(&v.name);
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "Self::{} => ::serde::Value::String(::std::string::String::from(\"{wire}\")),\n",
                            v.name
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let bindings = fields.join(", ");
                        let mut inner = String::from("let mut __fields = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{} {{ {bindings} }} => {{\n{inner}\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{wire}\"), ::serde::Value::Object(__fields));\n\
                             ::serde::Value::Object(__outer)\n}},\n",
                            v.name
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let bindings: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{}({}) => {{\n\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{wire}\"), {payload});\n\
                             ::serde::Value::Object(__outer)\n}},\n",
                            v.name,
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{ALLOW}{} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        item.impl_header("::serde::Serialize", "::serde::Serialize")
    )
}

// ---------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            if item.transparent {
                assert!(
                    fields.len() == 1,
                    "serde_derive: #[serde(transparent)] needs exactly one field"
                );
                format!(
                    "::std::result::Result::Ok(Self {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                    fields[0]
                )
            } else {
                let mut s = format!(
                    "let __map = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for {name}\"))?;\n"
                );
                s.push_str("::std::result::Result::Ok(Self {\n");
                for f in fields {
                    s.push_str(&format!("{f}: ::serde::de_field(__map, \"{f}\")?,\n"));
                }
                s.push_str("})");
                s
            }
        }
        Data::TupleStruct(arity) => match arity {
            0 => "::std::result::Result::Ok(Self())".to_owned(),
            1 => {
                "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_owned()
            }
            n => {
                let mut s = format!(
                    "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                     if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n"
                );
                let parts: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                s.push_str(&format!(
                    "::std::result::Result::Ok(Self({}))",
                    parts.join(", ")
                ));
                s
            }
        },
        Data::UnitStruct => "::std::result::Result::Ok(Self)".to_owned(),
        Data::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let data: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            let mut s = String::new();
            if !unit.is_empty() {
                s.push_str("if let ::serde::Value::String(__s) = __v {\n");
                for v in &unit {
                    let wire = item.wire_variant_name(&v.name);
                    s.push_str(&format!(
                        "if __s == \"{wire}\" {{ return ::std::result::Result::Ok(Self::{}); }}\n",
                        v.name
                    ));
                }
                s.push_str("}\n");
            }
            if !data.is_empty() {
                s.push_str(
                    "if let ::serde::Value::Object(__map) = __v {\n\
                     if let ::std::option::Option::Some((__tag, __payload)) = __map.iter().next() {\n",
                );
                for v in &data {
                    let wire = item.wire_variant_name(&v.name);
                    match &v.kind {
                        VariantKind::Named(fields) => {
                            let mut inner = format!(
                                "let __fields = __payload.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object payload for {name}::{}\"))?;\n",
                                v.name
                            );
                            inner.push_str(&format!(
                                "return ::std::result::Result::Ok(Self::{} {{\n",
                                v.name
                            ));
                            for f in fields {
                                inner.push_str(&format!(
                                    "{f}: ::serde::de_field(__fields, \"{f}\")?,\n"
                                ));
                            }
                            inner.push_str("});\n");
                            s.push_str(&format!("if __tag == \"{wire}\" {{\n{inner}}}\n"));
                        }
                        VariantKind::Tuple(arity) => {
                            if *arity == 1 {
                                s.push_str(&format!(
                                    "if __tag == \"{wire}\" {{ return ::std::result::Result::Ok(Self::{}(::serde::Deserialize::from_value(__payload)?)); }}\n",
                                    v.name
                                ));
                            } else {
                                let parts: Vec<String> = (0..*arity)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                    })
                                    .collect();
                                s.push_str(&format!(
                                    "if __tag == \"{wire}\" {{\n\
                                     let __items = __payload.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array payload for {name}::{}\"))?;\n\
                                     if __items.len() != {arity} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}::{}\")); }}\n\
                                     return ::std::result::Result::Ok(Self::{}({}));\n}}\n",
                                    v.name, v.name, v.name,
                                    parts.join(", ")
                                ));
                            }
                        }
                        VariantKind::Unit => unreachable!("partitioned above"),
                    }
                }
                s.push_str("}\n}\n");
            }
            s.push_str(&format!(
                "::std::result::Result::Err(::serde::DeError::custom(format!(\"unrecognized {name} variant: {{__v:?}}\")))"
            ));
            s
        }
    };
    format!(
        "{ALLOW}{} {{\nfn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n",
        item.impl_header("::serde::Deserialize", "::serde::Deserialize")
    )
}
