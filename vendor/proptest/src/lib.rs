//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the real `proptest`
//! cannot be used. This crate keeps the same public shape for the
//! subset the workspace's property tests use — `proptest!`,
//! `prop_assert!` / `prop_assert_eq!`, `prop_oneof!`, `Strategy`,
//! `ProptestConfig`, `any`, and the `prop::{collection, option,
//! bool}` modules — implemented as plain seeded random generation.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! - **Deterministic seed.** Every run replays the same case stream,
//!   so failures are always reproducible in CI.
//! - **Regex strategies** support the subset of patterns the
//!   workspace uses: literals, `.`, character classes with ranges and
//!   escapes, and `{m}` / `{m,n}` quantifiers.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategy factories, mirroring `proptest::prop`'s layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

        /// A strategy producing `Vec`s of `element` with a length
        /// drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            let size = size.into();
            VecStrategy { element, size }
        }

        /// A strategy producing `BTreeSet`s with *up to* the drawn
        /// number of elements (duplicates collapse, as in proptest).
        pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            let size = size.into();
            BTreeSetStrategy { element, size }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// A strategy producing `Some(element)` or `None` with equal
        /// probability.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy { element }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// The strategy producing uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// A uniformly random boolean.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.inner.gen_bool(0.5)
            }
        }
    }
}

// Real proptest exposes `collection`/`option` both at the crate root
// and under `prop`; mirror that so either path compiles.
pub use prop::{collection, option};

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = prop::bool::Any;

    fn arbitrary() -> Self::Strategy {
        prop::bool::Any
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr);) => {};
    (@cfg ($config:expr);
     $(#[$meta:meta])+
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])+
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                let __outcome = $crate::test_runner::run_case(|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property failed at case {}/{}: {}", __case + 1, __config.cases, e);
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($config); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with a message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
