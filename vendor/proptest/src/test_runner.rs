//! Test-runner plumbing used by the `proptest!` macro expansion.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies.
///
/// Deterministically seeded: every run replays the same case stream,
/// so any failure is reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) inner: StdRng,
}

impl TestRng {
    /// Creates the deterministic per-test RNG.
    #[must_use]
    pub fn deterministic() -> Self {
        Self {
            inner: StdRng::seed_from_u64(0x_5EED_CAFE_F00D_D00D),
        }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runs one property case; exists so the macro expansion does not
/// contain an immediately-invoked closure.
pub fn run_case<F>(case: F) -> Result<(), TestCaseError>
where
    F: FnOnce() -> Result<(), TestCaseError>,
{
    case()
}
