//! The [`Strategy`] trait and the combinators the workspace uses.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<U, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            strategy: self,
            func,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

impl<T: rand::SampleRange + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.inner.gen_range(self.start..self.end)
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

// ---------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) strategy: S,
    pub(crate) func: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.func)(self.strategy.generate(rng))
    }
}

/// Object-safe strategy view, for [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice among same-valued strategies (see `prop_oneof!`).
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.inner.gen_range(0..self.arms.len());
        self.arms[ix].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Collections / Option
// ---------------------------------------------------------------------

/// A size specification: a fixed length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub(crate) min: usize,
    /// Exclusive upper bound.
    pub(crate) max: usize,
}

impl SizeRange {
    fn draw(self, rng: &mut TestRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.inner.gen_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            min: len,
            max: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy returned by `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy returned by `prop::collection::btree_set`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.draw(rng);
        (0..target).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy returned by `prop::option::of`.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    pub(crate) element: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.inner.gen_bool(0.5) {
            Some(self.element.generate(rng))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------

/// `&str` patterns act as string strategies, as in real proptest.
///
/// Supported pattern subset: literal characters, `.` (printable
/// ASCII), character classes (`[a-z0-9 _-]`, with `\` escapes and
/// `X-Y` ranges), and `{m}` / `{m,n}` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                rng.inner.gen_range(atom.min..atom.max + 1)
            };
            for _ in 0..count {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

struct Atom {
    kind: AtomKind,
    min: usize,
    max: usize,
}

enum AtomKind {
    Literal(char),
    /// Any printable ASCII character (stand-in for `.`).
    Dot,
    /// Flattened character-class alphabet.
    Class(Vec<char>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match &self.kind {
            AtomKind::Literal(c) => *c,
            AtomKind::Dot => {
                let code = rng.inner.gen_range(0x20u32..0x7F);
                char::from_u32(code).expect("printable ASCII")
            }
            AtomKind::Class(alphabet) => alphabet[rng.inner.gen_range(0..alphabet.len())],
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut pos = 0;
    while pos < chars.len() {
        let kind = match chars[pos] {
            '.' => {
                pos += 1;
                AtomKind::Dot
            }
            '[' => {
                pos += 1;
                let mut alphabet = Vec::new();
                while pos < chars.len() && chars[pos] != ']' {
                    let c = if chars[pos] == '\\' {
                        pos += 1;
                        chars[pos]
                    } else {
                        chars[pos]
                    };
                    // `X-Y` range (a trailing `-` is a literal).
                    if pos + 2 < chars.len() && chars[pos + 1] == '-' && chars[pos + 2] != ']' {
                        let end = chars[pos + 2];
                        assert!(c <= end, "invalid class range {c}-{end} in {pattern:?}");
                        alphabet.extend((c..=end).filter(|ch| ch.is_ascii()));
                        pos += 3;
                    } else {
                        alphabet.push(c);
                        pos += 1;
                    }
                }
                assert!(
                    pos < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                pos += 1; // ']'
                assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
                AtomKind::Class(alphabet)
            }
            '\\' => {
                pos += 1;
                let c = chars[pos];
                pos += 1;
                AtomKind::Literal(c)
            }
            c => {
                pos += 1;
                AtomKind::Literal(c)
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if pos < chars.len() && chars[pos] == '{' {
            let close = chars[pos..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| pos + off)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
            let body: String = chars[pos + 1..close].iter().collect();
            pos = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                )
            } else {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { kind, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_patterns_generate_matching_strings() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let s = "[A-Za-z][A-Za-z0-9 _-]{0,40}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 41, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");

            let s = "[a-zA-Z0-9 .:%\\-]{0,80}".generate(&mut rng);
            assert!(s.len() <= 80, "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || " .:%-".contains(c)),
                "{s:?}"
            );

            let s = ".{0,120}".generate(&mut rng);
            assert!(s.len() <= 120, "{s:?}");
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = TestRng::deterministic();
        let union = Union::new(vec![(0u64..1).boxed(), (10u64..11).boxed()]);
        let drawn: std::collections::BTreeSet<u64> =
            (0..100).map(|_| union.generate(&mut rng)).collect();
        assert_eq!(drawn, [0u64, 10].into_iter().collect());
    }
}
