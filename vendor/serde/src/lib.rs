//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access and no cargo registry
//! cache, so the real `serde` can never be downloaded. This crate
//! implements the (much smaller) API surface the workspace actually
//! uses, with the same crate name so dependents compile unchanged:
//!
//! - `Serialize` / `Deserialize` traits (value-based rather than
//!   visitor-based: types convert to and from a JSON-like [`Value`]);
//! - `#[derive(Serialize, Deserialize)]` via the sibling
//!   `serde_derive` stand-in, honouring `#[serde(transparent)]` and
//!   `#[serde(rename_all = "snake_case")]`;
//! - implementations for the std types the workspace serializes
//!   (integers, floats, strings, `Option`, `Vec`, `VecDeque`, sets,
//!   maps, tuples).
//!
//! `serde_json` (also vendored) layers JSON text parsing/printing on
//! top of [`Value`]. The external serialized representation matches
//! real `serde_json` for every shape used in this workspace (external
//! enum tagging, transparent newtypes, stringified numeric map keys).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Map, Number, Value};

/// Error produced when deserializing a [`Value`] into a typed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into a [`Value`] tree.
///
/// The real serde is visitor-based; this stand-in converts through an
/// owned [`Value`], which is entirely sufficient (and much simpler)
/// for the data volumes this workspace serializes.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts a [`Value`] back into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// The replacement for a *missing* map entry, if the type has one.
    ///
    /// `Option<T>` fields deserialize to `None` when absent (mirroring
    /// serde's behaviour); everything else errors.
    #[must_use]
    fn missing_field() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value_as_u64(value)?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::U64(*self))
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value_as_u64(value)
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U64(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let n = value_as_u64(value)?;
        usize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(i64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value_as_i64(value)?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::I64(*self))
    }
}

impl Deserialize for i64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value_as_i64(value)
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Number(Number::I64(*self as i64))
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let n = value_as_i64(value)?;
        isize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value_as_f64(value)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        #[allow(clippy::cast_possible_truncation)]
        value_as_f64(value).map(|f| f as f32)
    }
}

/// Numeric coercions: JSON text does not distinguish `5`, `5.0`, and a
/// stringified map key `"5"`, so the numeric impls accept all three.
fn value_as_u64(value: &Value) -> Result<u64, DeError> {
    match value {
        Value::Number(Number::U64(n)) => Ok(*n),
        Value::Number(Number::I64(n)) => {
            u64::try_from(*n).map_err(|_| DeError::custom(format!("{n} is negative")))
        }
        Value::Number(Number::F64(f)) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
        {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(*f as u64)
        }
        Value::String(s) => s
            .parse()
            .map_err(|_| DeError::custom(format!("cannot parse {s:?} as u64"))),
        other => Err(DeError::custom(format!("expected u64, got {other:?}"))),
    }
}

fn value_as_i64(value: &Value) -> Result<i64, DeError> {
    match value {
        Value::Number(Number::I64(n)) => Ok(*n),
        Value::Number(Number::U64(n)) => {
            i64::try_from(*n).map_err(|_| DeError::custom(format!("{n} out of range for i64")))
        }
        Value::Number(Number::F64(f)) if f.fract() == 0.0 =>
        {
            #[allow(clippy::cast_possible_truncation)]
            Ok(*f as i64)
        }
        Value::String(s) => s
            .parse()
            .map_err(|_| DeError::custom(format!("cannot parse {s:?} as i64"))),
        other => Err(DeError::custom(format!("expected i64, got {other:?}"))),
    }
}

fn value_as_f64(value: &Value) -> Result<f64, DeError> {
    match value {
        Value::Number(n) => Ok(n.as_f64()),
        Value::String(s) => s
            .parse()
            .map_err(|_| DeError::custom(format!("cannot parse {s:?} as f64"))),
        other => Err(DeError::custom(format!("expected number, got {other:?}"))),
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by serialized representation.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(ToString::to_string);
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

/// Converts a serialized key into a JSON object key, mirroring
/// `serde_json`'s behaviour (strings stay; integers stringify).
fn map_key(value: Value) -> Result<String, DeError> {
    match value {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(n.to_string()),
        other => Err(DeError::custom(format!(
            "map key must serialize to a string or number, got {other:?}"
        ))),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            let key = map_key(k.to_value()).expect("unsupported map key type");
            map.insert(key, v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    map_key(k.to_value()).expect("unsupported map key type"),
                    v.to_value(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k, v);
        }
        Value::Object(map)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($ix),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected {expected}-tuple, got {} items",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$ix])?,)+))
                    }
                    other => Err(DeError::custom(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::custom(format!("expected null, got {other:?}"))),
        }
    }
}

/// Fetches and deserializes one field of an object, used by the derive
/// macro. Missing entries fall back to [`Deserialize::missing_field`].
///
/// # Errors
///
/// Returns a [`DeError`] if the field is absent (and has no default) or
/// has the wrong shape.
pub fn de_field<T: Deserialize>(map: &Map, field: &str) -> Result<T, DeError> {
    match map.get(field) {
        Some(v) => T::from_value(v).map_err(|e| DeError::custom(format!("field {field:?}: {e}"))),
        None => {
            T::missing_field().ok_or_else(|| DeError::custom(format!("missing field {field:?}")))
        }
    }
}
