//! The JSON-like value tree all (de)serialization goes through.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (non-negative integers parse as [`Number::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// The number as an `f64` (lossy for very large integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match self {
            #[allow(clippy::cast_precision_loss)]
            Number::U64(n) => *n as f64,
            #[allow(clippy::cast_precision_loss)]
            Number::I64(n) => *n as f64,
            Number::F64(f) => *f,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::U64(n) => Some(*n),
            Number::I64(n) => u64::try_from(*n).ok(),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            Number::F64(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    // Match serde_json: floats always carry a decimal point.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An order-preserving string-keyed map (JSON object).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing any previous entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a String, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.entries.iter().map(|(k, v)| (k, v)))
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Writes the compact JSON encoding of `self` into `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                if let Number::F64(f) = n {
                    if !f.is_finite() {
                        // serde_json rejects these; emit null (the only
                        // caller that can hit this is debug output).
                        out.push_str("null");
                        return;
                    }
                }
                out.push_str(&n.to_string());
            }
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes and writes one JSON string literal.
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out);
        f.write_str(&out)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}
