//! Offline stand-in for the `serde_json` crate.
//!
//! Layers JSON *text* parsing and printing on top of the vendored
//! `serde` crate's [`Value`] tree. Supports the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null)
//! and the `to_string` / `to_string_pretty` / `from_str` entry points
//! the workspace uses.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Map, Number, Value};

/// Error from parsing or (de)serializing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Specialized `Result` for JSON operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the
/// `Result` return matches the real `serde_json` signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_json(&mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] when the text is not valid JSON or its shape
/// does not match `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                Value::String(k.clone()).write_json(out);
                out.push_str(": ");
                write_pretty(v, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => other.write_json(out),
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' in object, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' in array, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following \uXXXX low half.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                other => {
                    return Err(Error::new(format!(
                        "unterminated or invalid string ({other:?})"
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::F64(
                text.parse()
                    .map_err(|_| Error::new(format!("invalid number {text:?}")))?,
            )
        } else if let Ok(n) = text.parse::<u64>() {
            Number::U64(n)
        } else if let Ok(n) = text.parse::<i64>() {
            Number::I64(n)
        } else {
            Number::F64(
                text.parse()
                    .map_err(|_| Error::new(format!("invalid number {text:?}")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":null},"e":true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é 😀"));
    }
}
