//! Property-based tests over the governance layer.

use proptest::prelude::*;

use alertops_core::{GuidelineContext, GuidelineLinter};
use alertops_model::{
    AlertStrategy, LogRule, MetricKind, MetricRule, MicroserviceId, ProbeRule, Severity,
    SimDuration, StrategyId, StrategyKind, ThresholdOp,
};

/// Arbitrary (structurally valid) strategy.
fn arb_strategy() -> impl Strategy<Value = AlertStrategy> {
    (
        0u64..50,                       // id
        "[A-Za-z][A-Za-z0-9 _-]{0,40}", // title
        0u8..4,                         // severity rank
        0u64..20,                       // microservice
        0usize..3,                      // kind selector
        1u32..6,                        // consecutive samples / min count
        0u64..60,                       // cooldown minutes
        prop::bool::ANY,                // has notify target
    )
        .prop_map(|(id, title, sev, ms, kind_ix, count, cooldown, notify)| {
            let kind = match kind_ix {
                0 => StrategyKind::Probe(ProbeRule {
                    no_response_timeout: SimDuration::from_secs(10 + u64::from(count) * 30),
                }),
                1 => StrategyKind::Log(LogRule {
                    keyword: "ERROR".into(),
                    min_count: count,
                    window: SimDuration::from_mins(2),
                }),
                _ => StrategyKind::Metric(MetricRule {
                    metric: MetricKind::ALL[(id % 8) as usize],
                    op: ThresholdOp::Above,
                    threshold: 50.0 + count as f64,
                    consecutive_samples: count,
                }),
            };
            let mut builder = AlertStrategy::builder(StrategyId(id))
                .title_template(title)
                .severity(Severity::from_rank(sev).unwrap())
                .microservice(MicroserviceId(ms))
                .kind(kind)
                .cooldown(SimDuration::from_mins(cooldown));
            if notify {
                builder = builder.notify("oce@example.com");
            }
            builder.build().expect("generated strategy is valid")
        })
}

/// Deep sweep under `ALERTOPS_TEST_FULL=1`; a faster default keeps the
/// tier-1 wall clock flat.
fn cases(full: u32, quick: u32) -> u32 {
    if std::env::var("ALERTOPS_TEST_FULL").as_deref() == Ok("1") {
        full
    } else {
        quick
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(128, 32)))]

    #[test]
    fn linter_is_deterministic_and_well_formed(strategy in arb_strategy()) {
        let linter = GuidelineLinter::new();
        let context = GuidelineContext::default();
        let a = linter.lint(&strategy, None, &context);
        let b = linter.lint(&strategy, None, &context);
        prop_assert_eq!(&a, &b);
        for violation in &a {
            prop_assert_eq!(violation.strategy, strategy.id());
            prop_assert!(!violation.message.trim().is_empty());
        }
    }

    #[test]
    fn fault_tolerance_context_only_adds_target_violations(
        strategy in arb_strategy(),
    ) {
        let linter = GuidelineLinter::new();
        let without = linter.lint(&strategy, None, &GuidelineContext::default());
        let context = GuidelineContext {
            fault_tolerant: (0..20).map(MicroserviceId).collect(),
        };
        let with = linter.lint(&strategy, None, &context);
        // The shielded-host knowledge can only ADD Target findings; the
        // Timing and Presentation verdicts must be unchanged.
        let non_target = |vs: &[alertops_core::GuidelineViolation]| {
            vs.iter()
                .filter(|v| v.aspect != alertops_core::GuidelineAspect::Target)
                .cloned()
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(non_target(&without), non_target(&with));
        prop_assert!(with.len() >= without.len());
    }

    #[test]
    fn canonical_good_strategy_stays_clean_under_any_context(
        shielded in prop::collection::btree_set((0u64..20).prop_map(MicroserviceId), 0..20),
    ) {
        // A strategy written to the guidelines must never be flagged,
        // whatever fault-tolerance knowledge arrives — it monitors a
        // service-quality metric, debounces, cools down, names things.
        let strategy = AlertStrategy::builder(StrategyId(1))
            .title_template("request latency of payment gateway is higher than 800ms, checkouts failing")
            .severity(Severity::Major)
            .microservice(MicroserviceId(3))
            .kind(StrategyKind::Metric(MetricRule {
                metric: MetricKind::Latency,
                op: ThresholdOp::Above,
                threshold: 800.0,
                consecutive_samples: 3,
            }))
            .cooldown(SimDuration::from_mins(30))
            .notify("oce@example.com")
            .build()
            .unwrap();
        let sop = alertops_model::Sop::builder("latency", StrategyId(1))
            .description("d")
            .generation_rule("g")
            .potential_impact("i")
            .possible_cause("c")
            .step("s")
            .build()
            .unwrap();
        let context = GuidelineContext { fault_tolerant: shielded };
        let violations = GuidelineLinter::new().lint(&strategy, Some(&sop), &context);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }
}
