//! Governor-level metric handles.

use std::sync::Arc;

use alertops_detect::DetectMetrics;
use alertops_obs::{Histogram, MetricsRegistry, Span};
use alertops_react::ReactMetrics;

/// The full metric bundle an instrumented [`AlertGovernor`] records
/// into: the detect and react handles plus a streaming-ingest wall-time
/// histogram.
///
/// Like everything in `alertops-obs`, this is an observer: a governor
/// with metrics attached produces byte-identical reports, deltas, and
/// snapshots to one without (the chaos-determinism suite asserts this
/// end to end).
///
/// [`AlertGovernor`]: crate::AlertGovernor
#[derive(Debug, Clone)]
pub struct GovernorMetrics {
    /// Anti-pattern detector handles.
    pub detect: DetectMetrics,
    /// Reaction-pipeline handles.
    pub react: ReactMetrics,
    /// Wall time of one full streaming-window ingest (detection over
    /// the rolling history + reaction over the window).
    ingest_micros: Arc<Histogram>,
}

impl GovernorMetrics {
    /// Registers (or re-attaches to) every governor metric family.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            detect: DetectMetrics::register(registry),
            react: ReactMetrics::register(registry),
            ingest_micros: registry.histogram(
                "alertops_streaming_ingest_micros",
                "Wall time of one streaming-window ingest (detect + react).",
                &[],
            ),
        }
    }

    /// Starts a wall-time span for one streaming ingest.
    #[must_use]
    pub fn ingest_timer(&self) -> Span<'_> {
        self.ingest_micros.time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_families() {
        let registry = MetricsRegistry::new();
        let metrics = GovernorMetrics::register(&registry);
        drop(metrics.ingest_timer());
        let text = registry.render();
        assert!(text.contains("alertops_streaming_ingest_micros_count 1"));
        assert!(text.contains("alertops_detector_micros"));
        assert!(text.contains("alertops_react_stage_micros"));
        alertops_obs::lint_exposition(&text).unwrap();
    }
}
