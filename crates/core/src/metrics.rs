//! Governor-level metric handles.

use std::sync::Arc;

use alertops_detect::DetectMetrics;
use alertops_obs::{Counter, Histogram, MetricsRegistry, Span};
use alertops_react::{EmergingReport, ReactMetrics};

/// Metric handles for the emerging-alert (R4) channel: AO-LDA
/// per-window wall time plus emerging-topic/alert counters.
///
/// Shared by the two places the sequential AO-LDA pass can run — a
/// [`StreamingGovernor`](crate::StreamingGovernor) in local mode and
/// the ingestd coordinator after its merge. Registration is
/// idempotent per registry (the `(name, labels)` dedup in
/// `alertops-obs`), so both embedders may register against the same
/// registry.
#[derive(Debug, Clone)]
pub struct EmergingMetrics {
    window_micros: Arc<Histogram>,
    topics_total: Arc<Counter>,
    alerts_total: Arc<Counter>,
}

impl EmergingMetrics {
    /// Registers (or re-attaches to) the emerging-channel families.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            window_micros: registry.histogram(
                "alertops_emerging_window_micros",
                "Wall time of one AO-LDA pass over an emerging-channel window.",
                &[],
            ),
            topics_total: registry.counter(
                "alertops_emerging_topics_total",
                "Emerging topics flagged by the AO-LDA channel.",
                &[],
            ),
            alerts_total: registry.counter(
                "alertops_emerging_alerts_total",
                "Alerts whose dominant topic was emerging.",
                &[],
            ),
        }
    }

    /// Starts a wall-time span for one AO-LDA window pass.
    #[must_use]
    pub fn window_timer(&self) -> Span<'_> {
        self.window_micros.time()
    }

    /// Records one window's emerging report into the counters.
    pub fn record_report(&self, report: &EmergingReport) {
        self.topics_total.add(report.emerging_topics as u64);
        self.alerts_total.add(report.emerging_alerts.len() as u64);
    }
}

/// The full metric bundle an instrumented [`AlertGovernor`] records
/// into: the detect and react handles plus a streaming-ingest wall-time
/// histogram.
///
/// Like everything in `alertops-obs`, this is an observer: a governor
/// with metrics attached produces byte-identical reports, deltas, and
/// snapshots to one without (the chaos-determinism suite asserts this
/// end to end).
///
/// [`AlertGovernor`]: crate::AlertGovernor
#[derive(Debug, Clone)]
pub struct GovernorMetrics {
    /// Anti-pattern detector handles.
    pub detect: DetectMetrics,
    /// Reaction-pipeline handles.
    pub react: ReactMetrics,
    /// Emerging-channel (R4) handles.
    pub emerging: EmergingMetrics,
    /// Wall time of one full streaming-window ingest (detection over
    /// the rolling history + reaction over the window).
    ingest_micros: Arc<Histogram>,
}

impl GovernorMetrics {
    /// Registers (or re-attaches to) every governor metric family.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            detect: DetectMetrics::register(registry),
            react: ReactMetrics::register(registry),
            emerging: EmergingMetrics::register(registry),
            ingest_micros: registry.histogram(
                "alertops_streaming_ingest_micros",
                "Wall time of one streaming-window ingest (detect + react).",
                &[],
            ),
        }
    }

    /// Starts a wall-time span for one streaming ingest.
    #[must_use]
    pub fn ingest_timer(&self) -> Span<'_> {
        self.ingest_micros.time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_families() {
        let registry = MetricsRegistry::new();
        let metrics = GovernorMetrics::register(&registry);
        drop(metrics.ingest_timer());
        let text = registry.render();
        assert!(text.contains("alertops_streaming_ingest_micros_count 1"));
        assert!(text.contains("alertops_detector_micros"));
        assert!(text.contains("alertops_react_stage_micros"));
        assert!(text.contains("alertops_emerging_window_micros"));
        alertops_obs::lint_exposition(&text).unwrap();
    }

    #[test]
    fn emerging_metrics_record_reports() {
        let registry = MetricsRegistry::new();
        let metrics = EmergingMetrics::register(&registry);
        drop(metrics.window_timer());
        metrics.record_report(&EmergingReport {
            window_index: 0,
            window_start: alertops_model::SimTime::from_secs(0),
            alert_count: 5,
            emerging_topics: 2,
            emerging_alerts: vec![alertops_model::AlertId(1), alertops_model::AlertId(2)],
        });
        let text = registry.render();
        assert!(text.contains("alertops_emerging_topics_total 2"));
        assert!(text.contains("alertops_emerging_alerts_total 2"));
        assert!(text.contains("alertops_emerging_window_micros_count 1"));
        alertops_obs::lint_exposition(&text).unwrap();
    }
}
