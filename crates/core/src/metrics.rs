//! Governor-level metric handles.

use std::sync::Arc;

use alertops_detect::DetectMetrics;
use alertops_obs::{milli, Counter, Gauge, Histogram, MetricsRegistry, Span};
use alertops_qoa::QoaWindowReport;
use alertops_react::{EmergingReport, ReactMetrics};

/// Metric handles for the emerging-alert (R4) channel: AO-LDA
/// per-window wall time plus emerging-topic/alert counters.
///
/// Shared by the two places the sequential AO-LDA pass can run — a
/// [`StreamingGovernor`](crate::StreamingGovernor) in local mode and
/// the ingestd coordinator after its merge. Registration is
/// idempotent per registry (the `(name, labels)` dedup in
/// `alertops-obs`), so both embedders may register against the same
/// registry.
#[derive(Debug, Clone)]
pub struct EmergingMetrics {
    window_micros: Arc<Histogram>,
    topics_total: Arc<Counter>,
    alerts_total: Arc<Counter>,
}

impl EmergingMetrics {
    /// Registers (or re-attaches to) the emerging-channel families.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            window_micros: registry.histogram(
                "alertops_emerging_window_micros",
                "Wall time of one AO-LDA pass over an emerging-channel window.",
                &[],
            ),
            topics_total: registry.counter(
                "alertops_emerging_topics_total",
                "Emerging topics flagged by the AO-LDA channel.",
                &[],
            ),
            alerts_total: registry.counter(
                "alertops_emerging_alerts_total",
                "Alerts whose dominant topic was emerging.",
                &[],
            ),
        }
    }

    /// Starts a wall-time span for one AO-LDA window pass.
    #[must_use]
    pub fn window_timer(&self) -> Span<'_> {
        self.window_micros.time()
    }

    /// Records one window's emerging report into the counters.
    pub fn record_report(&self, report: &EmergingReport) {
        self.topics_total.add(report.emerging_topics as u64);
        self.alerts_total.add(report.emerging_alerts.len() as u64);
    }
}

/// Metric handles for the streaming QoA feedback channel: model
/// update wall time, windows and samples absorbed, and the current
/// verdict counts. Shared by every place the sequential `partial_fit`
/// pass can run — a local-mode [`StreamingGovernor`]
/// (crate::StreamingGovernor), the ingestd coordinator, or the
/// cluster coordinator — with the same idempotent-registration rule
/// as [`EmergingMetrics`].
#[derive(Debug, Clone)]
pub struct QoaMetrics {
    update_micros: Arc<Histogram>,
    windows_total: Arc<Counter>,
    samples_total: Arc<Counter>,
    demoted: Arc<Gauge>,
    promoted: Arc<Gauge>,
    mean_ema_milli: Arc<Gauge>,
}

impl QoaMetrics {
    /// Registers (or re-attaches to) the QoA feedback families.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            update_micros: registry.histogram(
                "alertops_qoa_update_micros",
                "Wall time of one online QoA model update (join + partial_fit + scoring).",
                &[],
            ),
            windows_total: registry.counter(
                "alertops_qoa_windows_total",
                "Windows absorbed by the online QoA model.",
                &[],
            ),
            samples_total: registry.counter(
                "alertops_qoa_samples_total",
                "Per-strategy feature samples scored by the online QoA model.",
                &[],
            ),
            demoted: registry.gauge(
                "alertops_qoa_demoted_strategies",
                "Strategies currently demoted (blocked) by QoA feedback.",
                &[],
            ),
            promoted: registry.gauge(
                "alertops_qoa_promoted_strategies",
                "Strategies currently promoted (escalated) by QoA feedback.",
                &[],
            ),
            mean_ema_milli: registry.gauge(
                "alertops_qoa_mean_ema_milli",
                "Mean per-strategy QoA EMA over the last window, in thousandths.",
                &[],
            ),
        }
    }

    /// Starts a wall-time span for one model update.
    #[must_use]
    pub fn update_timer(&self) -> Span<'_> {
        self.update_micros.time()
    }

    /// Records one window's QoA report into the counters and gauges.
    pub fn record_report(&self, report: &QoaWindowReport) {
        self.windows_total.inc();
        self.samples_total.add(report.absorbed as u64);
        self.demoted.set(report.demoted.len() as u64);
        self.promoted.set(report.promoted.len() as u64);
        let mean = if report.scored.is_empty() {
            0.0
        } else {
            report.scored.iter().map(|s| s.ema).sum::<f64>() / report.scored.len() as f64
        };
        self.mean_ema_milli.set(milli(mean));
    }
}

/// The full metric bundle an instrumented [`AlertGovernor`] records
/// into: the detect and react handles plus a streaming-ingest wall-time
/// histogram.
///
/// Like everything in `alertops-obs`, this is an observer: a governor
/// with metrics attached produces byte-identical reports, deltas, and
/// snapshots to one without (the chaos-determinism suite asserts this
/// end to end).
///
/// [`AlertGovernor`]: crate::AlertGovernor
#[derive(Debug, Clone)]
pub struct GovernorMetrics {
    /// Anti-pattern detector handles.
    pub detect: DetectMetrics,
    /// Reaction-pipeline handles.
    pub react: ReactMetrics,
    /// Emerging-channel (R4) handles.
    pub emerging: EmergingMetrics,
    /// Streaming QoA feedback-channel handles.
    pub qoa: QoaMetrics,
    /// Wall time of one full streaming-window ingest (detection over
    /// the rolling history + reaction over the window).
    ingest_micros: Arc<Histogram>,
}

impl GovernorMetrics {
    /// Registers (or re-attaches to) every governor metric family.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            detect: DetectMetrics::register(registry),
            react: ReactMetrics::register(registry),
            emerging: EmergingMetrics::register(registry),
            qoa: QoaMetrics::register(registry),
            ingest_micros: registry.histogram(
                "alertops_streaming_ingest_micros",
                "Wall time of one streaming-window ingest (detect + react).",
                &[],
            ),
        }
    }

    /// Starts a wall-time span for one streaming ingest.
    #[must_use]
    pub fn ingest_timer(&self) -> Span<'_> {
        self.ingest_micros.time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_families() {
        let registry = MetricsRegistry::new();
        let metrics = GovernorMetrics::register(&registry);
        drop(metrics.ingest_timer());
        let text = registry.render();
        assert!(text.contains("alertops_streaming_ingest_micros_count 1"));
        assert!(text.contains("alertops_detector_micros"));
        assert!(text.contains("alertops_react_stage_micros"));
        assert!(text.contains("alertops_emerging_window_micros"));
        assert!(text.contains("alertops_qoa_update_micros"));
        alertops_obs::lint_exposition(&text).unwrap();
    }

    #[test]
    fn qoa_metrics_record_reports() {
        let registry = MetricsRegistry::new();
        let metrics = QoaMetrics::register(&registry);
        drop(metrics.update_timer());
        metrics.record_report(&QoaWindowReport {
            absorbed: 4,
            scored: vec![
                alertops_qoa::StrategyQoa {
                    strategy: alertops_model::StrategyId(1),
                    scores: [0.5, 0.5, 0.5],
                    ema: 0.25,
                },
                alertops_qoa::StrategyQoa {
                    strategy: alertops_model::StrategyId(2),
                    scores: [0.5, 0.5, 0.5],
                    ema: 0.75,
                },
            ],
            demoted: vec![alertops_model::StrategyId(1)],
            promoted: Vec::new(),
            model_digest: 7,
        });
        let text = registry.render();
        assert!(text.contains("alertops_qoa_windows_total 1"));
        assert!(text.contains("alertops_qoa_samples_total 4"));
        assert!(text.contains("alertops_qoa_demoted_strategies 1"));
        assert!(text.contains("alertops_qoa_mean_ema_milli 500"));
        assert!(text.contains("alertops_qoa_update_micros_count 1"));
        alertops_obs::lint_exposition(&text).unwrap();
    }

    #[test]
    fn emerging_metrics_record_reports() {
        let registry = MetricsRegistry::new();
        let metrics = EmergingMetrics::register(&registry);
        drop(metrics.window_timer());
        metrics.record_report(&EmergingReport {
            window_index: 0,
            window_start: alertops_model::SimTime::from_secs(0),
            alert_count: 5,
            emerging_topics: 2,
            emerging_alerts: vec![alertops_model::AlertId(1), alertops_model::AlertId(2)],
        });
        let text = registry.render();
        assert!(text.contains("alertops_emerging_topics_total 2"));
        assert!(text.contains("alertops_emerging_alerts_total 2"));
        assert!(text.contains("alertops_emerging_window_micros_count 1"));
        alertops_obs::lint_exposition(&text).unwrap();
    }
}
