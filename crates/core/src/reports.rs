//! The combined governance report.

use std::fmt;

use alertops_detect::AntiPatternReport;
use alertops_qoa::QoaReport;
use alertops_react::PipelineReport;

use crate::guidelines::GuidelineViolation;

/// Everything one [`govern`](crate::AlertGovernor::govern) pass produces.
#[derive(Debug, Clone)]
pub struct GovernanceReport {
    /// Configuration-time guideline violations (Avoid stage).
    pub guideline_violations: Vec<GuidelineViolation>,
    /// Detected anti-patterns (Detect stage).
    pub anti_patterns: AntiPatternReport,
    /// Number of R1 blocking rules auto-derived from A4/A5 findings.
    pub derived_blocking_rules: usize,
    /// Reaction-pipeline outcome (React stage).
    pub pipeline: PipelineReport,
    /// Per-strategy QoA, worst overall quality first.
    pub qoa_worst_first: Vec<QoaReport>,
}

impl GovernanceReport {
    /// The `n` lowest-QoA strategies — the review shortlist.
    #[must_use]
    pub fn review_shortlist(&self, n: usize) -> &[QoaReport] {
        &self.qoa_worst_first[..n.min(self.qoa_worst_first.len())]
    }
}

impl fmt::Display for GovernanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Governance report")?;
        writeln!(
            f,
            "  guideline violations : {}",
            self.guideline_violations.len()
        )?;
        write!(f, "  {}", self.anti_patterns)?;
        writeln!(
            f,
            "  derived blocking rules: {}",
            self.derived_blocking_rules
        )?;
        for stage in &self.pipeline.stages {
            writeln!(f, "  pipeline {:<12}: {}", stage.stage, stage.remaining)?;
        }
        writeln!(
            f,
            "  volume reduction      : {:.1}%",
            self.pipeline.reduction * 100.0
        )?;
        if let Some(worst) = self.qoa_worst_first.first() {
            writeln!(
                f,
                "  worst QoA strategy    : {} (overall {:.2})",
                worst.strategy,
                worst.scores.overall()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortlist_is_bounded() {
        let report = GovernanceReport {
            guideline_violations: Vec::new(),
            anti_patterns: AntiPatternReport::default(),
            derived_blocking_rules: 0,
            pipeline: PipelineReport {
                stages: Vec::new(),
                triage: Vec::new(),
                reduction: 0.0,
            },
            qoa_worst_first: Vec::new(),
        };
        assert!(report.review_shortlist(5).is_empty());
        let text = report.to_string();
        assert!(text.contains("Governance report"));
        assert!(text.contains("volume reduction"));
    }
}
