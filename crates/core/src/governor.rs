//! The alert governor: detect → derive reactions → react → evaluate.

use std::collections::HashMap;

use alertops_detect::{AntiPattern, AntiPatternReport, IncrementalState};
use alertops_model::{Alert, AlertStrategy, DependencyGraph, Incident, Sop, StrategyId};
use alertops_qoa::{QoaScorer, QoaVerdicts};
use alertops_react::blocking::{AlertBlocker, BlockRule};
use alertops_react::correlation::AlertCorrelator;
use alertops_react::{AggregationConfig, ReactionPipeline};

use crate::guidelines::{GuidelineContext, GuidelineLinter};
use crate::metrics::GovernorMetrics;
use crate::reports::GovernanceReport;

/// Configuration for [`AlertGovernor`].
#[derive(Debug, Clone, Default)]
pub struct GovernorConfig {
    /// Aggregation settings for the reaction pipeline (R2).
    pub aggregation: AggregationConfig,
    /// Context for the preventative-guideline linter.
    pub guideline_context: GuidelineContext,
}

/// The unified governance engine over one strategy catalog.
///
/// See the [crate-level example](crate) for basic usage; the typical
/// production loop is:
///
/// 1. [`lint`](Self::lint) new/changed strategies before rollout (Avoid);
/// 2. periodically [`govern`](Self::govern) the recent alert history —
///    anti-patterns are detected, blocking rules derived from the A4/A5
///    findings, the reaction pipeline evaluated, and strategies ranked
///    by QoA (React + Detect);
/// 3. fix the worst strategies and repeat.
#[derive(Debug, Clone)]
pub struct AlertGovernor {
    strategies: Vec<AlertStrategy>,
    sops: HashMap<StrategyId, Sop>,
    graph: Option<DependencyGraph>,
    config: GovernorConfig,
    metrics: Option<GovernorMetrics>,
    /// The streaming QoA loop's current per-strategy verdicts; empty
    /// until feedback arrives. Both lists are sorted by strategy id.
    qoa_verdicts: QoaVerdicts,
}

impl AlertGovernor {
    /// Creates a governor over a strategy catalog.
    #[must_use]
    pub fn new(strategies: Vec<AlertStrategy>, config: GovernorConfig) -> Self {
        Self {
            strategies,
            sops: HashMap::new(),
            graph: None,
            config,
            metrics: None,
            qoa_verdicts: QoaVerdicts::default(),
        }
    }

    /// Attaches metric handles (detector wall time, reaction-stage
    /// timings, streaming-ingest latency). Metrics are observer-only:
    /// every report the governor produces is identical with or without
    /// them.
    #[must_use]
    pub fn with_metrics(mut self, metrics: GovernorMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// In-place variant of [`with_metrics`](Self::with_metrics), for
    /// instrumenting a governor already wrapped in a larger structure.
    pub fn set_metrics(&mut self, metrics: GovernorMetrics) {
        self.metrics = Some(metrics);
    }

    /// The attached metric handles, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&GovernorMetrics> {
        self.metrics.as_ref()
    }

    /// Registers SOPs (keyed by their strategy).
    #[must_use]
    pub fn with_sops(mut self, sops: impl IntoIterator<Item = Sop>) -> Self {
        for sop in sops {
            self.sops.insert(sop.strategy(), sop);
        }
        self
    }

    /// Attaches the microservice dependency graph (enables A6 detection
    /// and topology correlation).
    #[must_use]
    pub fn with_dependency_graph(mut self, graph: DependencyGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The governed strategies.
    #[must_use]
    pub fn strategies(&self) -> &[AlertStrategy] {
        &self.strategies
    }

    /// The attached microservice dependency graph, if any.
    #[must_use]
    pub fn dependency_graph(&self) -> Option<&DependencyGraph> {
        self.graph.as_ref()
    }

    /// The SOP of one strategy, if registered.
    #[must_use]
    pub fn sop(&self, id: StrategyId) -> Option<&Sop> {
        self.sops.get(&id)
    }

    /// The streaming QoA loop's current verdicts.
    #[must_use]
    pub fn qoa_verdicts(&self) -> &QoaVerdicts {
        &self.qoa_verdicts
    }

    /// Installs the verdicts the QoA loop derived at the previous
    /// window boundary. [`derive_blocker`](Self::derive_blocker) then
    /// blocks demoted strategies and spares promoted ones — the
    /// "scores drive governance" half of the feedback loop.
    pub fn set_qoa_verdicts(&mut self, verdicts: QoaVerdicts) {
        self.qoa_verdicts = verdicts;
    }

    /// Stage 1 (Avoid): lints every strategy against the preventative
    /// guidelines.
    #[must_use]
    pub fn lint(&self) -> Vec<crate::GuidelineViolation> {
        GuidelineLinter::new().lint_catalog(
            self.strategies.iter().map(|s| (s, self.sops.get(&s.id()))),
            &self.config.guideline_context,
        )
    }

    /// Stage 3 (Detect): runs the six anti-pattern detectors over the
    /// history.
    ///
    /// Implemented as "feed one window, never evict" over the same
    /// [`IncrementalState`] engine that powers the streaming governor,
    /// so batch and streaming detection share exactly one code path.
    #[must_use]
    pub fn detect(&self, alerts: &[Alert], incidents: &[Incident]) -> AntiPatternReport {
        let metrics = self.metrics.as_ref().map(|m| &m.detect);
        let mut engine = IncrementalState::default();
        engine.observe_window(alerts, self.graph.as_ref(), metrics);
        engine.current_findings(&self.strategies, incidents, self.graph.as_ref(), metrics)
    }

    /// Derives R1 blocking rules from transient/toggling (A4) and
    /// repeating (A5) findings — the paper's reaction to noise — and
    /// auto-tunes them with the QoA verdicts: strategies the feedback
    /// loop *promoted* (consistently high quality) are spared the
    /// A4/A5 rules, and strategies it *demoted* (consistently low
    /// quality) are blocked outright even without a finding.
    #[must_use]
    pub fn derive_blocker(&self, report: &AntiPatternReport) -> AlertBlocker {
        let mut blocker = AlertBlocker::new();
        for pattern in [AntiPattern::TransientToggling, AntiPattern::Repeating] {
            if let Some(findings) = report.findings.get(&pattern) {
                for finding in findings {
                    if self
                        .qoa_verdicts
                        .promoted
                        .binary_search(&finding.strategy)
                        .is_ok()
                    {
                        continue;
                    }
                    blocker.add_rule(BlockRule::for_strategy(
                        format!("{} per {}", finding.strategy, pattern.code()),
                        finding.strategy,
                    ));
                }
            }
        }
        for &strategy in &self.qoa_verdicts.demoted {
            blocker.add_rule(BlockRule::for_strategy(
                format!("{strategy} per qoa-demotion"),
                strategy,
            ));
        }
        blocker
    }

    /// Stage 2 (React): runs the reaction pipeline with the given
    /// blocker.
    #[must_use]
    pub fn react(&self, alerts: &[Alert], blocker: AlertBlocker) -> alertops_react::PipelineReport {
        let mut correlator = AlertCorrelator::new();
        if let Some(graph) = &self.graph {
            correlator = correlator.with_topology(graph.clone());
        }
        let mut pipeline = ReactionPipeline::new()
            .with_blocker(blocker)
            .with_aggregation(self.config.aggregation.clone())
            .with_correlator(correlator);
        if let Some(metrics) = &self.metrics {
            pipeline = pipeline.with_metrics(metrics.react.clone());
        }
        pipeline.run(alerts)
    }

    /// Evidence-based QoA scores for every strategy, worst overall
    /// first.
    #[must_use]
    pub fn qoa(&self, alerts: &[Alert], incidents: &[Incident]) -> Vec<alertops_qoa::QoaReport> {
        let mut by_strategy: HashMap<StrategyId, Vec<&Alert>> = HashMap::new();
        for alert in alerts {
            by_strategy.entry(alert.strategy()).or_default().push(alert);
        }
        let scorer = QoaScorer::new();
        let mut reports: Vec<alertops_qoa::QoaReport> = self
            .strategies
            .iter()
            .map(|strategy| {
                scorer.score(
                    strategy,
                    self.sops.get(&strategy.id()),
                    by_strategy
                        .get(&strategy.id())
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                    incidents,
                )
            })
            .collect();
        reports.sort_by(|a, b| {
            a.scores
                .overall()
                .partial_cmp(&b.scores.overall())
                .expect("scores are finite")
                .then(a.strategy.cmp(&b.strategy))
        });
        reports
    }

    /// The full Fig. 6 loop: lint, detect, derive blocking, react, and
    /// rank by QoA.
    #[must_use]
    pub fn govern(&self, alerts: &[Alert], incidents: &[Incident]) -> GovernanceReport {
        let violations = self.lint();
        let anti_patterns = self.detect(alerts, incidents);
        let blocker = self.derive_blocker(&anti_patterns);
        let derived_rules = blocker.rules().len();
        let pipeline = self.react(alerts, blocker);
        let qoa = self.qoa(alerts, incidents);
        GovernanceReport {
            guideline_violations: violations,
            anti_patterns,
            derived_blocking_rules: derived_rules,
            pipeline,
            qoa_worst_first: qoa,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{
        AlertId, Clearance, LogRule, MetricKind, MetricRule, Severity, SimDuration, SimTime,
        StrategyKind, ThresholdOp,
    };

    fn noisy_strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("haproxy process number warning")
            .severity(Severity::Warning)
            .kind(StrategyKind::Metric(MetricRule {
                metric: MetricKind::CpuUtilization,
                op: ThresholdOp::Above,
                threshold: 45.0,
                consecutive_samples: 1,
            }))
            .build()
            .unwrap()
    }

    fn clean_strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("Failed to commit changes, storage backend down")
            .severity(Severity::Critical)
            .service(alertops_model::ServiceId(5))
            .kind(StrategyKind::Log(LogRule {
                keyword: "ERROR".into(),
                min_count: 5,
                window: SimDuration::from_mins(2),
            }))
            .cooldown(SimDuration::from_mins(30))
            .notify("oce@example.com")
            .build()
            .unwrap()
    }

    /// A burst of transient alerts from the noisy strategy plus a couple
    /// of real ones.
    fn history() -> Vec<Alert> {
        let mut alerts = Vec::new();
        for i in 0..12u64 {
            let mut a = Alert::builder(AlertId(i), StrategyId(1))
                .title("haproxy process number warning")
                .raised_at(SimTime::from_secs(i * 300))
                .build();
            a.clear(SimTime::from_secs(i * 300 + 30), Clearance::Auto)
                .unwrap();
            alerts.push(a);
        }
        for i in 12..14u64 {
            alerts.push(
                Alert::builder(AlertId(i), StrategyId(2))
                    .title("Failed to commit changes, storage backend down")
                    .raised_at(SimTime::from_secs(i * 300))
                    .build(),
            );
        }
        alerts.sort_by_key(Alert::raised_at);
        alerts
    }

    /// An incident on the clean strategy's service covering its alerts,
    /// so the Critical severity is evidence-backed.
    fn incidents() -> Vec<alertops_model::Incident> {
        let mut inc = alertops_model::Incident::new(
            alertops_model::IncidentId(0),
            alertops_model::ServiceId(5),
            Severity::Critical,
            SimTime::from_secs(3_000),
        );
        inc.mitigate(SimTime::from_secs(8_000));
        vec![inc]
    }

    fn governor() -> AlertGovernor {
        AlertGovernor::new(
            vec![noisy_strategy(1), clean_strategy(2)],
            GovernorConfig::default(),
        )
    }

    #[test]
    fn detect_finds_the_noise() {
        let report = governor().detect(&history(), &[]);
        let flagged = report.flagged(AntiPattern::TransientToggling);
        assert!(flagged.contains(&StrategyId(1)));
        assert!(!flagged.contains(&StrategyId(2)));
    }

    #[test]
    fn derived_blocker_targets_flagged_strategies_only() {
        let gov = governor();
        let report = gov.detect(&history(), &[]);
        let blocker = gov.derive_blocker(&report);
        assert!(!blocker.rules().is_empty());
        let alerts = history();
        let outcome = blocker.apply(&alerts);
        assert!(outcome
            .blocked
            .iter()
            .all(|a| a.strategy() == StrategyId(1)));
        assert!(outcome.passed.iter().any(|a| a.strategy() == StrategyId(2)));
    }

    #[test]
    fn qoa_verdicts_tune_the_blocker() {
        let mut gov = governor();
        let report = gov.detect(&history(), &[]);
        // Baseline: A4 blocks the noisy strategy.
        assert!(!gov.derive_blocker(&report).rules().is_empty());
        // Promotion spares it despite the finding.
        gov.set_qoa_verdicts(QoaVerdicts {
            demoted: Vec::new(),
            promoted: vec![StrategyId(1)],
        });
        assert!(gov.derive_blocker(&report).rules().is_empty());
        // Demotion blocks the clean strategy even without a finding.
        gov.set_qoa_verdicts(QoaVerdicts {
            demoted: vec![StrategyId(2)],
            promoted: Vec::new(),
        });
        let blocker = gov.derive_blocker(&report);
        let alerts = history();
        let outcome = blocker.apply(&alerts);
        assert!(outcome
            .blocked
            .iter()
            .any(|a| a.strategy() == StrategyId(2)));
    }

    #[test]
    fn govern_runs_the_full_loop() {
        let report = governor().govern(&history(), &incidents());
        assert!(report.anti_patterns.finding_count() >= 1);
        assert!(report.derived_blocking_rules >= 1);
        assert!(report.pipeline.reduction > 0.5);
        assert_eq!(report.qoa_worst_first.len(), 2);
        // The noisy strategy ranks worse than the clean one.
        assert_eq!(report.qoa_worst_first[0].strategy, StrategyId(1));
        // The noisy strategy also violates guidelines (single-sample
        // metric, no cooldown, no notify target, no SOP).
        assert!(report
            .guideline_violations
            .iter()
            .any(|v| v.strategy == StrategyId(1)));
        let text = report.to_string();
        assert!(text.contains("Governance report"));
    }

    #[test]
    fn qoa_ranking_is_ascending_overall() {
        let reports = governor().qoa(&history(), &incidents());
        for w in reports.windows(2) {
            assert!(w[0].scores.overall() <= w[1].scores.overall());
        }
    }

    #[test]
    fn sops_improve_lint_results() {
        let base = governor();
        let violations_without = base.lint().len();
        let sop = Sop::builder("clean", StrategyId(2))
            .description("d")
            .generation_rule("g")
            .potential_impact("i")
            .possible_cause("c")
            .step("s")
            .build()
            .unwrap();
        let with_sop = governor().with_sops([sop]);
        let violations_with = with_sop.lint().len();
        assert!(violations_with < violations_without);
    }
}
