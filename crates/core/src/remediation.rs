//! Automatic strategy remediation — closing the Fig. 6 loop.
//!
//! Detection feeding a review queue is half the loop; the other half is
//! the strategy *changing*. For the mechanically-fixable anti-patterns
//! the corrected strategy can be generated outright:
//!
//! * **A4 transient/toggling** → raise the metric rule's debounce
//!   (consecutive samples) so single-sample blips stop firing;
//! * **A5 repeating** → extend the cooldown so one persistent condition
//!   pages once, not every few minutes;
//! * **A2 misleading severity** → move the severity to the level the
//!   incident/auto-clear evidence implies.
//!
//! A1 (unclear title) and A3 (improper target) need a human — nobody can
//! synthesize what a rule *should* have said — so those come back as
//! advisories with no revised strategy.

use serde::{Deserialize, Serialize};

use alertops_detect::{AntiPattern, AntiPatternReport, DetectionInput, MisleadingSeverityDetector};
use alertops_model::{AlertStrategy, Severity, SimDuration, StrategyId, StrategyKind};

/// The concrete change a fix applies (or asks a human for).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FixAction {
    /// Raise a metric rule's consecutive-sample debounce.
    RaiseDebounce {
        /// Debounce before the fix.
        from: u32,
        /// Debounce after the fix.
        to: u32,
    },
    /// Extend the strategy's cooldown.
    ExtendCooldown {
        /// Cooldown before the fix.
        from: SimDuration,
        /// Cooldown after the fix.
        to: SimDuration,
    },
    /// Move the severity to the evidence-implied level.
    AdjustSeverity {
        /// Configured severity before the fix.
        from: Severity,
        /// Evidence-implied severity.
        to: Severity,
    },
    /// Human action required: rewrite the title per the Presentation
    /// guideline (name the component and the failure manifestation).
    RewriteTitle,
    /// Human action required: re-target the rule at a service-quality
    /// metric (the infrastructure signal is shielded or non-indicative).
    Retarget,
}

/// One proposed fix for one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyFix {
    /// The strategy to change.
    pub strategy: StrategyId,
    /// Which anti-pattern motivated the fix.
    pub pattern: AntiPattern,
    /// What to change.
    pub action: FixAction,
    /// The corrected strategy, when the fix is mechanical; `None` for
    /// human-action advisories.
    pub revised: Option<AlertStrategy>,
}

/// Remediation thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemediationConfig {
    /// Debounce applied to over-sensitive metric rules.
    pub target_debounce: u32,
    /// Cooldown applied to repeating strategies.
    pub target_cooldown: SimDuration,
}

impl Default for RemediationConfig {
    fn default() -> Self {
        Self {
            target_debounce: 3,
            target_cooldown: SimDuration::from_mins(30),
        }
    }
}

/// Derives fixes from a detection report.
///
/// One strategy can receive several fixes (it may be both toggling and
/// repeating); [`apply_fixes`] composes them. Output is ordered by
/// strategy id, then pattern.
#[must_use]
pub fn suggest_fixes(
    strategies: &[AlertStrategy],
    report: &AntiPatternReport,
    input: &DetectionInput<'_>,
    config: &RemediationConfig,
) -> Vec<StrategyFix> {
    let mut fixes = Vec::new();
    let severity_detector = MisleadingSeverityDetector::default();
    // Materialize the flag sets once instead of per strategy.
    let toggling = report.flagged(AntiPattern::TransientToggling);
    let repeating = report.flagged(AntiPattern::Repeating);
    let misleading = report.flagged(AntiPattern::MisleadingSeverity);
    let unclear = report.flagged(AntiPattern::UnclearTitle);
    let improper = report.flagged(AntiPattern::ImproperRule);
    for strategy in strategies {
        // A4: raise debounce on over-sensitive metric rules.
        if toggling.contains(&strategy.id()) {
            if let StrategyKind::Metric(rule) = strategy.kind() {
                if rule.consecutive_samples < config.target_debounce {
                    let mut revised_rule = rule.clone();
                    revised_rule.consecutive_samples = config.target_debounce;
                    fixes.push(StrategyFix {
                        strategy: strategy.id(),
                        pattern: AntiPattern::TransientToggling,
                        action: FixAction::RaiseDebounce {
                            from: rule.consecutive_samples,
                            to: config.target_debounce,
                        },
                        revised: Some(
                            strategy
                                .clone()
                                .with_kind(StrategyKind::Metric(revised_rule)),
                        ),
                    });
                }
            }
        }
        // A5: extend cooldown on repeating strategies.
        if repeating.contains(&strategy.id()) && strategy.cooldown() < config.target_cooldown {
            fixes.push(StrategyFix {
                strategy: strategy.id(),
                pattern: AntiPattern::Repeating,
                action: FixAction::ExtendCooldown {
                    from: strategy.cooldown(),
                    to: config.target_cooldown,
                },
                revised: Some(strategy.clone().with_cooldown(config.target_cooldown)),
            });
        }
        // A2: adjust severity toward the evidence.
        if misleading.contains(&strategy.id()) {
            if let Some(implied) = severity_detector.implied_for(input, strategy) {
                if implied != strategy.severity() {
                    fixes.push(StrategyFix {
                        strategy: strategy.id(),
                        pattern: AntiPattern::MisleadingSeverity,
                        action: FixAction::AdjustSeverity {
                            from: strategy.severity(),
                            to: implied,
                        },
                        revised: Some(strategy.clone().with_severity(implied)),
                    });
                }
            }
        }
        // A1/A3: advisories.
        if unclear.contains(&strategy.id()) {
            fixes.push(StrategyFix {
                strategy: strategy.id(),
                pattern: AntiPattern::UnclearTitle,
                action: FixAction::RewriteTitle,
                revised: None,
            });
        }
        if improper.contains(&strategy.id()) {
            fixes.push(StrategyFix {
                strategy: strategy.id(),
                pattern: AntiPattern::ImproperRule,
                action: FixAction::Retarget,
                revised: None,
            });
        }
    }
    fixes
}

/// Applies the mechanical fixes to a catalog, composing multiple fixes
/// per strategy (advisories are skipped). Returns the corrected
/// strategy list in the original order.
#[must_use]
pub fn apply_fixes(strategies: &[AlertStrategy], fixes: &[StrategyFix]) -> Vec<AlertStrategy> {
    strategies
        .iter()
        .map(|strategy| {
            let mut revised = strategy.clone();
            for fix in fixes.iter().filter(|f| f.strategy == strategy.id()) {
                match &fix.action {
                    FixAction::RaiseDebounce { to, .. } => {
                        if let StrategyKind::Metric(rule) = revised.kind() {
                            let mut rule = rule.clone();
                            rule.consecutive_samples = *to;
                            revised = revised.with_kind(StrategyKind::Metric(rule));
                        }
                    }
                    FixAction::ExtendCooldown { to, .. } => {
                        revised = revised.with_cooldown(*to);
                    }
                    FixAction::AdjustSeverity { to, .. } => {
                        revised = revised.with_severity(*to);
                    }
                    FixAction::RewriteTitle | FixAction::Retarget => {}
                }
            }
            revised
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_detect::AntiPatternReport;
    use alertops_model::{Alert, AlertId, Clearance, MetricKind, MetricRule, SimTime, ThresholdOp};

    fn oversensitive_strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("cpu usage of worker is higher than 45")
            .severity(Severity::Warning)
            .kind(StrategyKind::Metric(MetricRule {
                metric: MetricKind::CpuUtilization,
                op: ThresholdOp::Above,
                threshold: 45.0,
                consecutive_samples: 1,
            }))
            .cooldown(SimDuration::from_mins(5))
            .build()
            .unwrap()
    }

    /// A burst of transients that trips both A4 and A5.
    fn noisy_history(strategy: u64) -> Vec<Alert> {
        (0..30u64)
            .map(|i| {
                let t = SimTime::from_secs(i * 110 * 60 / 30); // spread in ~2h
                let mut a = Alert::builder(AlertId(i), StrategyId(strategy))
                    .raised_at(t)
                    .build();
                a.clear(t + SimDuration::from_secs(40), Clearance::Auto)
                    .unwrap();
                a
            })
            .collect()
    }

    #[test]
    fn fixes_raise_debounce_and_cooldown_for_noise() {
        let strategies = vec![oversensitive_strategy(1)];
        let alerts = noisy_history(1);
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let report = AntiPatternReport::run_default(&input);
        assert!(report
            .flagged(AntiPattern::TransientToggling)
            .contains(&StrategyId(1)));
        let fixes = suggest_fixes(&strategies, &report, &input, &RemediationConfig::default());
        assert!(fixes
            .iter()
            .any(|f| matches!(f.action, FixAction::RaiseDebounce { from: 1, to: 3 })));
        // Every mechanical fix carries a revised strategy.
        for fix in &fixes {
            match fix.action {
                FixAction::RewriteTitle | FixAction::Retarget => {
                    assert!(fix.revised.is_none())
                }
                _ => assert!(fix.revised.is_some()),
            }
        }

        let fixed = apply_fixes(&strategies, &fixes);
        assert_eq!(fixed.len(), 1);
        let StrategyKind::Metric(rule) = fixed[0].kind() else {
            panic!("kind preserved");
        };
        assert_eq!(rule.consecutive_samples, 3);
    }

    #[test]
    fn clean_strategies_get_no_fixes() {
        let strategies = vec![oversensitive_strategy(1)];
        let report = AntiPatternReport::default();
        let input = DetectionInput::new(&strategies);
        let fixes = suggest_fixes(&strategies, &report, &input, &RemediationConfig::default());
        assert!(fixes.is_empty());
        assert_eq!(apply_fixes(&strategies, &fixes), strategies);
    }

    #[test]
    fn advisories_do_not_change_the_catalog() {
        let vague = AlertStrategy::builder(StrategyId(0))
            .title_template("Instance x is abnormal")
            .kind(StrategyKind::Metric(MetricRule {
                metric: MetricKind::Latency,
                op: ThresholdOp::Above,
                threshold: 500.0,
                consecutive_samples: 3,
            }))
            .cooldown(SimDuration::from_mins(30))
            .build()
            .unwrap();
        let strategies = vec![vague];
        let input = DetectionInput::new(&strategies);
        let report = AntiPatternReport::run_default(&input);
        let fixes = suggest_fixes(&strategies, &report, &input, &RemediationConfig::default());
        assert!(fixes
            .iter()
            .any(|f| f.action == FixAction::RewriteTitle && f.revised.is_none()));
        assert_eq!(apply_fixes(&strategies, &fixes), strategies);
    }
}
