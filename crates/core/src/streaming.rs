//! Streaming governance: the Fig. 6 loop run incrementally.
//!
//! A production deployment does not re-scan two years of alerts on every
//! pass — it ingests the stream window by window, keeps bounded rolling
//! state, and reacts to *deltas*: strategies newly flagged since the
//! last window, flags that cleared (the strategy was fixed or its noise
//! subsided), and storm onsets. [`StreamingGovernor`] wraps an
//! [`AlertGovernor`] around an
//! [`IncrementalState`](alertops_detect::IncrementalState) engine: each
//! window is folded into per-strategy counters, region-hour histograms,
//! and cascade edges as a *digest*, and subtracted again when it slides
//! out of scope — so per-window cost is O(window), not O(history), while
//! the emitted deltas stay byte-identical to batch recomputation.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use alertops_detect::storm::storms_from_histogram;
use alertops_detect::{AlertStorm, AntiPattern, IncrementalState, StormConfig, StrategyFinding};
use alertops_model::{Alert, AlertId, Incident, QoaLabel, RegionId, StrategyId};
use alertops_qoa::{
    FeatureExtractor, OnlineQoaModel, QoaCheckpoint, QoaFeedbackConfig, QoaSample, QoaVerdicts,
    QoaWindowReport,
};
use alertops_react::{EmergingAlertDetector, EmergingConfig, EmergingDoc, EmergingReport};

use crate::governor::AlertGovernor;

/// How the emerging-alert channel (R4, adaptive online LDA) runs in the
/// streaming loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmergingMode {
    /// The channel is off: no documents extracted, no reports.
    #[default]
    Off,
    /// Extract this window's documents into
    /// [`WindowDelta::emerging_docs`] but do not run AO-LDA locally.
    /// A downstream coordinator merges the forwards of all shards and
    /// runs the *single sequential* AO-LDA pass over them — the only
    /// arrangement in which an N-shard deployment reproduces the
    /// 1-shard emerging output byte-identically, because AO-LDA's
    /// adaptive prior makes every window depend on the full preceding
    /// document stream.
    Forward,
    /// Run AO-LDA locally per window and embed the report in
    /// [`WindowDelta::emerging`] (single-process deployments).
    Local,
}

/// Emerging-channel configuration carried by [`StreamingConfig`].
#[derive(Debug, Clone, Default)]
pub struct EmergingChannel {
    /// Whether and where the AO-LDA pass runs.
    pub mode: EmergingMode,
    /// Detector configuration (window length, topic count, seed), plus
    /// the opt-in storm-load token budget
    /// ([`alertops_react::EmergingBudget`]): set `config.budget` to cap
    /// per-window tokens via seeded adaptive sampling. The budget rides
    /// inside this config through ingestd and cluster unchanged —
    /// whichever process runs the sequential AO-LDA pass applies it.
    pub config: EmergingConfig,
}

/// How the streaming QoA feedback loop runs. The same
/// Forward-to-the-coordinator arrangement as [`EmergingMode`], and for
/// the same reason: `partial_fit` is order-sensitive, so the single
/// sequential model update must run at the topmost merge point for
/// N-shard output to reproduce the 1-shard output byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QoaMode {
    /// The loop is off: no samples extracted, no scores, no verdicts.
    #[default]
    Off,
    /// Extract this window's per-strategy feature vectors into
    /// [`WindowDelta::qoa_samples`] but do not update a model locally;
    /// a downstream coordinator merges the forwards, runs the single
    /// `partial_fit` pass against the window's labels, and pushes the
    /// resulting [`QoaVerdicts`] back down before the next close.
    Forward,
    /// Run the online model locally: absorb labels, score, and embed
    /// the [`QoaWindowReport`] in [`WindowDelta::qoa`]
    /// (single-process deployments).
    Local,
}

/// QoA-feedback configuration carried by [`StreamingConfig`].
#[derive(Debug, Clone, Default)]
pub struct QoaChannel {
    /// Whether and where the online model update runs.
    pub mode: QoaMode,
    /// Loop hyperparameters (learning rate, EMA smoothing, demotion /
    /// escalation thresholds). Rides through ingestd and cluster
    /// unchanged — whichever process owns the sequential model applies
    /// it.
    pub config: QoaFeedbackConfig,
}

/// Configuration for [`StreamingGovernor`].
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// How many ingested windows of history the detectors see. Evidence
    /// older than this slides out of scope (bounded memory, and stale
    /// noise stops tainting fixed strategies).
    pub history_windows: usize,
    /// Storm detection configuration for the onset flag.
    pub storm: StormConfig,
    /// The emerging-alert (R4) channel.
    pub emerging: EmergingChannel,
    /// The streaming QoA feedback loop.
    pub qoa: QoaChannel,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            history_windows: 24,
            storm: StormConfig::default(),
            emerging: EmergingChannel::default(),
            qoa: QoaChannel::default(),
        }
    }
}

/// What changed in the governance picture after one ingested window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowDelta {
    /// 0-based index of the ingested window.
    pub window_index: u64,
    /// Alerts ingested in this window.
    pub alert_count: usize,
    /// Findings whose `(pattern, strategy)` was not flagged after the
    /// previous window — the items to page a strategy owner about.
    pub new_findings: Vec<StrategyFinding>,
    /// `(pattern, strategy)` pairs flagged after the previous window but
    /// clear now — fixes taking effect (or evidence sliding out).
    pub resolved: Vec<(AntiPattern, StrategyId)>,
    /// Whether any region is inside a storm given the current history.
    pub storm_active: bool,
    /// `(region, hour, count)` histogram over the *rolling history*
    /// scope this delta was computed from. Histograms from shards that
    /// partition the stream sum key-wise to the unsharded histogram,
    /// which is how [`GovernanceSnapshot::merge`] recovers exact global
    /// storm state (see `alertops_detect::storms_from_histogram`).
    pub region_hours: Vec<(RegionId, u64, usize)>,
    /// Hour buckets present in the ingested window itself, ascending
    /// and deduplicated — the hours that count as "now" for the storm
    /// flag.
    pub window_hours: Vec<u64>,
    /// The reaction pipeline's triage list for this window's alerts,
    /// using blocking rules derived from the *current* findings.
    pub triage: Vec<AlertId>,
    /// Emerging-channel documents extracted from this window's alerts,
    /// sorted by alert id, when the governor runs in
    /// [`EmergingMode::Forward`]. Empty otherwise. Alert ids are unique,
    /// so however the window was sharded, the merged forwards sort back
    /// to one canonical document list (see [`merge_emerging_docs`]).
    pub emerging_docs: Vec<EmergingDoc>,
    /// This window's emerging report when the governor runs AO-LDA
    /// itself ([`EmergingMode::Local`]); `None` otherwise.
    pub emerging: Option<EmergingReport>,
    /// Per-strategy QoA feature vectors extracted from this window's
    /// alerts, sorted by strategy id, when the governor runs in
    /// [`QoaMode::Forward`]. Empty otherwise. Strategies are sharded
    /// disjointly, so merged forwards sort back to one canonical
    /// sample list with unique keys.
    pub qoa_samples: Vec<QoaSample>,
    /// Alerts of QoA-promoted strategies escalated past storm
    /// suppression this window, sorted by alert id. The explicit lane
    /// keeps the conservation law balanced: escalated alerts are a
    /// subset of the delivered ones, never an extra count.
    pub escalated: Vec<AlertId>,
    /// This window's QoA report when the governor runs the online
    /// model itself ([`QoaMode::Local`]); `None` otherwise.
    pub qoa: Option<QoaWindowReport>,
}

impl WindowDelta {
    /// The identity element of [`merged`](Self::merged): an empty
    /// window that changes nothing. `identity().merged(&d) == d` for
    /// every *canonical* delta `d` — one whose vector fields are in
    /// the canonical sort orders the merge produces (every delta the
    /// [`StreamingGovernor`] emits is canonical).
    #[must_use]
    pub fn identity() -> Self {
        Self {
            window_index: 0,
            alert_count: 0,
            new_findings: Vec::new(),
            resolved: Vec::new(),
            storm_active: false,
            region_hours: Vec::new(),
            window_hours: Vec::new(),
            triage: Vec::new(),
            emerging_docs: Vec::new(),
            emerging: None,
            qoa_samples: Vec::new(),
            escalated: Vec::new(),
            qoa: None,
        }
    }

    /// Merges two deltas of the *same* closed window produced over
    /// disjoint partitions of its alerts (different shards, or
    /// different nodes of a cluster).
    ///
    /// This is the commutative monoid the whole scale-out story rests
    /// on: counts and histograms sum, set-like fields union into
    /// canonical sort order, and `window_index` takes the maximum.
    /// Associativity, commutativity, and the identity law are proven
    /// by property tests in `tests/determinism.rs`; they are what let
    /// a cluster coordinator fold per-node deltas (each already a
    /// merge of per-shard deltas) in any grouping and still reproduce
    /// the single-process governance picture byte for byte.
    ///
    /// The one field outside the laws is `emerging`: a local AO-LDA
    /// report cannot be combined with another (the pass is inherently
    /// sequential), so merging keeps a report only when exactly one
    /// operand carries one. Deltas that flow into merges therefore run
    /// in [`EmergingMode::Forward`] (report `None`, documents
    /// forwarded), where the laws hold on every field.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self::merge_all(&[self.clone(), other.clone()])
    }

    /// Merges any number of same-window deltas in one pass; the n-ary
    /// form of [`merged`](Self::merged) (empty input yields
    /// [`identity`](Self::identity)).
    #[must_use]
    pub fn merge_all(deltas: &[WindowDelta]) -> WindowDelta {
        let window_index = deltas.iter().map(|d| d.window_index).max().unwrap_or(0);
        let alert_count = deltas.iter().map(|d| d.alert_count).sum();

        let mut new_findings: Vec<StrategyFinding> = deltas
            .iter()
            .flat_map(|d| d.new_findings.iter().cloned())
            .collect();
        new_findings.sort_by(|a, b| {
            (a.pattern, a.strategy, &a.evidence).cmp(&(b.pattern, b.strategy, &b.evidence))
        });

        let mut resolved: Vec<(AntiPattern, StrategyId)> = deltas
            .iter()
            .flat_map(|d| d.resolved.iter().copied())
            .collect();
        resolved.sort_unstable();

        let mut histogram: BTreeMap<(RegionId, u64), usize> = BTreeMap::new();
        for (region, hour, count) in deltas.iter().flat_map(|d| d.region_hours.iter()) {
            *histogram.entry((region.clone(), *hour)).or_insert(0) += count;
        }
        let region_hours: Vec<(RegionId, u64, usize)> = histogram
            .into_iter()
            .map(|((region, hour), count)| (region, hour, count))
            .collect();

        let window_hours: Vec<u64> = deltas
            .iter()
            .flat_map(|d| d.window_hours.iter().copied())
            .collect::<BTreeSet<u64>>()
            .into_iter()
            .collect();

        let mut triage: Vec<AlertId> = deltas
            .iter()
            .flat_map(|d| d.triage.iter().copied())
            .collect();
        triage.sort_unstable();

        let emerging_docs = merge_emerging_docs(deltas);

        let mut reports = deltas.iter().filter_map(|d| d.emerging.as_ref());
        let emerging = match (reports.next(), reports.next()) {
            (Some(report), None) => Some(report.clone()),
            _ => None,
        };

        // Canonical sample order: by strategy id, ties broken by the
        // raw feature bits so the sort is total (shards never produce
        // duplicate strategies, but the monoid laws must hold for any
        // input).
        let mut qoa_samples: Vec<QoaSample> = deltas
            .iter()
            .flat_map(|d| d.qoa_samples.iter().cloned())
            .collect();
        qoa_samples.sort_by(|a, b| {
            a.strategy.cmp(&b.strategy).then_with(|| {
                a.features
                    .iter()
                    .map(|f| f.to_bits())
                    .cmp(b.features.iter().map(|f| f.to_bits()))
            })
        });

        let mut escalated: Vec<AlertId> = deltas
            .iter()
            .flat_map(|d| d.escalated.iter().copied())
            .collect();
        escalated.sort_unstable();

        // Like `emerging`: a local QoA report is the output of an
        // inherently sequential pass, so it survives a merge only when
        // exactly one operand carries one.
        let mut qoa_reports = deltas.iter().filter_map(|d| d.qoa.as_ref());
        let qoa = match (qoa_reports.next(), qoa_reports.next()) {
            (Some(report), None) => Some(report.clone()),
            _ => None,
        };

        WindowDelta {
            window_index,
            alert_count,
            new_findings,
            resolved,
            storm_active: deltas.iter().any(|d| d.storm_active),
            region_hours,
            window_hours,
            triage,
            emerging_docs,
            emerging,
            qoa_samples,
            escalated,
            qoa,
        }
    }
}

/// The global governance picture for one closed window, merged from the
/// per-shard [`WindowDelta`]s of a sharded deployment (or from a single
/// delta, which it passes through).
///
/// Merging is exact for everything computed per strategy or per region:
/// alerts are sharded by `StrategyId`, so each `(pattern, strategy)`
/// flag lives on exactly one shard, and the summed region-hour
/// histograms reproduce the unsharded storm detector's input. The
/// triage list is the concatenation of per-shard triage (cross-strategy
/// correlation is evaluated within each shard only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernanceSnapshot {
    /// Index of the merged window.
    pub window_index: u64,
    /// Total alerts ingested across shards in this window.
    pub alert_count: usize,
    /// Newly flagged findings across shards, sorted by
    /// `(pattern, strategy)`.
    pub new_findings: Vec<StrategyFinding>,
    /// Flags cleared across shards, sorted.
    pub resolved: Vec<(AntiPattern, StrategyId)>,
    /// Storms over the merged region-hour histogram.
    pub storms: Vec<AlertStorm>,
    /// Whether any detected storm touches an hour present in this
    /// window.
    pub storm_active: bool,
    /// Concatenated per-shard triage lists, sorted by alert id.
    pub triage: Vec<AlertId>,
    /// Shards whose contribution to this window is degraded: their
    /// worker was restarted after a panic during the window, so alerts
    /// that were buffered (or mid-detection) at the time of the crash
    /// are missing from this window's picture. Empty in healthy
    /// windows; [`GovernanceSnapshot::merge`] always starts empty and
    /// the daemon's coordinator fills it in.
    pub degraded: Vec<usize>,
    /// The emerging-channel (R4) report for this window, when the
    /// channel is enabled. [`GovernanceSnapshot::merge`] always leaves
    /// this `None` — AO-LDA is inherently sequential (each window's
    /// prior adapts from the previous windows' topics), so the
    /// coordinator runs the single pass over the merged
    /// [`WindowDelta::emerging_docs`] *after* merging and fills this
    /// in, keeping 1-shard and N-shard output byte-identical.
    pub emerging: Option<EmergingReport>,
    /// Alerts escalated past storm suppression because their strategy
    /// is QoA-promoted, sorted by alert id. Exact under sharding:
    /// promotion is per strategy and each strategy lives on one shard.
    pub escalated: Vec<AlertId>,
    /// The QoA window report, when the feedback loop is enabled.
    /// [`GovernanceSnapshot::from_delta`] passes a report already
    /// embedded in the delta through ([`QoaMode::Local`]); in sharded
    /// deployments the deltas carry only forwarded samples, and the
    /// coordinator runs the single sequential model update *after*
    /// merging and fills this in — same contract as `emerging`.
    pub qoa: Option<QoaWindowReport>,
}

/// Collects the emerging-channel documents forwarded in one closed
/// window's deltas into the canonical order the coordinator feeds
/// AO-LDA: sorted by alert id. Since alert ids are unique and sharding
/// only partitions the window, every shard count concatenates and sorts
/// to the same list.
#[must_use]
pub fn merge_emerging_docs(deltas: &[WindowDelta]) -> Vec<EmergingDoc> {
    let mut docs: Vec<EmergingDoc> = deltas
        .iter()
        .flat_map(|d| d.emerging_docs.iter().cloned())
        .collect();
    docs.sort_by_key(|d| d.alert);
    docs
}

impl GovernanceSnapshot {
    /// Merges one closed window's per-shard deltas into the global
    /// picture. Deltas must come from the same window index (the
    /// coordinator's barrier guarantees this); with a single delta this
    /// is the identity on its fields plus full storm reconstruction.
    #[must_use]
    pub fn merge(deltas: &[WindowDelta], storm: &StormConfig) -> Self {
        Self::from_delta(&WindowDelta::merge_all(deltas), storm)
    }

    /// Builds the snapshot of one (already merged, or single-source)
    /// delta: sorts the per-window lists into their canonical orders
    /// and reconstructs exact global storm state from the delta's
    /// region-hour histogram. `merge` is exactly
    /// `from_delta(&WindowDelta::merge_all(deltas), storm)`; a cluster
    /// coordinator that folds node deltas through the
    /// [`WindowDelta`] monoid calls this on the fold's result.
    #[must_use]
    pub fn from_delta(delta: &WindowDelta, storm: &StormConfig) -> Self {
        let mut histogram: BTreeMap<(RegionId, u64), usize> = BTreeMap::new();
        for (region, hour, count) in &delta.region_hours {
            *histogram.entry((region.clone(), *hour)).or_insert(0) += count;
        }
        let storms = storms_from_histogram(histogram, storm);

        let window_hours: BTreeSet<u64> = delta.window_hours.iter().copied().collect();
        let storm_active = storms
            .iter()
            .any(|s| s.hours.iter().any(|h| window_hours.contains(h)));

        let mut new_findings = delta.new_findings.clone();
        new_findings.sort_by(|a, b| {
            (a.pattern, a.strategy, &a.evidence).cmp(&(b.pattern, b.strategy, &b.evidence))
        });
        let mut resolved = delta.resolved.clone();
        resolved.sort_unstable();
        let mut triage = delta.triage.clone();
        triage.sort_unstable();
        let mut escalated = delta.escalated.clone();
        escalated.sort_unstable();

        Self {
            window_index: delta.window_index,
            alert_count: delta.alert_count,
            new_findings,
            resolved,
            storms,
            storm_active,
            triage,
            degraded: Vec::new(),
            emerging: None,
            escalated,
            qoa: delta.qoa.clone(),
        }
    }
}

/// Incremental governance over an alert stream.
///
/// # Example
///
/// ```
/// use alertops_core::{AlertGovernor, GovernorConfig, StreamingConfig, StreamingGovernor};
/// use alertops_model::{Alert, AlertId, LogRule, SimDuration, SimTime, StrategyId, StrategyKind};
///
/// # fn main() -> Result<(), alertops_model::ModelError> {
/// let strategy = alertops_model::AlertStrategy::builder(StrategyId(0))
///     .title_template("Instance x is abnormal")
///     .kind(StrategyKind::Log(LogRule {
///         keyword: "E".into(),
///         min_count: 1,
///         window: SimDuration::from_mins(5),
///     }))
///     .build()?;
/// let governor = AlertGovernor::new(vec![strategy], GovernorConfig::default());
/// let mut streaming = StreamingGovernor::new(governor, StreamingConfig::default());
/// let window: Vec<Alert> = (0..3)
///     .map(|i| Alert::builder(AlertId(i), StrategyId(0)).raised_at(SimTime::from_secs(i * 60)).build())
///     .collect();
/// let delta = streaming.ingest(&window, &[]);
/// assert_eq!(delta.window_index, 0);
/// assert_eq!(delta.alert_count, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingGovernor {
    governor: AlertGovernor,
    config: StreamingConfig,
    engine: IncrementalState,
    incidents: Vec<Incident>,
    previous_flags: BTreeSet<(AntiPattern, StrategyId)>,
    windows_ingested: u64,
    /// The local AO-LDA detector, present iff the emerging channel
    /// runs in [`EmergingMode::Local`].
    emerging: Option<EmergingAlertDetector>,
    /// The QoA feature extractor, present iff the feedback loop is on
    /// (either mode — Forward shards extract, too).
    qoa_extractor: Option<FeatureExtractor>,
    /// The online QoA model, present iff the loop runs in
    /// [`QoaMode::Local`].
    qoa_model: Option<OnlineQoaModel>,
}

impl StreamingGovernor {
    /// Wraps a governor for streaming use.
    #[must_use]
    pub fn new(governor: AlertGovernor, config: StreamingConfig) -> Self {
        let emerging = match config.emerging.mode {
            EmergingMode::Local => Some(EmergingAlertDetector::new(config.emerging.config.clone())),
            EmergingMode::Off | EmergingMode::Forward => None,
        };
        let qoa_extractor = match config.qoa.mode {
            QoaMode::Off => None,
            QoaMode::Forward | QoaMode::Local => Some(FeatureExtractor::new()),
        };
        let qoa_model = match config.qoa.mode {
            QoaMode::Local => Some(OnlineQoaModel::new(config.qoa.config)),
            QoaMode::Off | QoaMode::Forward => None,
        };
        Self {
            governor,
            config,
            engine: IncrementalState::default(),
            incidents: Vec::new(),
            previous_flags: BTreeSet::new(),
            windows_ingested: 0,
            emerging,
            qoa_extractor,
            qoa_model,
        }
    }

    /// The emerging-channel mode this governor runs in.
    #[must_use]
    pub fn emerging_mode(&self) -> EmergingMode {
        self.config.emerging.mode
    }

    /// Overrides the emerging-channel mode. The ingestd daemon uses
    /// this to normalize shard governors: whatever mode the caller
    /// built them with, shards must only *forward* documents (or stay
    /// off) — a per-shard local AO-LDA pass would make emerging output
    /// depend on the shard count. Switching into
    /// [`EmergingMode::Local`] (re)creates a fresh local detector; any
    /// other switch drops it.
    pub fn set_emerging_mode(&mut self, mode: EmergingMode) {
        if mode == self.config.emerging.mode {
            return;
        }
        self.config.emerging.mode = mode;
        self.emerging = match mode {
            EmergingMode::Local => Some(EmergingAlertDetector::new(
                self.config.emerging.config.clone(),
            )),
            EmergingMode::Off | EmergingMode::Forward => None,
        };
    }

    /// The QoA-loop mode this governor runs in.
    #[must_use]
    pub fn qoa_mode(&self) -> QoaMode {
        self.config.qoa.mode
    }

    /// Overrides the QoA-loop mode. The ingestd daemon uses this the
    /// same way it uses [`set_emerging_mode`](Self::set_emerging_mode):
    /// shard governors are normalized to *forward* samples (or stay
    /// off), because a per-shard `partial_fit` would make the model
    /// depend on the shard count. Switching into [`QoaMode::Local`]
    /// (re)creates a fresh model; any other switch drops it.
    pub fn set_qoa_mode(&mut self, mode: QoaMode) {
        if mode == self.config.qoa.mode {
            return;
        }
        self.config.qoa.mode = mode;
        self.qoa_extractor = match mode {
            QoaMode::Off => None,
            QoaMode::Forward | QoaMode::Local => Some(FeatureExtractor::new()),
        };
        self.qoa_model = match mode {
            QoaMode::Local => Some(OnlineQoaModel::new(self.config.qoa.config)),
            QoaMode::Off | QoaMode::Forward => None,
        };
    }

    /// Installs QoA verdicts on the wrapped governor — how a
    /// coordinator pushes the model's conclusions back down to
    /// [`QoaMode::Forward`] shards between window closes.
    pub fn set_qoa_verdicts(&mut self, verdicts: QoaVerdicts) {
        self.governor.set_qoa_verdicts(verdicts);
    }

    /// The local online QoA model, when this governor owns one
    /// ([`QoaMode::Local`]).
    #[must_use]
    pub fn qoa_model(&self) -> Option<&OnlineQoaModel> {
        self.qoa_model.as_ref()
    }

    /// Captures the local QoA model's state for journaling, when this
    /// governor owns one.
    #[must_use]
    pub fn qoa_checkpoint(&self) -> Option<QoaCheckpoint> {
        self.qoa_model.as_ref().map(OnlineQoaModel::checkpoint)
    }

    /// Restores the local QoA model from a checkpoint (switching the
    /// loop into [`QoaMode::Local`] if needed) and installs the
    /// restored verdicts on the governor. Returns `false` when the
    /// checkpoint is malformed, leaving the current model untouched.
    pub fn restore_qoa(&mut self, checkpoint: &QoaCheckpoint) -> bool {
        let Some(model) = OnlineQoaModel::from_checkpoint(self.config.qoa.config, checkpoint)
        else {
            return false;
        };
        self.config.qoa.mode = QoaMode::Local;
        if self.qoa_extractor.is_none() {
            self.qoa_extractor = Some(FeatureExtractor::new());
        }
        self.governor.set_qoa_verdicts(model.verdicts());
        self.qoa_model = Some(model);
        true
    }

    /// The wrapped governor.
    #[must_use]
    pub fn governor(&self) -> &AlertGovernor {
        &self.governor
    }

    /// Attaches metric handles to the wrapped governor: detector and
    /// reaction-stage instrumentation plus a wall-time histogram over
    /// each [`ingest`](Self::ingest) call. Observer-only — deltas are
    /// identical with or without metrics.
    #[must_use]
    pub fn with_metrics(mut self, metrics: crate::GovernorMetrics) -> Self {
        self.governor.set_metrics(metrics);
        self
    }

    /// Number of windows ingested so far.
    #[must_use]
    pub fn windows_ingested(&self) -> u64 {
        self.windows_ingested
    }

    /// Alerts currently inside the rolling history. O(1): the engine
    /// tracks the count as windows are observed and evicted.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.engine.alert_count()
    }

    /// Ingests one window of (time-sorted) alerts plus any incidents
    /// declared during it, folds the window into the incremental
    /// detection engine (evicting windows that slide out of the rolling
    /// scope), and returns the delta.
    pub fn ingest(&mut self, window: &[Alert], incidents: &[Incident]) -> WindowDelta {
        self.ingest_inner(window, incidents, &[])
    }

    /// Owned-window variant of [`ingest`](Self::ingest) for callers
    /// that buffer alerts into a `Vec` they are done with (e.g. the
    /// ingestd shard workers): the buffer is consumed instead of
    /// borrowed, so handing it over costs nothing. Both paths share one
    /// implementation, and with the digest-based engine neither copies
    /// the alerts internally.
    pub fn ingest_owned(&mut self, window: Vec<Alert>, incidents: &[Incident]) -> WindowDelta {
        self.ingest_inner(&window, incidents, &[])
    }

    /// [`ingest`](Self::ingest) plus this window's OCE feedback
    /// labels, sorted by strategy id. Labels feed the online QoA model
    /// when the loop runs in [`QoaMode::Local`]; in the other modes
    /// they are ignored here (a Forward shard's labels travel to its
    /// coordinator out of band, alongside the window close).
    pub fn ingest_labeled(
        &mut self,
        window: &[Alert],
        incidents: &[Incident],
        labels: &[QoaLabel],
    ) -> WindowDelta {
        self.ingest_inner(window, incidents, labels)
    }

    /// Owned-window variant of [`ingest_labeled`](Self::ingest_labeled).
    pub fn ingest_owned_labeled(
        &mut self,
        window: Vec<Alert>,
        incidents: &[Incident],
        labels: &[QoaLabel],
    ) -> WindowDelta {
        self.ingest_inner(&window, incidents, labels)
    }

    fn ingest_inner(
        &mut self,
        window: &[Alert],
        incidents: &[Incident],
        labels: &[QoaLabel],
    ) -> WindowDelta {
        // Clone the (Arc-backed) metric handles so the ingest-latency
        // span does not pin a borrow of the governor for the whole
        // window — the QoA block below mutates it (verdict install).
        let metrics = self.governor.metrics().cloned();
        let _span = metrics.as_ref().map(|m| m.ingest_timer());
        let detect_metrics = metrics.as_ref().map(|m| &m.detect);

        self.engine
            .observe_window(window, self.governor.dependency_graph(), detect_metrics);
        while self.engine.window_count() > self.config.history_windows {
            self.engine.evict_window(detect_metrics);
        }
        self.incidents.extend(incidents.iter().cloned());

        // Prune incidents that can no longer intersect the retained
        // evidence — without this the incident list grows for the
        // lifetime of the stream. Open incidents are always kept; with
        // no alerts in scope every closed incident is prunable, since a
        // closed incident cannot influence detection without alert
        // evidence to co-occur with.
        match self.engine.oldest_alert_time() {
            Some(oldest) => self.incidents.retain(|inc| {
                inc.is_open()
                    || match inc.status() {
                        alertops_model::IncidentStatus::Mitigated { at } => at >= oldest,
                        alertops_model::IncidentStatus::Open => true,
                    }
            }),
            None => self.incidents.retain(Incident::is_open),
        }

        let report = self.engine.current_findings(
            self.governor.strategies(),
            &self.incidents,
            self.governor.dependency_graph(),
            detect_metrics,
        );
        let current_flags: BTreeSet<(AntiPattern, StrategyId)> = report
            .findings
            .iter()
            .flat_map(|(&pattern, findings)| findings.iter().map(move |f| (pattern, f.strategy)))
            .collect();

        let new_findings: Vec<StrategyFinding> = report
            .findings
            .values()
            .flatten()
            .filter(|f| !self.previous_flags.contains(&(f.pattern, f.strategy)))
            .cloned()
            .collect();
        let resolved: Vec<(AntiPattern, StrategyId)> = self
            .previous_flags
            .difference(&current_flags)
            .copied()
            .collect();

        let histogram = self.engine.histogram();
        let region_hours: Vec<(RegionId, u64, usize)> = histogram
            .iter()
            .map(|(key, count)| (key.0.clone(), key.1, *count))
            .collect();
        let window_hours: Vec<u64> = window
            .iter()
            .map(Alert::hour_bucket)
            .collect::<BTreeSet<u64>>()
            .into_iter()
            .collect();
        let storm_active = storms_from_histogram(histogram.clone(), &self.config.storm)
            .iter()
            .any(|s| {
                s.hours
                    .iter()
                    .any(|h| window_hours.binary_search(h).is_ok())
            });

        let blocker = self.governor.derive_blocker(&report);
        let pipeline = self.governor.react(window, blocker);

        // The escalation lane: alerts of QoA-promoted strategies that
        // the reaction pipeline did NOT surface in triage ride past
        // storm suppression explicitly. Uses the verdicts installed at
        // the previous window boundary — like the blocker above, so
        // window N is governed entirely by what window N-1 taught the
        // model. Escalated alerts are a subset of this window's
        // delivered alerts, so the conservation law is untouched.
        let promoted = &self.governor.qoa_verdicts().promoted;
        let escalated: Vec<AlertId> = if promoted.is_empty() {
            Vec::new()
        } else {
            let triaged: BTreeSet<AlertId> = pipeline.triage.iter().copied().collect();
            let mut escalated: Vec<AlertId> = window
                .iter()
                .filter(|a| promoted.binary_search(&a.strategy()).is_ok())
                .map(Alert::id)
                .filter(|id| !triaged.contains(id))
                .collect();
            escalated.sort_unstable();
            escalated.dedup();
            escalated
        };

        // The QoA loop: extract one feature vector per strategy that
        // alerted (canonically sorted by strategy id), then either
        // forward the samples for a coordinator's sequential model
        // update or run the update locally. Runs after the reaction
        // stage so this window's verdicts only govern window N+1.
        let (qoa_samples, qoa) = match self.qoa_extractor.as_ref() {
            None => (Vec::new(), None),
            Some(extractor) => {
                let mut by_strategy: BTreeMap<StrategyId, Vec<&Alert>> = BTreeMap::new();
                for alert in window {
                    by_strategy.entry(alert.strategy()).or_default().push(alert);
                }
                let samples: Vec<QoaSample> = by_strategy
                    .iter()
                    .filter_map(|(&id, alerts)| {
                        let strategy = self.governor.strategies().iter().find(|s| s.id() == id)?;
                        Some(QoaSample {
                            strategy: id,
                            features: extractor.extract(
                                strategy,
                                self.governor.sop(id),
                                alerts,
                                &self.incidents,
                            ),
                        })
                    })
                    .collect();
                match self.qoa_model.as_mut() {
                    Some(model) => {
                        let report = model.observe_window(&samples, labels);
                        self.governor.set_qoa_verdicts(model.verdicts());
                        (Vec::new(), Some(report))
                    }
                    None => (samples, None),
                }
            }
        };

        // R4 — the emerging channel. The document list is canonically
        // sorted by alert id so a local pass, a coordinator pass over
        // merged forwards, and any shard count all see the same order
        // (floating-point accumulation makes document order part of
        // the byte-identical contract).
        let (emerging_docs, emerging) = match self.config.emerging.mode {
            EmergingMode::Off => (Vec::new(), None),
            EmergingMode::Forward | EmergingMode::Local => {
                let mut docs: Vec<EmergingDoc> =
                    window.iter().map(EmergingDoc::from_alert).collect();
                docs.sort_by_key(|d| d.alert);
                match self.emerging.as_mut() {
                    Some(detector) => {
                        let report = {
                            let _span = self.governor.metrics().map(|m| m.emerging.window_timer());
                            detector.observe_docs(&docs)
                        };
                        if let Some(m) = self.governor.metrics() {
                            m.emerging.record_report(&report);
                        }
                        (Vec::new(), Some(report))
                    }
                    None => (docs, None),
                }
            }
        };

        self.previous_flags = current_flags;
        let delta = WindowDelta {
            window_index: self.windows_ingested,
            alert_count: window.len(),
            new_findings,
            resolved,
            storm_active,
            region_hours,
            window_hours,
            triage: pipeline.triage,
            emerging_docs,
            emerging,
            qoa_samples,
            escalated,
            qoa,
        };
        self.windows_ingested += 1;
        delta
    }
}

/// A serializable snapshot of a [`StreamingGovernor`]'s rolling
/// evidence: the retained history windows, oldest first, each
/// time-sorted the way the ingest path sorts them. Because the
/// incremental engine's state is a pure function of the retained
/// windows (digests in, digests out), replaying a checkpoint through
/// [`StreamingGovernor::restore`] reconstructs detection state **byte
/// for byte** — this is the wire format a cluster ships when a
/// strategy range is handed from one node to another, and what a
/// write-ahead log replays after a crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingCheckpoint {
    /// Window index of `windows[0]` — what
    /// [`StreamingGovernor::windows_ingested`] reads after restoring
    /// is `start_index + windows.len()`.
    pub start_index: u64,
    /// The retained windows, oldest first.
    pub windows: Vec<Vec<Alert>>,
}

impl StreamingCheckpoint {
    /// Total alerts across all retained windows.
    #[must_use]
    pub fn alert_count(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }

    /// Sorts every window into the canonical `(raised_at, id)` order
    /// the ingest path expects. Checkpoints rebuilt from a write-ahead
    /// log hold alerts in arrival order; canonicalizing makes replay
    /// independent of how concurrent producers interleaved.
    pub fn canonicalize(&mut self) {
        for window in &mut self.windows {
            window.sort_by_key(|a| (a.raised_at(), a.id()));
        }
    }

    /// Keeps only alerts whose strategy satisfies `keep` (window
    /// boundaries stay in place, so indices still align). This is the
    /// "seal and split" half of a range handoff: the source node's
    /// checkpoint is filtered to the moved range before shipping, and
    /// to the kept range before the source restores.
    pub fn retain_strategies(&mut self, keep: impl Fn(StrategyId) -> bool) {
        for window in &mut self.windows {
            window.retain(|a| keep(a.strategy()));
        }
    }

    /// Merges two checkpoints over disjoint strategy sets whose
    /// windows align index-for-index (the handoff target's own
    /// retained windows plus the shipped moved-range windows), keeping
    /// canonical per-window order.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoints disagree on window alignment — that
    /// would mean the two nodes closed different window sequences,
    /// which the cluster's single close barrier rules out.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        assert_eq!(
            (self.start_index, self.windows.len()),
            (other.start_index, other.windows.len()),
            "checkpoint merge requires aligned windows"
        );
        let mut merged = self.clone();
        for (window, extra) in merged.windows.iter_mut().zip(&other.windows) {
            window.extend(extra.iter().cloned());
        }
        merged.canonicalize();
        merged
    }
}

impl StreamingGovernor {
    /// Reconstructs a streaming governor from a checkpoint by
    /// replaying the retained windows through a fresh engine. Exact
    /// for governors whose emerging channel is [`EmergingMode::Off`]
    /// or [`EmergingMode::Forward`] and whose stream carried no
    /// incidents (both true of every daemon shard): detection state is
    /// a pure function of the retained windows, so the restored
    /// governor's subsequent deltas are byte-identical to the
    /// original's. [`EmergingMode::Local`] is *not* restorable this
    /// way — AO-LDA's adaptive prior depends on the full preceding
    /// stream, not just the retained tail — which is one more reason
    /// clusters defer the emerging pass to their coordinator. The same
    /// caveat applies to [`QoaMode::Local`]: the online model's
    /// weights depend on every label since stream start, so they are
    /// restored separately via [`restore_qoa`](Self::restore_qoa) from
    /// a journaled [`QoaCheckpoint`], not by window replay.
    #[must_use]
    pub fn restore(
        governor: AlertGovernor,
        config: StreamingConfig,
        checkpoint: &StreamingCheckpoint,
    ) -> Self {
        let mut streaming = Self::new(governor, config);
        streaming.windows_ingested = checkpoint.start_index;
        for window in &checkpoint.windows {
            let _ = streaming.ingest(window, &[]);
        }
        streaming
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::GovernorConfig;
    use alertops_model::{AlertStrategy, Clearance, LogRule, SimDuration, SimTime, StrategyKind};

    fn noisy_strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("haproxy process number warning")
            .kind(StrategyKind::Log(LogRule {
                keyword: "WARN".into(),
                min_count: 1,
                window: SimDuration::from_mins(5),
            }))
            .build()
            .unwrap()
    }

    /// `n` transient alerts of `strategy` inside hour `hour`.
    fn transient_window(start_id: u64, strategy: u64, hour: u64, n: usize) -> Vec<Alert> {
        let spacing = (3_500 / n.max(1)) as u64;
        (0..n as u64)
            .map(|i| {
                let t = SimTime::from_secs(hour * 3_600 + i * spacing.max(1));
                let mut a = Alert::builder(AlertId(start_id + i), StrategyId(strategy))
                    .title("haproxy process number warning")
                    .raised_at(t)
                    .build();
                a.clear(t + SimDuration::from_secs(30), Clearance::Auto)
                    .unwrap();
                a
            })
            .collect()
    }

    fn streaming(history_windows: usize) -> StreamingGovernor {
        let governor = AlertGovernor::new(
            vec![noisy_strategy(1), noisy_strategy(2)],
            GovernorConfig::default(),
        );
        StreamingGovernor::new(
            governor,
            StreamingConfig {
                history_windows,
                ..StreamingConfig::default()
            },
        )
    }

    #[test]
    fn findings_appear_once_then_stay_quiet() {
        let mut s = streaming(24);
        // Hour 0: enough transients to trip A4 on strategy 1.
        let d0 = s.ingest(&transient_window(0, 1, 0, 8), &[]);
        assert_eq!(d0.window_index, 0);
        assert!(
            d0.new_findings.iter().any(|f| f.strategy == StrategyId(1)),
            "A4 should fire on the first window: {:?}",
            d0.new_findings
        );
        // Hour 1: same behaviour continues — no *new* findings.
        let d1 = s.ingest(&transient_window(100, 1, 1, 8), &[]);
        assert!(
            d1.new_findings.is_empty(),
            "already-known findings must not repeat: {:?}",
            d1.new_findings
        );
        assert!(d1.resolved.is_empty());
    }

    #[test]
    fn fixed_strategy_resolves_when_evidence_slides_out() {
        let mut s = streaming(2); // short memory
        s.ingest(&transient_window(0, 1, 0, 8), &[]);
        // Two quiet windows push the noisy evidence out of history.
        let quiet: Vec<Alert> = Vec::new();
        s.ingest(&quiet, &[]);
        let d = s.ingest(&quiet, &[]);
        assert!(
            d.resolved
                .iter()
                .any(|&(_, strategy)| strategy == StrategyId(1)),
            "flag should resolve once evidence leaves scope: {:?}",
            d.resolved
        );
    }

    #[test]
    fn history_is_bounded() {
        let mut s = streaming(3);
        for hour in 0..10u64 {
            s.ingest(&transient_window(hour * 100, 1, hour, 5), &[]);
        }
        assert_eq!(s.windows_ingested(), 10);
        assert_eq!(s.history_len(), 15, "3 windows × 5 alerts");
    }

    #[test]
    fn triage_covers_only_the_current_window() {
        let mut s = streaming(24);
        let window = transient_window(0, 2, 0, 6);
        let delta = s.ingest(&window, &[]);
        for id in &delta.triage {
            assert!(window.iter().any(|a| a.id() == *id));
        }
    }

    #[test]
    fn storm_flag_follows_volume() {
        let mut s = streaming(24);
        let calm = s.ingest(&transient_window(0, 1, 0, 10), &[]);
        assert!(!calm.storm_active);
        // 150 alerts in one hour: above the 100/region/hour bar.
        let stormy = s.ingest(&transient_window(1_000, 2, 1, 150), &[]);
        assert!(stormy.storm_active);
    }

    #[test]
    fn mitigated_incidents_are_pruned_with_history() {
        use alertops_model::{Incident, IncidentId, ServiceId, Severity};
        let mut s = streaming(2);
        let mut old_incident = Incident::new(
            IncidentId(0),
            ServiceId(0),
            Severity::Critical,
            SimTime::from_secs(0),
        );
        old_incident.mitigate(SimTime::from_secs(600));
        s.ingest(&transient_window(0, 1, 0, 4), &[old_incident]);
        // Two later windows slide hour 0 out of history; the mitigated
        // incident must go with it.
        s.ingest(&transient_window(100, 1, 5, 4), &[]);
        s.ingest(&transient_window(200, 1, 6, 4), &[]);
        assert!(s.incidents.is_empty(), "stale incident retained");
        // An open incident survives any amount of sliding.
        let open = Incident::new(
            IncidentId(1),
            ServiceId(0),
            Severity::Critical,
            SimTime::from_secs(0),
        );
        s.ingest(&transient_window(300, 1, 7, 4), &[open]);
        s.ingest(&transient_window(400, 1, 9, 4), &[]);
        assert_eq!(s.incidents.len(), 1);
    }

    #[test]
    fn empty_window_is_fine() {
        let mut s = streaming(4);
        let d = s.ingest(&[], &[]);
        assert_eq!(d.alert_count, 0);
        assert!(d.triage.is_empty());
        assert!(!d.storm_active);
    }

    #[test]
    fn window_delta_roundtrips_through_json() {
        let mut s = streaming(24);
        let delta = s.ingest(&transient_window(0, 1, 0, 8), &[]);
        let json = serde_json::to_string(&delta).unwrap();
        let back: WindowDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(delta, back);
        assert!(!delta.region_hours.is_empty());
        assert_eq!(delta.window_hours, vec![0]);
    }

    #[test]
    fn snapshot_merge_of_single_delta_preserves_fields() {
        let mut s = streaming(24);
        let delta = s.ingest(&transient_window(1_000, 2, 1, 150), &[]);
        let snapshot =
            GovernanceSnapshot::merge(std::slice::from_ref(&delta), &StormConfig::default());
        assert_eq!(snapshot.window_index, delta.window_index);
        assert_eq!(snapshot.alert_count, delta.alert_count);
        assert_eq!(snapshot.storm_active, delta.storm_active);
        assert!(snapshot.storm_active, "150 alerts/hour is a storm");
        assert_eq!(snapshot.storms.len(), 1);
        let mut triage = delta.triage.clone();
        triage.sort_unstable();
        assert_eq!(snapshot.triage, triage);
        assert!(snapshot.degraded.is_empty(), "merge never marks degraded");
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: GovernanceSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snapshot, back);
    }

    fn streaming_with_emerging(mode: EmergingMode) -> StreamingGovernor {
        let governor = AlertGovernor::new(
            vec![noisy_strategy(1), noisy_strategy(2)],
            GovernorConfig::default(),
        );
        StreamingGovernor::new(
            governor,
            StreamingConfig {
                emerging: EmergingChannel {
                    mode,
                    config: EmergingConfig::default(),
                },
                ..StreamingConfig::default()
            },
        )
    }

    #[test]
    fn emerging_off_emits_nothing() {
        let mut s = streaming(24);
        assert_eq!(s.emerging_mode(), EmergingMode::Off);
        let d = s.ingest(&transient_window(0, 1, 0, 5), &[]);
        assert!(d.emerging_docs.is_empty());
        assert!(d.emerging.is_none());
    }

    #[test]
    fn forward_mode_extracts_docs_sorted_by_id() {
        let mut s = streaming_with_emerging(EmergingMode::Forward);
        let d = s.ingest(&transient_window(10, 1, 0, 5), &[]);
        assert_eq!(d.emerging_docs.len(), 5);
        assert!(d.emerging_docs.windows(2).all(|w| w[0].alert < w[1].alert));
        assert!(
            d.emerging.is_none(),
            "forward mode defers AO-LDA to the coordinator"
        );
        // An empty window still forwards (an empty list) so the
        // coordinator sees every wall-clock window.
        let empty = s.ingest(&[], &[]);
        assert!(empty.emerging_docs.is_empty());
    }

    #[test]
    fn local_mode_equals_coordinator_pass_over_merged_forwards() {
        let mut local = streaming_with_emerging(EmergingMode::Local);
        let mut shard_a = streaming_with_emerging(EmergingMode::Forward);
        let mut shard_b = streaming_with_emerging(EmergingMode::Forward);
        let mut coordinator = EmergingAlertDetector::new(EmergingConfig::default());
        for hour in 0..3u64 {
            let window = transient_window(hour * 100, 1, hour, 6);
            let local_report = local
                .ingest(&window, &[])
                .emerging
                .expect("local mode embeds a report");
            // Partition the window across two "shards" by id parity.
            let (wa, wb): (Vec<Alert>, Vec<Alert>) =
                window.iter().cloned().partition(|a| a.id().0 % 2 == 0);
            let da = shard_a.ingest(&wa, &[]);
            let db = shard_b.ingest(&wb, &[]);
            let docs = merge_emerging_docs(&[da, db]);
            let merged_report = coordinator.observe_docs(&docs);
            assert_eq!(local_report, merged_report);
        }
    }

    #[test]
    fn restore_from_checkpoint_is_byte_identical_going_forward() {
        // Run one governor nine windows deep, checkpoint its last
        // three retained windows, restore a sibling from the
        // checkpoint, and require identical deltas ever after.
        let mut original = streaming(3);
        let mut retained: Vec<Vec<Alert>> = Vec::new();
        for hour in 0..9u64 {
            let window = transient_window(hour * 100, 1 + hour % 2, hour, 5 + hour as usize);
            original.ingest(&window, &[]);
            retained.push(window);
            if retained.len() > 3 {
                retained.remove(0);
            }
        }
        let checkpoint = StreamingCheckpoint {
            start_index: original.windows_ingested() - retained.len() as u64,
            windows: retained,
        };
        let json = serde_json::to_string(&checkpoint).unwrap();
        let shipped: StreamingCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(checkpoint, shipped, "checkpoint must survive the wire");

        let governor = AlertGovernor::new(
            vec![noisy_strategy(1), noisy_strategy(2)],
            GovernorConfig::default(),
        );
        let mut restored = StreamingGovernor::restore(
            governor,
            StreamingConfig {
                history_windows: 3,
                ..StreamingConfig::default()
            },
            &shipped,
        );
        assert_eq!(restored.windows_ingested(), original.windows_ingested());
        assert_eq!(restored.history_len(), original.history_len());
        for hour in 9..14u64 {
            let window = transient_window(hour * 100, 1 + hour % 2, hour, 4);
            assert_eq!(
                original.ingest(&window, &[]),
                restored.ingest(&window, &[]),
                "restored governor diverged at window {hour}"
            );
        }
    }

    #[test]
    fn checkpoint_split_and_merge_partition_cleanly() {
        let mut window: Vec<Alert> = transient_window(0, 1, 0, 4);
        window.extend(transient_window(100, 2, 0, 3));
        window.sort_by_key(|a| (a.raised_at(), a.id()));
        let full = StreamingCheckpoint {
            start_index: 7,
            windows: vec![window],
        };
        let mut left = full.clone();
        left.retain_strategies(|s| s == StrategyId(1));
        let mut right = full.clone();
        right.retain_strategies(|s| s == StrategyId(2));
        assert_eq!(left.alert_count(), 4);
        assert_eq!(right.alert_count(), 3);
        assert_eq!(left.merged(&right), full, "split + merge must roundtrip");
    }

    #[test]
    fn delta_monoid_smoke() {
        // The full law suite lives in tests/determinism.rs; this pins
        // the basics close to the implementation.
        let mut a = streaming(24);
        let mut b = streaming(24);
        let da = a.ingest(&transient_window(0, 1, 0, 8), &[]);
        let db = b.ingest(&transient_window(500, 2, 0, 6), &[]);
        assert_eq!(WindowDelta::identity().merged(&da), da);
        assert_eq!(da.merged(&db), db.merged(&da));
        assert_eq!(da.merged(&db), WindowDelta::merge_all(&[da, db]));
    }

    fn streaming_with_qoa(mode: QoaMode) -> StreamingGovernor {
        let governor = AlertGovernor::new(
            vec![noisy_strategy(1), noisy_strategy(2)],
            GovernorConfig::default(),
        );
        StreamingGovernor::new(
            governor,
            StreamingConfig {
                qoa: QoaChannel {
                    mode,
                    config: QoaFeedbackConfig::default(),
                },
                ..StreamingConfig::default()
            },
        )
    }

    fn labels_for(window: &[Alert], high: bool) -> Vec<QoaLabel> {
        let ids: BTreeSet<StrategyId> = window.iter().map(Alert::strategy).collect();
        ids.into_iter()
            .map(|id| QoaLabel::new(id, [high; 3]))
            .collect()
    }

    #[test]
    fn qoa_off_emits_nothing() {
        let mut s = streaming(24);
        assert_eq!(s.qoa_mode(), QoaMode::Off);
        let d = s.ingest(&transient_window(0, 1, 0, 5), &[]);
        assert!(d.qoa_samples.is_empty());
        assert!(d.qoa.is_none());
        assert!(d.escalated.is_empty());
    }

    #[test]
    fn forward_mode_extracts_one_sample_per_strategy() {
        let mut s = streaming_with_qoa(QoaMode::Forward);
        let mut window = transient_window(0, 1, 0, 5);
        window.extend(transient_window(100, 2, 0, 3));
        window.sort_by_key(|a| (a.raised_at(), a.id()));
        let d = s.ingest(&window, &[]);
        assert_eq!(d.qoa_samples.len(), 2);
        assert!(d
            .qoa_samples
            .windows(2)
            .all(|w| w[0].strategy < w[1].strategy));
        assert!(d.qoa.is_none(), "forward mode defers the model update");
        for sample in &d.qoa_samples {
            assert_eq!(sample.features.len(), alertops_qoa::FEATURE_NAMES.len());
        }
    }

    #[test]
    fn local_mode_equals_coordinator_pass_over_merged_sample_forwards() {
        let mut local = streaming_with_qoa(QoaMode::Local);
        let mut shard_a = streaming_with_qoa(QoaMode::Forward);
        let mut shard_b = streaming_with_qoa(QoaMode::Forward);
        let mut coordinator = OnlineQoaModel::new(QoaFeedbackConfig::default());
        for hour in 0..4u64 {
            let mut window = transient_window(hour * 1_000, 1, hour, 6);
            window.extend(transient_window(hour * 1_000 + 500, 2, hour, 4));
            window.sort_by_key(|a| (a.raised_at(), a.id()));
            let labels = labels_for(&window, hour % 2 == 0);
            let local_report = local
                .ingest_labeled(&window, &[], &labels)
                .qoa
                .expect("local mode embeds a report");
            // Shard by strategy id — the daemon's partitioning.
            let (wa, wb): (Vec<Alert>, Vec<Alert>) = window
                .iter()
                .cloned()
                .partition(|a| a.strategy() == StrategyId(1));
            let da = shard_a.ingest(&wa, &[]);
            let db = shard_b.ingest(&wb, &[]);
            let merged = da.merged(&db);
            let merged_report = coordinator.observe_window(&merged.qoa_samples, &labels);
            assert_eq!(local_report, merged_report, "diverged at window {hour}");
            // Push the verdicts back down, as the daemon coordinator
            // does between closes.
            shard_a.set_qoa_verdicts(coordinator.verdicts());
            shard_b.set_qoa_verdicts(coordinator.verdicts());
        }
        assert_eq!(
            local.qoa_model().expect("local model").digest(),
            coordinator.digest()
        );
    }

    #[test]
    fn promoted_strategies_escalate_untriaged_alerts() {
        let mut s = streaming_with_qoa(QoaMode::Forward);
        s.set_qoa_verdicts(QoaVerdicts {
            demoted: Vec::new(),
            promoted: vec![StrategyId(2)],
        });
        let mut window = transient_window(0, 1, 0, 5);
        window.extend(transient_window(100, 2, 0, 4));
        window.sort_by_key(|a| (a.raised_at(), a.id()));
        let d = s.ingest(&window, &[]);
        assert!(!d.escalated.is_empty());
        let triaged: BTreeSet<AlertId> = d.triage.iter().copied().collect();
        for id in &d.escalated {
            let alert = window.iter().find(|a| a.id() == *id).expect("window alert");
            assert_eq!(alert.strategy(), StrategyId(2));
            assert!(!triaged.contains(id), "escalated lane excludes triage");
        }
    }

    #[test]
    fn qoa_restore_from_checkpoint_is_exact() {
        let mut original = streaming_with_qoa(QoaMode::Local);
        for hour in 0..5u64 {
            let window = transient_window(hour * 100, 1 + hour % 2, hour, 5);
            let labels = labels_for(&window, hour % 2 == 0);
            original.ingest_labeled(&window, &[], &labels);
        }
        let checkpoint = original.qoa_checkpoint().expect("local model checkpoints");
        let mut restored = streaming_with_qoa(QoaMode::Off);
        assert!(restored.restore_qoa(&checkpoint));
        assert_eq!(restored.qoa_mode(), QoaMode::Local);
        assert_eq!(
            original.qoa_model().expect("model").digest(),
            restored.qoa_model().expect("model").digest()
        );
        // Malformed checkpoints are rejected without clobbering state.
        let mut bad = checkpoint;
        bad.models.pop();
        assert!(!restored.restore_qoa(&bad));
        assert_eq!(
            original.qoa_model().expect("model").digest(),
            restored.qoa_model().expect("model").digest()
        );
    }

    #[test]
    fn snapshot_merge_sums_disjoint_histograms() {
        // Two "shards" each see 80 alerts of r1-hour-0 — below the
        // storm bar alone, above it combined.
        let mut shard_a = streaming(24);
        let mut shard_b = streaming(24);
        let da = shard_a.ingest(&transient_window(0, 1, 0, 80), &[]);
        let db = shard_b.ingest(&transient_window(500, 2, 0, 80), &[]);
        assert!(!da.storm_active && !db.storm_active);
        let merged = GovernanceSnapshot::merge(&[da, db], &StormConfig::default());
        assert!(merged.storm_active, "shards must sum to a global storm");
        assert_eq!(merged.alert_count, 160);
        assert_eq!(merged.storms[0].total_alerts, 160);
    }
}
