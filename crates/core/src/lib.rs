//! Unified alert governance — the primary public API of the `alertops`
//! workspace.
//!
//! The paper's Fig. 6 frames the mitigation of alert anti-patterns as a
//! three-stage loop:
//!
//! 1. **Avoid** — preventative guidelines on alert strategies (*Target*,
//!    *Timing*, *Presentation*) applied at configuration time
//!    ([`GuidelineLinter`]);
//! 2. **React** — postmortem reactions (blocking, aggregation,
//!    correlation, emerging detection) applied to the live stream;
//! 3. **Detect** — automatic detection of anti-patterns and QoA
//!    evaluation feeding back into strategy fixes.
//!
//! [`AlertGovernor`] wires the three stages over one strategy catalog:
//! feed it the alert/incident history, and it produces a
//! [`GovernanceReport`] with detected anti-patterns, auto-derived
//! blocking rules, the volume-reduction pipeline result, and a
//! worst-first QoA ranking.
//!
//! # Example
//!
//! ```
//! use alertops_core::{AlertGovernor, GovernorConfig};
//! use alertops_model::{
//!     Alert, AlertId, AlertStrategy, LogRule, SimDuration, SimTime,
//!     StrategyId, StrategyKind,
//! };
//!
//! # fn main() -> Result<(), alertops_model::ModelError> {
//! let strategy = AlertStrategy::builder(StrategyId(0))
//!     .title_template("Instance x is abnormal") // A1 bait
//!     .kind(StrategyKind::Log(LogRule {
//!         keyword: "ERROR".into(),
//!         min_count: 1,
//!         window: SimDuration::from_mins(5),
//!     }))
//!     .build()?;
//! let governor = AlertGovernor::new(vec![strategy], GovernorConfig::default());
//! let alerts: Vec<Alert> = (0..3)
//!     .map(|i| {
//!         Alert::builder(AlertId(i), StrategyId(0))
//!             .title("Instance x is abnormal")
//!             .raised_at(SimTime::from_secs(i * 60))
//!             .build()
//!     })
//!     .collect();
//! let report = governor.govern(&alerts, &[]);
//! assert!(report.anti_patterns.finding_count() >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod governor;
mod guidelines;
mod metrics;
mod postmortem;
mod remediation;
mod reports;
mod streaming;

pub mod prelude;

pub use governor::{AlertGovernor, GovernorConfig};
pub use guidelines::{GuidelineAspect, GuidelineContext, GuidelineLinter, GuidelineViolation};
pub use metrics::{EmergingMetrics, GovernorMetrics, QoaMetrics};
pub use postmortem::{render_postmortem, PostmortemInput};
pub use remediation::{apply_fixes, suggest_fixes, FixAction, RemediationConfig, StrategyFix};
pub use reports::GovernanceReport;
pub use streaming::{
    merge_emerging_docs, EmergingChannel, EmergingMode, GovernanceSnapshot, QoaChannel, QoaMode,
    StreamingCheckpoint, StreamingConfig, StreamingGovernor, WindowDelta,
};

// Downstream layers (ingestd, cluster) speak the QoA loop's vocabulary
// through this crate, mirroring how they consume the emerging channel.
pub use alertops_qoa::{
    OnlineQoaModel, QoaCheckpoint, QoaFeedbackConfig, QoaSample, QoaVerdicts, QoaWindowReport,
    StrategyQoa,
};
