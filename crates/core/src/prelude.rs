//! Convenience re-exports: `use alertops_core::prelude::*;` pulls in the
//! governor plus the most commonly used types of every layer.

pub use crate::{
    merge_emerging_docs, AlertGovernor, EmergingChannel, EmergingMode, GovernanceReport,
    GovernanceSnapshot, GovernorConfig, GovernorMetrics, GuidelineAspect, GuidelineContext,
    GuidelineLinter, GuidelineViolation, QoaChannel, QoaMode, StreamingConfig, StreamingGovernor,
    WindowDelta,
};

pub use alertops_detect::{
    AntiPattern, AntiPatternReport, CascadingDetector, DetectionInput, Detector, EngineConfig,
    ImproperRuleDetector, IncrementalState, MisleadingSeverityDetector, RepeatingDetector,
    StrategyFinding, TransientTogglingDetector, UnclearTitleDetector,
};
pub use alertops_model::{
    Alert, AlertId, AlertStrategy, Clearance, DependencyGraph, Incident, Location, MetricKind,
    MicroserviceId, QoaLabel, RegionId, ServiceId, Severity, SimDuration, SimTime, Sop, StrategyId,
    StrategyKind, TimeRange,
};
pub use alertops_qoa::{
    Criterion, OnlineQoaModel, QoaCheckpoint, QoaFeedbackConfig, QoaModel, QoaReport, QoaSample,
    QoaScorer, QoaScores, QoaVerdicts, QoaWindowReport, StrategyQoa,
};
pub use alertops_react::{
    aggregate, AggregationConfig, AlertBlocker, AlertCorrelator, BlockRule, EmergingAlertDetector,
    EmergingBudget, EmergingConfig, EmergingDoc, EmergingReport, ReactionPipeline,
    StrategyDependencies,
};

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_exposes_key_types() {
        use super::*;
        fn assert_type<T>() {}
        assert_type::<AlertGovernor>();
        assert_type::<Alert>();
        assert_type::<AntiPattern>();
        assert_type::<QoaModel>();
        assert_type::<ReactionPipeline>();
    }
}
