//! Storm postmortem generation.
//!
//! The paper's methodology leans on written incident reviews: "we also
//! went through the incident reports over the past two years to seek the
//! ineffectiveness in alerts recorded by OCEs" (§III-A). This module
//! closes that loop from the other side — after a storm, it writes the
//! report: what happened hour by hour, which cascade roots explain the
//! flood, which strategies repeated, and what the reaction pipeline
//! would have reduced the flood to.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use alertops_detect::storm::AlertStorm;
use alertops_detect::{AntiPattern, AntiPatternReport};
use alertops_model::{Alert, StrategyId};
use alertops_react::PipelineReport;

/// Inputs for one storm's postmortem.
pub struct PostmortemInput<'a> {
    /// The detected storm under review.
    pub storm: &'a AlertStorm,
    /// The alerts of the storm window (any superset is fine; the
    /// generator filters to the storm's hours and region).
    pub alerts: &'a [Alert],
    /// Detection results over the same scope.
    pub report: &'a AntiPatternReport,
    /// Reaction-pipeline outcome over the storm's alerts.
    pub pipeline: &'a PipelineReport,
    /// Resolves a strategy id to its title for display.
    pub title_of: &'a dyn Fn(StrategyId) -> String,
}

impl std::fmt::Debug for PostmortemInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PostmortemInput")
            .field("storm", &self.storm)
            .field("alerts", &self.alerts.len())
            .field("title_of", &"<fn>")
            .finish_non_exhaustive()
    }
}

/// Renders a Markdown postmortem for a storm.
///
/// Sections: headline, hourly timeline, top repeating strategies,
/// cascade root causes, anti-pattern summary, and the reaction what-if.
#[must_use]
pub fn render_postmortem(input: &PostmortemInput<'_>) -> String {
    let storm = input.storm;
    let in_storm = |alert: &&Alert| {
        storm.hours.contains(&alert.hour_bucket()) && alert.location().region() == &storm.region
    };
    let storm_alerts: Vec<&Alert> = input.alerts.iter().filter(in_storm).collect();

    let mut out = String::new();
    let _ = writeln!(out, "# Alert storm postmortem — {}", storm.region);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "**Window:** {}  \n**Volume:** {} alerts over {} hour(s), peak {}/hour",
        storm.window,
        storm.total_alerts,
        storm.duration_hours(),
        storm.peak_hourly
    );

    // Hourly timeline.
    let _ = writeln!(out, "\n## Timeline");
    let _ = writeln!(out, "\n| hour | alerts | max severity |");
    let _ = writeln!(out, "|---|---|---|");
    for &hour in &storm.hours {
        let hour_alerts: Vec<&&Alert> = storm_alerts
            .iter()
            .filter(|a| a.hour_bucket() == hour)
            .collect();
        let max_sev = hour_alerts
            .iter()
            .map(|a| a.severity())
            .max()
            .map_or_else(|| "-".to_owned(), |s| s.to_string());
        let _ = writeln!(
            out,
            "| {:02}:00 | {} | {} |",
            hour % 24,
            hour_alerts.len(),
            max_sev
        );
    }

    // Top repeaters.
    let mut per_strategy: BTreeMap<StrategyId, usize> = BTreeMap::new();
    for alert in &storm_alerts {
        *per_strategy.entry(alert.strategy()).or_insert(0) += 1;
    }
    let mut ranked: Vec<(StrategyId, usize)> = per_strategy.iter().map(|(&s, &c)| (s, c)).collect();
    ranked.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s));
    let _ = writeln!(out, "\n## Dominant strategies");
    let _ = writeln!(out);
    for &(strategy, count) in ranked.iter().take(5) {
        let share = count as f64 / storm_alerts.len().max(1) as f64 * 100.0;
        let repeating = input
            .report
            .flagged(AntiPattern::Repeating)
            .contains(&strategy);
        let _ = writeln!(
            out,
            "- {} — {count} alerts ({share:.0}%){} — {:?}",
            strategy,
            if repeating { " **[A5 repeating]**" } else { "" },
            (input.title_of)(strategy),
        );
    }

    // Cascade roots inside the window.
    let _ = writeln!(out, "\n## Cascade root causes");
    let roots: Vec<_> = input
        .report
        .cascades
        .iter()
        .filter(|g| g.window.overlaps(&storm.window))
        .collect();
    if roots.is_empty() {
        let _ = writeln!(out, "\nNo cascade groups detected in the window.");
    } else {
        let _ = writeln!(out);
        for group in roots.iter().take(5) {
            if let Some(root) = input.alerts.iter().find(|a| a.id() == group.root) {
                let _ = writeln!(
                    out,
                    "- **{}** on {} at {} → {} derived alerts",
                    root.title(),
                    root.service_name(),
                    root.raised_at(),
                    group.derived().len()
                );
            }
        }
        if roots.len() > 5 {
            let _ = writeln!(out, "- … and {} more groups", roots.len() - 5);
        }
    }

    // Anti-pattern summary.
    let _ = writeln!(out, "\n## Anti-patterns implicated");
    let _ = writeln!(out);
    for pattern in AntiPattern::ALL {
        if pattern == AntiPattern::Cascading {
            continue; // covered above
        }
        let flagged = input.report.flagged(pattern);
        let involved = ranked.iter().filter(|(s, _)| flagged.contains(s)).count();
        if involved > 0 {
            let _ = writeln!(
                out,
                "- {pattern}: {involved} of the storm's strategies flagged"
            );
        }
    }

    // Reaction what-if.
    let _ = writeln!(out, "\n## What the reaction pipeline would have left");
    let _ = writeln!(out);
    for stage in &input.pipeline.stages {
        let _ = writeln!(out, "- after {}: {} items", stage.stage, stage.remaining);
    }
    let _ = writeln!(
        out,
        "- **volume reduction: {:.1}%** ({} triage items for the OCE)",
        input.pipeline.reduction * 100.0,
        input.pipeline.triage.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_detect::storm::detect_storms;
    use alertops_detect::{DetectionInput, StormConfig};
    use alertops_model::{AlertId, Location, Severity, SimTime};
    use alertops_react::ReactionPipeline;

    fn storm_world() -> (Vec<Alert>, AlertStorm) {
        let mut alerts = Vec::new();
        for i in 0..150u64 {
            alerts.push(
                Alert::builder(AlertId(i), StrategyId(i % 3))
                    .title("haproxy process number warning")
                    .severity(if i == 0 {
                        Severity::Critical
                    } else {
                        Severity::Warning
                    })
                    .location(Location::new("r1", "dc"))
                    .raised_at(SimTime::from_secs(7 * 3_600 + i * 20))
                    .build(),
            );
        }
        let storm = detect_storms(&alerts, &StormConfig::default())
            .into_iter()
            .next()
            .expect("burst forms a storm");
        (alerts, storm)
    }

    #[test]
    fn postmortem_contains_all_sections() {
        let (alerts, storm) = storm_world();
        let strategies: Vec<alertops_model::AlertStrategy> = (0..3)
            .map(|i| {
                alertops_model::AlertStrategy::builder(StrategyId(i))
                    .title_template("haproxy process number warning")
                    .kind(alertops_model::StrategyKind::Log(alertops_model::LogRule {
                        keyword: "WARN".into(),
                        min_count: 1,
                        window: alertops_model::SimDuration::from_mins(5),
                    }))
                    .build()
                    .unwrap()
            })
            .collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let report = AntiPatternReport::run_default(&input);
        let pipeline = ReactionPipeline::new().run(&alerts);
        let text = render_postmortem(&PostmortemInput {
            storm: &storm,
            alerts: &alerts,
            report: &report,
            pipeline: &pipeline,
            title_of: &|id| format!("strategy {id}"),
        });
        for section in [
            "# Alert storm postmortem",
            "## Timeline",
            "## Dominant strategies",
            "## Cascade root causes",
            "## Anti-patterns implicated",
            "## What the reaction pipeline would have left",
            "volume reduction",
        ] {
            assert!(
                text.contains(section),
                "missing section {section:?}\n{text}"
            );
        }
        // Hourly rows present.
        assert!(text.contains("| 07:00 |"));
        // The dominant strategy appears with a share.
        assert!(text.contains("alerts (") && text.contains("%"));
    }

    #[test]
    fn postmortem_handles_no_cascades() {
        let (alerts, storm) = storm_world();
        let report = AntiPatternReport::default();
        let pipeline = ReactionPipeline::new().run(&alerts);
        let text = render_postmortem(&PostmortemInput {
            storm: &storm,
            alerts: &alerts,
            report: &report,
            pipeline: &pipeline,
            title_of: &|_| "t".to_owned(),
        });
        assert!(text.contains("No cascade groups detected"));
    }
}
