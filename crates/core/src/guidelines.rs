//! Preventative guidelines for alert strategies (RQ4).
//!
//! "The guidelines are designed by experienced OCEs and guide from three
//! aspects of alerts":
//!
//! * **Target** — what to monitor: "the performance metrics highly
//!   related to the service quality should be monitored";
//! * **Timing** — when to generate an alert: "sometimes an anomaly does
//!   not necessarily mean the service quality will be affected";
//! * **Presentation** — "whether the alerts' attributes are helpful for
//!   alert diagnosis".
//!
//! [`GuidelineLinter`] checks a strategy (plus its SOP) against concrete
//! rules in each aspect *at configuration time*, before a single alert
//! fires — the "Avoid" stage of Fig. 6.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use alertops_model::{
    AlertStrategy, MicroserviceId, Severity, SimDuration, Sop, StrategyId, StrategyKind,
};
use alertops_text::TitleScorer;

/// Which guideline aspect a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum GuidelineAspect {
    /// What to monitor.
    Target,
    /// When to generate an alert.
    Timing,
    /// Whether the alert's attributes help diagnosis.
    Presentation,
}

impl fmt::Display for GuidelineAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GuidelineAspect::Target => "Target",
            GuidelineAspect::Timing => "Timing",
            GuidelineAspect::Presentation => "Presentation",
        })
    }
}

/// One guideline violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuidelineViolation {
    /// The offending strategy.
    pub strategy: StrategyId,
    /// The violated aspect.
    pub aspect: GuidelineAspect,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for GuidelineViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.aspect, self.strategy, self.message)
    }
}

/// Environmental knowledge the Target checks need.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuidelineContext {
    /// Microservices whose infrastructure faults are shielded from
    /// service quality by fault tolerance. Infrastructure-metric
    /// strategies on these targets violate the Target guideline.
    pub fault_tolerant: BTreeSet<MicroserviceId>,
}

/// The configuration-time guideline linter.
#[derive(Debug, Clone)]
pub struct GuidelineLinter {
    scorer: TitleScorer,
    /// Minimum acceptable title informativeness.
    pub min_title_score: f64,
    /// Minimum acceptable SOP completeness.
    pub min_sop_completeness: f64,
}

impl Default for GuidelineLinter {
    fn default() -> Self {
        Self {
            scorer: TitleScorer::new(),
            min_title_score: 0.45,
            min_sop_completeness: 0.8,
        }
    }
}

impl GuidelineLinter {
    /// Creates a linter with default thresholds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Lints one strategy.
    #[must_use]
    pub fn lint(
        &self,
        strategy: &AlertStrategy,
        sop: Option<&Sop>,
        context: &GuidelineContext,
    ) -> Vec<GuidelineViolation> {
        let mut violations = Vec::new();
        let mut push = |aspect, message: String| {
            violations.push(GuidelineViolation {
                strategy: strategy.id(),
                aspect,
                message,
            });
        };

        // --- Target ---
        if let StrategyKind::Metric(rule) = strategy.kind() {
            if rule.metric.is_infrastructure()
                && context.fault_tolerant.contains(&strategy.microservice())
            {
                push(
                    GuidelineAspect::Target,
                    format!(
                        "infrastructure metric `{}` on a fault-tolerant microservice does not \
                         reflect service quality; monitor latency/error rate instead",
                        rule.metric
                    ),
                );
            }
            if rule.metric.is_infrastructure() && strategy.severity() >= Severity::Critical {
                push(
                    GuidelineAspect::Target,
                    format!(
                        "`{}` alone rarely warrants Critical; reserve it for user-visible symptoms",
                        rule.metric
                    ),
                );
            }
        }

        // --- Timing ---
        match strategy.kind() {
            StrategyKind::Metric(rule) => {
                if rule.consecutive_samples < 2 {
                    push(
                        GuidelineAspect::Timing,
                        "metric rule fires on a single sample; require ≥2 consecutive samples \
                         to avoid transient/toggling alerts"
                            .to_owned(),
                    );
                }
            }
            StrategyKind::Probe(rule) => {
                if rule.no_response_timeout < SimDuration::from_secs(30) {
                    push(
                        GuidelineAspect::Timing,
                        format!(
                            "probe timeout of {} is shorter than a routine GC pause or \
                             failover; use ≥30s",
                            rule.no_response_timeout
                        ),
                    );
                }
            }
            StrategyKind::Log(rule) => {
                if rule.min_count <= 1 {
                    push(
                        GuidelineAspect::Timing,
                        "log rule fires on a single matching line; single errors are routine \
                         in distributed systems"
                            .to_owned(),
                    );
                }
            }
        }
        if strategy.cooldown() < SimDuration::from_mins(1) {
            push(
                GuidelineAspect::Timing,
                "cooldown under one minute invites repeating alerts".to_owned(),
            );
        }

        // --- Presentation ---
        let title_score = self.scorer.score(strategy.title_template());
        if title_score < self.min_title_score {
            push(
                GuidelineAspect::Presentation,
                format!(
                    "title {:?} scores {title_score:.2} informativeness (< {:.2}); name the \
                     affected component and the failure manifestation",
                    strategy.title_template(),
                    self.min_title_score
                ),
            );
        }
        match sop {
            None => push(
                GuidelineAspect::Presentation,
                "no SOP registered for this strategy".to_owned(),
            ),
            Some(sop) if sop.completeness() < self.min_sop_completeness => push(
                GuidelineAspect::Presentation,
                format!(
                    "SOP is only {:.0}% complete (< {:.0}%); fill impact, causes, and steps",
                    sop.completeness() * 100.0,
                    self.min_sop_completeness * 100.0
                ),
            ),
            Some(_) => {}
        }
        if strategy.notify().is_empty() {
            push(
                GuidelineAspect::Presentation,
                "no notification target configured".to_owned(),
            );
        }

        violations
    }

    /// Lints a whole catalog; returns violations sorted by strategy.
    #[must_use]
    pub fn lint_catalog<'a>(
        &self,
        strategies: impl IntoIterator<Item = (&'a AlertStrategy, Option<&'a Sop>)>,
        context: &GuidelineContext,
    ) -> Vec<GuidelineViolation> {
        let mut violations: Vec<GuidelineViolation> = strategies
            .into_iter()
            .flat_map(|(s, sop)| self.lint(s, sop, context))
            .collect();
        violations.sort_by(|a, b| a.strategy.cmp(&b.strategy).then(a.aspect.cmp(&b.aspect)));
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{LogRule, MetricKind, MetricRule, ProbeRule, ThresholdOp};

    fn good_strategy() -> AlertStrategy {
        AlertStrategy::builder(StrategyId(1))
            .title_template("CPU usage of nginx instance is higher than 80%")
            .severity(Severity::Major)
            .kind(StrategyKind::Metric(MetricRule {
                metric: MetricKind::Latency,
                op: ThresholdOp::Above,
                threshold: 500.0,
                consecutive_samples: 3,
            }))
            .cooldown(SimDuration::from_mins(30))
            .notify("oce@example.com")
            .build()
            .unwrap()
    }

    fn full_sop() -> Sop {
        Sop::builder("x", StrategyId(1))
            .description("d")
            .generation_rule("g")
            .potential_impact("i")
            .possible_cause("c")
            .step("s")
            .build()
            .unwrap()
    }

    #[test]
    fn clean_strategy_passes() {
        let sop = full_sop();
        let violations =
            GuidelineLinter::new().lint(&good_strategy(), Some(&sop), &GuidelineContext::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn target_flags_infra_metric_on_fault_tolerant_target() {
        let strategy = AlertStrategy::builder(StrategyId(2))
            .title_template("disk usage of storage node over 90")
            .microservice(MicroserviceId(7))
            .kind(StrategyKind::Metric(MetricRule {
                metric: MetricKind::DiskUsage,
                op: ThresholdOp::Above,
                threshold: 90.0,
                consecutive_samples: 3,
            }))
            .cooldown(SimDuration::from_mins(30))
            .notify("x")
            .build()
            .unwrap();
        let context = GuidelineContext {
            fault_tolerant: [MicroserviceId(7)].into_iter().collect(),
        };
        let sop = full_sop();
        let violations = GuidelineLinter::new().lint(&strategy, Some(&sop), &context);
        assert!(violations
            .iter()
            .any(|v| v.aspect == GuidelineAspect::Target));
        // Without the context knowledge, no Target violation.
        let violations =
            GuidelineLinter::new().lint(&strategy, Some(&sop), &GuidelineContext::default());
        assert!(!violations
            .iter()
            .any(|v| v.aspect == GuidelineAspect::Target));
    }

    #[test]
    fn timing_flags_single_sample_and_zero_cooldown() {
        let strategy = AlertStrategy::builder(StrategyId(3))
            .title_template("latency of api gateway is higher than 500")
            .kind(StrategyKind::Metric(MetricRule {
                metric: MetricKind::Latency,
                op: ThresholdOp::Above,
                threshold: 500.0,
                consecutive_samples: 1,
            }))
            .notify("x")
            .build()
            .unwrap();
        let sop = full_sop();
        let violations =
            GuidelineLinter::new().lint(&strategy, Some(&sop), &GuidelineContext::default());
        let timing: Vec<_> = violations
            .iter()
            .filter(|v| v.aspect == GuidelineAspect::Timing)
            .collect();
        assert_eq!(timing.len(), 2, "{violations:?}");
    }

    #[test]
    fn timing_flags_twitchy_probe_and_log() {
        let probe = AlertStrategy::builder(StrategyId(4))
            .title_template("gateway not responding to heartbeat probes")
            .kind(StrategyKind::Probe(ProbeRule {
                no_response_timeout: SimDuration::from_secs(10),
            }))
            .cooldown(SimDuration::from_mins(5))
            .notify("x")
            .build()
            .unwrap();
        let sop = full_sop();
        let violations =
            GuidelineLinter::new().lint(&probe, Some(&sop), &GuidelineContext::default());
        assert!(violations
            .iter()
            .any(|v| v.message.contains("probe timeout")));

        let log = AlertStrategy::builder(StrategyId(5))
            .title_template("gateway logged errors within window")
            .kind(StrategyKind::Log(LogRule {
                keyword: "ERROR".into(),
                min_count: 1,
                window: SimDuration::from_mins(5),
            }))
            .cooldown(SimDuration::from_mins(5))
            .notify("x")
            .build()
            .unwrap();
        let violations =
            GuidelineLinter::new().lint(&log, Some(&sop), &GuidelineContext::default());
        assert!(violations
            .iter()
            .any(|v| v.message.contains("single matching line")));
    }

    #[test]
    fn presentation_flags_vague_title_missing_sop_and_no_notify() {
        let strategy = AlertStrategy::builder(StrategyId(6))
            .title_template("Instance x is abnormal")
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 5,
                window: SimDuration::from_mins(2),
            }))
            .cooldown(SimDuration::from_mins(5))
            .build()
            .unwrap();
        let violations = GuidelineLinter::new().lint(&strategy, None, &GuidelineContext::default());
        let presentation: Vec<_> = violations
            .iter()
            .filter(|v| v.aspect == GuidelineAspect::Presentation)
            .collect();
        assert_eq!(presentation.len(), 3, "{violations:?}");
    }

    #[test]
    fn incomplete_sop_is_flagged() {
        let strategy = good_strategy();
        let poor = Sop::builder("x", StrategyId(1)).build().unwrap();
        let violations =
            GuidelineLinter::new().lint(&strategy, Some(&poor), &GuidelineContext::default());
        assert!(violations.iter().any(|v| v.message.contains("complete")));
    }

    #[test]
    fn lint_catalog_sorts_by_strategy() {
        let a = good_strategy();
        let b = AlertStrategy::builder(StrategyId(0))
            .title_template("Instance x is abnormal")
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 5,
                window: SimDuration::from_mins(2),
            }))
            .cooldown(SimDuration::from_mins(5))
            .notify("x")
            .build()
            .unwrap();
        let sop = full_sop();
        let violations = GuidelineLinter::new().lint_catalog(
            [(&a, Some(&sop)), (&b, Some(&sop))],
            &GuidelineContext::default(),
        );
        assert!(!violations.is_empty());
        for w in violations.windows(2) {
            assert!(w[0].strategy <= w[1].strategy);
        }
    }

    #[test]
    fn violation_display() {
        let v = GuidelineViolation {
            strategy: StrategyId(9),
            aspect: GuidelineAspect::Timing,
            message: "too twitchy".into(),
        };
        let s = v.to_string();
        assert!(s.contains("Timing"));
        assert!(s.contains("strategy-9"));
    }
}
