//! Candidate mining — the paper's methodology for surfacing anti-pattern
//! candidates from raw alert data (§III-A):
//!
//! * **Individual**: "we group the alerts according to the alert
//!   strategies, then calculate each strategy's average processing time.
//!   The alert strategies that take the top 30% longest time to process
//!   are selected as the candidates of individual anti-patterns."
//! * **Collective**: "we first group all the alerts by the hour they
//!   occur and the region they belong to. Then we count the number of
//!   alerts per hour per region. If the number of alerts per hour per
//!   region exceeds 200, we select all the alerts in this group as the
//!   candidate of collective anti-patterns." (200 ≈ the maximum number
//!   of alerts an OCE team can deal with per hour.)

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, RegionId, StrategyId};

/// A strategy selected as an individual anti-pattern candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndividualCandidate {
    /// The candidate strategy.
    pub strategy: StrategyId,
    /// Its average processing time, in minutes.
    pub avg_processing_mins: f64,
    /// How many processed alerts the average is over.
    pub alert_count: usize,
}

/// A region-hour selected as a collective anti-pattern candidate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveCandidate {
    /// The region.
    pub region: RegionId,
    /// The hour bucket.
    pub hour: u64,
    /// Alerts in that region-hour.
    pub alert_count: usize,
}

/// Selects the top-`fraction` (by average processing time) strategies as
/// individual anti-pattern candidates. Strategies without any processed
/// alert are excluded (no evidence). Output is sorted by descending
/// average processing time; its length is `ceil(fraction · n)` where `n`
/// is the number of strategies *with evidence*.
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]`.
#[must_use]
pub fn individual_candidates(alerts: &[Alert], fraction: f64) -> Vec<IndividualCandidate> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must lie in (0, 1], got {fraction}"
    );
    let mut sums: BTreeMap<StrategyId, (f64, usize)> = BTreeMap::new();
    for alert in alerts {
        if let Some(pt) = alert.processing_time() {
            let entry = sums.entry(alert.strategy()).or_insert((0.0, 0));
            entry.0 += pt.as_mins_f64();
            entry.1 += 1;
        }
    }
    let mut candidates: Vec<IndividualCandidate> = sums
        .into_iter()
        .map(|(strategy, (total, count))| IndividualCandidate {
            strategy,
            avg_processing_mins: total / count as f64,
            alert_count: count,
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.avg_processing_mins
            .partial_cmp(&a.avg_processing_mins)
            .expect("averages are finite")
            .then(a.strategy.cmp(&b.strategy))
    });
    let keep = ((candidates.len() as f64) * fraction).ceil() as usize;
    candidates.truncate(keep);
    candidates
}

/// Selects region-hours whose alert count exceeds `threshold` (strict)
/// as collective anti-pattern candidates, sorted by descending count.
#[must_use]
pub fn collective_candidates(alerts: &[Alert], threshold: usize) -> Vec<CollectiveCandidate> {
    let mut counts: BTreeMap<(RegionId, u64), usize> = BTreeMap::new();
    for alert in alerts {
        *counts
            .entry((alert.location().region().clone(), alert.hour_bucket()))
            .or_insert(0) += 1;
    }
    let mut candidates: Vec<CollectiveCandidate> = counts
        .into_iter()
        .filter(|&(_, count)| count > threshold)
        .map(|((region, hour), alert_count)| CollectiveCandidate {
            region,
            hour,
            alert_count,
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.alert_count
            .cmp(&a.alert_count)
            .then_with(|| a.hour.cmp(&b.hour))
            .then_with(|| a.region.cmp(&b.region))
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, Location, SimDuration, SimTime};

    fn alert(id: u64, strategy: u64, mins: Option<u64>, region: &str, hour: u64) -> Alert {
        let mut builder = Alert::builder(AlertId(id), StrategyId(strategy))
            .location(Location::new(region, "dc"))
            .raised_at(SimTime::from_hours(hour));
        if let Some(m) = mins {
            builder = builder.processing_time(SimDuration::from_mins(m));
        }
        builder.build()
    }

    #[test]
    fn top_30_percent_by_average() {
        // 10 strategies with averages 1..10 minutes → top 30% = 3.
        let mut alerts = Vec::new();
        for s in 1..=10u64 {
            alerts.push(alert(s, s, Some(s), "r", 0));
        }
        let candidates = individual_candidates(&alerts, 0.3);
        assert_eq!(candidates.len(), 3);
        let ids: Vec<u64> = candidates.iter().map(|c| c.strategy.0).collect();
        assert_eq!(ids, vec![10, 9, 8]);
        assert_eq!(candidates[0].avg_processing_mins, 10.0);
    }

    #[test]
    fn averages_are_per_strategy() {
        let alerts = vec![
            alert(0, 1, Some(2), "r", 0),
            alert(1, 1, Some(4), "r", 0),
            alert(2, 2, Some(5), "r", 0),
        ];
        let candidates = individual_candidates(&alerts, 1.0);
        assert_eq!(candidates.len(), 2);
        let s1 = candidates
            .iter()
            .find(|c| c.strategy == StrategyId(1))
            .unwrap();
        assert_eq!(s1.avg_processing_mins, 3.0);
        assert_eq!(s1.alert_count, 2);
    }

    #[test]
    fn unprocessed_alerts_are_excluded() {
        let alerts = vec![alert(0, 1, None, "r", 0)];
        assert!(individual_candidates(&alerts, 0.3).is_empty());
    }

    #[test]
    fn ceil_keeps_at_least_one() {
        let alerts = vec![alert(0, 1, Some(5), "r", 0)];
        let candidates = individual_candidates(&alerts, 0.3);
        assert_eq!(candidates.len(), 1);
    }

    #[test]
    fn selection_is_permutation_invariant() {
        let mut alerts: Vec<Alert> = (0..30)
            .map(|i| alert(i, i % 10, Some(i % 7 + 1), "r", 0))
            .collect();
        let a = individual_candidates(&alerts, 0.3);
        alerts.reverse();
        let b = individual_candidates(&alerts, 0.3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let _ = individual_candidates(&[], 0.0);
    }

    #[test]
    fn collective_uses_strict_threshold() {
        let mut alerts = Vec::new();
        for i in 0..200 {
            alerts.push(alert(i, 0, None, "r1", 7));
        }
        assert!(collective_candidates(&alerts, 200).is_empty());
        alerts.push(alert(200, 0, None, "r1", 7));
        let candidates = collective_candidates(&alerts, 200);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].alert_count, 201);
        assert_eq!(candidates[0].hour, 7);
    }

    #[test]
    fn collective_groups_by_region_and_hour() {
        let mut alerts = Vec::new();
        let mut id = 0;
        // 150 alerts r1/h7, 150 r2/h7, 120 r1/h8 — threshold 100.
        for (region, hour, n) in [("r1", 7, 150), ("r2", 7, 150), ("r1", 8, 120)] {
            for _ in 0..n {
                alerts.push(alert(id, 0, None, region, hour));
                id += 1;
            }
        }
        let candidates = collective_candidates(&alerts, 100);
        assert_eq!(candidates.len(), 3);
        // Sorted by descending count.
        assert!(candidates[0].alert_count >= candidates[1].alert_count);
    }

    #[test]
    fn empty_inputs() {
        assert!(individual_candidates(&[], 0.3).is_empty());
        assert!(collective_candidates(&[], 200).is_empty());
    }
}
