//! A3 — improper and outdated generation rule.
//!
//! "Due to the fault-tolerance techniques applied in cloud services, the
//! performance indicators of lower-level infrastructures do not have
//! definite effect on the quality of cloud services from the perspective
//! of customers" (§III-A1). The detector flags *infrastructure-metric*
//! strategies that keep firing without their alerts ever coinciding with
//! user-visible impact (incidents on the owning service).

use alertops_model::StrategyKind;

use crate::input::DetectionInput;
use crate::types::{AntiPattern, Detector, StrategyFinding};

/// Detector for improper/outdated generation rules.
#[derive(Debug, Clone)]
pub struct ImproperRuleDetector {
    /// Minimum alert count before judging a strategy.
    pub min_alerts: usize,
    /// Maximum incident co-occurrence rate for an "improper" verdict.
    pub max_incident_rate: f64,
    /// How far after an alert an incident may begin and still count.
    pub incident_lookahead: alertops_model::SimDuration,
}

impl Default for ImproperRuleDetector {
    fn default() -> Self {
        Self {
            min_alerts: 5,
            max_incident_rate: 0.12,
            incident_lookahead: alertops_model::SimDuration::from_mins(30),
        }
    }
}

impl ImproperRuleDetector {
    /// Evaluates one strategy from its rolling aggregates: `total`
    /// in-scope alerts, of which `with_incident` indicated an incident
    /// on the strategy's service. The single scoring formula shared by
    /// the batch [`Detector`] pass and the incremental engine
    /// ([`crate::IncrementalState`]). Returns `None` for strategies
    /// that are not infrastructure-metric rules.
    pub(crate) fn evaluate_strategy(
        &self,
        strategy: &alertops_model::AlertStrategy,
        total: usize,
        with_incident: usize,
    ) -> Option<StrategyFinding> {
        // Only infrastructure-metric rules can be "improper" in the
        // paper's sense.
        let StrategyKind::Metric(rule) = strategy.kind() else {
            return None;
        };
        if !rule.metric.is_infrastructure() {
            return None;
        }
        if total < self.min_alerts {
            return None;
        }
        let incident_rate = with_incident as f64 / total as f64;
        if incident_rate > self.max_incident_rate {
            return None;
        }
        Some(StrategyFinding {
            strategy: strategy.id(),
            pattern: AntiPattern::ImproperRule,
            // More alerts with zero impact = worse.
            score: total as f64 * (1.0 - incident_rate),
            evidence: format!(
                "infrastructure metric `{}` fired {} times with {:.0}% incident co-occurrence",
                rule.metric,
                total,
                incident_rate * 100.0,
            ),
        })
    }
}

impl Detector for ImproperRuleDetector {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::ImproperRule
    }

    fn detect(&self, input: &DetectionInput<'_>) -> Vec<StrategyFinding> {
        let mut findings = Vec::new();
        for strategy in input.strategies() {
            let total = input.alert_count_of(strategy.id());
            let with_incident = input
                .alerts_of(strategy.id())
                .filter(|a| {
                    input.incident_indicated(
                        strategy.service(),
                        a.raised_at(),
                        self.incident_lookahead,
                    )
                })
                .count();
            if let Some(finding) = self.evaluate_strategy(strategy, total, with_incident) {
                findings.push(finding);
            }
        }
        findings.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.strategy.cmp(&b.strategy))
        });
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{
        Alert, AlertId, AlertStrategy, Incident, IncidentId, MetricKind, MetricRule, ServiceId,
        Severity, SimTime, StrategyId, ThresholdOp,
    };

    fn metric_strategy(id: u64, metric: MetricKind, service: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("metric rule")
            .service(ServiceId(service))
            .kind(StrategyKind::Metric(MetricRule {
                metric,
                op: ThresholdOp::Above,
                threshold: 80.0,
                consecutive_samples: 1,
            }))
            .build()
            .unwrap()
    }

    fn alert(id: u64, strategy: u64, t: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(strategy))
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    #[test]
    fn flags_noisy_infra_rule_without_impact() {
        let strategies = [metric_strategy(1, MetricKind::DiskUsage, 0)];
        let alerts: Vec<Alert> = (0..20).map(|i| alert(i, 1, i * 100)).collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = ImproperRuleDetector::default().detect(&input);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].evidence.contains("disk_usage"));
        assert!(findings[0].score >= 19.0);
    }

    #[test]
    fn spares_infra_rule_that_tracks_incidents() {
        let strategies = [metric_strategy(1, MetricKind::CpuUtilization, 0)];
        let alerts: Vec<Alert> = (0..10).map(|i| alert(i, 1, i * 100)).collect();
        let mut inc = Incident::new(
            IncidentId(0),
            ServiceId(0),
            Severity::Critical,
            SimTime::from_secs(0),
        );
        inc.mitigate(SimTime::from_secs(10_000));
        let incidents = [inc];
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_incidents(&incidents);
        let findings = ImproperRuleDetector::default().detect(&input);
        assert!(findings.is_empty());
    }

    #[test]
    fn spares_service_level_metrics() {
        let strategies = [metric_strategy(1, MetricKind::Latency, 0)];
        let alerts: Vec<Alert> = (0..20).map(|i| alert(i, 1, i * 100)).collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = ImproperRuleDetector::default().detect(&input);
        assert!(findings.is_empty(), "latency is not an infra metric");
    }

    #[test]
    fn spares_quiet_rules() {
        let strategies = [metric_strategy(1, MetricKind::DiskUsage, 0)];
        let alerts: Vec<Alert> = (0..3).map(|i| alert(i, 1, i * 100)).collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = ImproperRuleDetector::default().detect(&input);
        assert!(findings.is_empty(), "3 alerts is not enough evidence");
    }

    #[test]
    fn noisier_rules_rank_first() {
        let strategies = [
            metric_strategy(1, MetricKind::DiskUsage, 0),
            metric_strategy(2, MetricKind::MemoryUtilization, 0),
        ];
        let mut alerts: Vec<Alert> = (0..20).map(|i| alert(i, 1, i * 100)).collect();
        alerts.extend((20..26).map(|i| alert(i, 2, i * 100)));
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = ImproperRuleDetector::default().detect(&input);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].strategy, StrategyId(1));
    }
}
