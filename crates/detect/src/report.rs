//! Aggregated anti-pattern reports and detector evaluation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use alertops_model::StrategyId;

use crate::a6_cascading::CascadeGroup;
use crate::input::DetectionInput;
use crate::metrics::DetectMetrics;
use crate::types::{AntiPattern, Detector, StrategyFinding};
use crate::{
    CascadingDetector, ImproperRuleDetector, MisleadingSeverityDetector, RepeatingDetector,
    TransientTogglingDetector, UnclearTitleDetector,
};

/// The combined output of running every detector over one input.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AntiPatternReport {
    /// Per-strategy findings of the five strategy-level detectors,
    /// grouped by anti-pattern.
    pub findings: BTreeMap<AntiPattern, Vec<StrategyFinding>>,
    /// Cascade groups found by the A6 detector.
    pub cascades: Vec<CascadeGroup>,
}

impl AntiPatternReport {
    /// Runs all six detectors with default configurations.
    #[must_use]
    pub fn run_default(input: &DetectionInput<'_>) -> Self {
        Self::run_instrumented(input, None)
    }

    /// Runs all six detectors, optionally recording per-detector wall
    /// time and finding counts into `metrics`.
    ///
    /// Metrics are observer-only: the returned report is identical
    /// whether `metrics` is `Some` or `None`.
    #[must_use]
    pub fn run_instrumented(input: &DetectionInput<'_>, metrics: Option<&DetectMetrics>) -> Self {
        if let Some(m) = metrics {
            m.record_run(input.alerts().len() as u64);
        }
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(UnclearTitleDetector::default()),
            Box::new(MisleadingSeverityDetector::default()),
            Box::new(ImproperRuleDetector::default()),
            Box::new(TransientTogglingDetector::default()),
            Box::new(RepeatingDetector::default()),
        ];
        let mut findings: BTreeMap<AntiPattern, Vec<StrategyFinding>> = BTreeMap::new();
        for detector in detectors {
            let pattern = detector.pattern();
            let found = {
                let _span = metrics.map(|m| m.detector_timer(pattern));
                detector.detect(input)
            };
            if let Some(m) = metrics {
                m.record_findings(pattern, found.len() as u64);
            }
            findings.insert(pattern, found);
        }
        let cascades = {
            let _span = metrics.map(|m| m.detector_timer(AntiPattern::Cascading));
            CascadingDetector::default().detect_groups(input)
        };
        if let Some(m) = metrics {
            m.record_findings(AntiPattern::Cascading, cascades.len() as u64);
        }
        Self { findings, cascades }
    }

    /// The strategies flagged for a given anti-pattern.
    #[must_use]
    pub fn flagged(&self, pattern: AntiPattern) -> BTreeSet<StrategyId> {
        self.findings
            .get(&pattern)
            .map(|v| v.iter().map(|f| f.strategy).collect())
            .unwrap_or_default()
    }

    /// All flagged strategies across strategy-level anti-patterns.
    #[must_use]
    pub fn all_flagged(&self) -> BTreeSet<StrategyId> {
        self.findings
            .values()
            .flatten()
            .map(|f| f.strategy)
            .collect()
    }

    /// Total number of strategy-level findings.
    #[must_use]
    pub fn finding_count(&self) -> usize {
        self.findings.values().map(Vec::len).sum()
    }
}

impl fmt::Display for AntiPatternReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Anti-pattern report:")?;
        for pattern in AntiPattern::ALL {
            if pattern == AntiPattern::Cascading {
                writeln!(f, "  {pattern}: {} cascade groups", self.cascades.len())?;
            } else {
                let count = self.findings.get(&pattern).map_or(0, Vec::len);
                writeln!(f, "  {pattern}: {count} strategies")?;
            }
        }
        Ok(())
    }
}

/// Precision / recall / F1 of a predicted set against a truth set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    /// |predicted ∩ truth| / |predicted| (1 if nothing predicted).
    pub precision: f64,
    /// |predicted ∩ truth| / |truth| (1 if truth is empty).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

/// Scores a predicted strategy set against ground truth.
#[must_use]
pub fn evaluate_sets(
    predicted: &BTreeSet<StrategyId>,
    truth: &BTreeSet<StrategyId>,
) -> PrecisionRecall {
    let tp = predicted.intersection(truth).count();
    let fp = predicted.len() - tp;
    let fn_ = truth.len() - tp;
    let precision = if predicted.is_empty() {
        1.0
    } else {
        tp as f64 / predicted.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        tp as f64 / truth.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
        tp,
        fp,
        fn_,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u64]) -> BTreeSet<StrategyId> {
        ids.iter().map(|&i| StrategyId(i)).collect()
    }

    #[test]
    fn evaluate_perfect() {
        let r = evaluate_sets(&set(&[1, 2]), &set(&[1, 2]));
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!((r.tp, r.fp, r.fn_), (2, 0, 0));
    }

    #[test]
    fn evaluate_partial() {
        let r = evaluate_sets(&set(&[1, 2, 3, 4]), &set(&[1, 2]));
        assert_eq!(r.precision, 0.5);
        assert_eq!(r.recall, 1.0);
        assert!((r.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_empty_cases() {
        let r = evaluate_sets(&set(&[]), &set(&[]));
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        let r = evaluate_sets(&set(&[]), &set(&[1]));
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
        let r = evaluate_sets(&set(&[1]), &set(&[]));
        assert_eq!(r.precision, 0.0);
    }

    #[test]
    fn report_on_empty_input_is_empty() {
        let strategies: [alertops_model::AlertStrategy; 0] = [];
        let input = DetectionInput::new(&strategies);
        let report = AntiPatternReport::run_default(&input);
        assert_eq!(report.finding_count(), 0);
        assert!(report.cascades.is_empty());
        assert!(report.all_flagged().is_empty());
        let display = report.to_string();
        assert!(display.contains("A1"));
        assert!(display.contains("cascade groups"));
    }
}
