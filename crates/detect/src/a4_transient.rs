//! A4 — transient and toggling alerts.
//!
//! From the paper (§III-A1): "When the interval between the generation
//! time and automatic clearance time of an alarm is less than a certain
//! value (known as the **intermittent interruption threshold**), the
//! alert is called a **transient alert**. When the same alert is
//! generated and cleared multiple times (i.e., oscillation), and the
//! number of oscillations is greater than a certain value (known as the
//! **oscillation threshold**), it is called a **toggling alert**."
//!
//! Both definitions are implemented verbatim; the detector flags
//! strategies whose alert history is dominated by transients or exhibits
//! toggling runs.

use alertops_model::{Clearance, SimDuration, StrategyId};

use crate::engine::TimeMultiset;
use crate::input::DetectionInput;
use crate::types::{AntiPattern, Detector, StrategyFinding};

/// Detector for transient and toggling alerts.
#[derive(Debug, Clone)]
pub struct TransientTogglingDetector {
    /// The intermittent interruption threshold: auto-cleared alerts with
    /// a shorter duration are transient.
    pub intermittent_threshold: SimDuration,
    /// The oscillation threshold: this many transient alerts of one
    /// strategy within [`oscillation_window`](Self::oscillation_window)
    /// make the strategy toggling.
    pub oscillation_threshold: usize,
    /// Window for counting oscillations.
    pub oscillation_window: SimDuration,
    /// Minimum transient count (and share) before flagging a strategy.
    pub min_transients: usize,
    /// Minimum fraction of a strategy's alerts that must be transient.
    pub min_transient_share: f64,
}

impl Default for TransientTogglingDetector {
    fn default() -> Self {
        Self {
            intermittent_threshold: SimDuration::from_mins(5),
            oscillation_threshold: 3,
            oscillation_window: SimDuration::from_mins(30),
            min_transients: 4,
            min_transient_share: 0.3,
        }
    }
}

impl TransientTogglingDetector {
    /// Whether a single alert is *transient* under this configuration.
    #[must_use]
    pub fn is_transient(&self, alert: &alertops_model::Alert) -> bool {
        alert.clearance() == Some(Clearance::Auto)
            && alert
                .duration()
                .is_some_and(|d| d < self.intermittent_threshold)
    }

    /// The longest oscillation run: the maximum number of transient
    /// alerts of one strategy falling within any
    /// [`oscillation_window`](Self::oscillation_window)-long span.
    /// `times` must be sorted ascending.
    fn max_oscillation(&self, times: &[alertops_model::SimTime]) -> usize {
        let mut best = 0;
        let mut lo = 0;
        for hi in 0..times.len() {
            while times[hi].duration_since(times[lo]) > self.oscillation_window {
                lo += 1;
            }
            best = best.max(hi - lo + 1);
        }
        best
    }

    /// Evaluates one strategy from its rolling aggregates: `total`
    /// in-scope alerts, of which the multiset `transient_times` were
    /// transient. This is the single scoring formula shared by the
    /// batch [`Detector`] pass and the incremental engine
    /// ([`crate::IncrementalState`]) — both paths reduce a strategy's
    /// evidence to exactly these aggregates, so their findings agree
    /// byte for byte.
    pub(crate) fn evaluate_strategy(
        &self,
        strategy: StrategyId,
        total: usize,
        transient_times: &TimeMultiset,
    ) -> Option<StrategyFinding> {
        if total == 0 {
            return None;
        }
        let transients: usize = transient_times.values().sum();
        let share = transients as f64 / total as f64;
        if transients < self.min_transients || share < self.min_transient_share {
            return None;
        }
        let flat: Vec<alertops_model::SimTime> = transient_times
            .iter()
            .flat_map(|(&t, &count)| std::iter::repeat_n(t, count))
            .collect();
        let oscillation = self.max_oscillation(&flat);
        let toggling = oscillation > self.oscillation_threshold;
        Some(StrategyFinding {
            strategy,
            pattern: AntiPattern::TransientToggling,
            score: transients as f64 * if toggling { 2.0 } else { 1.0 },
            evidence: format!(
                "{transients}/{total} alerts transient (< {}); max oscillation {} in {}{}",
                self.intermittent_threshold,
                oscillation,
                self.oscillation_window,
                if toggling { " — TOGGLING" } else { "" },
            ),
        })
    }
}

impl Detector for TransientTogglingDetector {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::TransientToggling
    }

    fn detect(&self, input: &DetectionInput<'_>) -> Vec<StrategyFinding> {
        let mut findings = Vec::new();
        for strategy in input.strategies() {
            let total = input.alert_count_of(strategy.id());
            let mut transient_times = TimeMultiset::new();
            for alert in input.alerts_of(strategy.id()) {
                if self.is_transient(alert) {
                    *transient_times.entry(alert.raised_at()).or_insert(0) += 1;
                }
            }
            if let Some(finding) = self.evaluate_strategy(strategy.id(), total, &transient_times) {
                findings.push(finding);
            }
        }
        findings.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.strategy.cmp(&b.strategy))
        });
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{
        Alert, AlertId, AlertStrategy, LogRule, SimTime, StrategyId, StrategyKind,
    };

    fn strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("t")
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            }))
            .build()
            .unwrap()
    }

    /// An alert raised at `t` and auto-cleared after `secs`.
    fn transient(id: u64, strategy: u64, t: u64, secs: u64) -> Alert {
        let mut a = Alert::builder(AlertId(id), StrategyId(strategy))
            .raised_at(SimTime::from_secs(t))
            .build();
        a.clear(SimTime::from_secs(t + secs), Clearance::Auto)
            .unwrap();
        a
    }

    /// A long-lived manually cleared alert.
    fn solid(id: u64, strategy: u64, t: u64) -> Alert {
        let mut a = Alert::builder(AlertId(id), StrategyId(strategy))
            .raised_at(SimTime::from_secs(t))
            .build();
        a.clear(SimTime::from_secs(t + 3_600), Clearance::Manual)
            .unwrap();
        a
    }

    #[test]
    fn transient_definition_matches_paper() {
        let det = TransientTogglingDetector::default();
        assert!(det.is_transient(&transient(0, 1, 0, 60)));
        // 5 minutes exactly is NOT below the threshold.
        assert!(!det.is_transient(&transient(0, 1, 0, 300)));
        // Manual clearance is never transient.
        assert!(!det.is_transient(&solid(0, 1, 0)));
        // Active alerts are not transient.
        let active = Alert::builder(AlertId(0), StrategyId(1)).build();
        assert!(!det.is_transient(&active));
    }

    #[test]
    fn flags_transient_heavy_strategy() {
        let strategies = [strategy(1)];
        // 6 transients spread over hours (no toggling).
        let alerts: Vec<Alert> = (0..6).map(|i| transient(i, 1, i * 7_200, 30)).collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = TransientTogglingDetector::default().detect(&input);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].evidence.contains("6/6 alerts transient"));
        assert!(!findings[0].evidence.contains("TOGGLING"));
    }

    #[test]
    fn detects_toggling_runs() {
        let strategies = [strategy(1)];
        // 5 transients within 20 minutes: oscillation 5 > threshold 3.
        let alerts: Vec<Alert> = (0..5)
            .map(|i| transient(i, 1, 1_000 + i * 240, 30))
            .collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = TransientTogglingDetector::default().detect(&input);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].evidence.contains("TOGGLING"),
            "{}",
            findings[0].evidence
        );
    }

    #[test]
    fn spares_solid_strategies() {
        let strategies = [strategy(1)];
        let alerts: Vec<Alert> = (0..10).map(|i| solid(i, 1, i * 1_000)).collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = TransientTogglingDetector::default().detect(&input);
        assert!(findings.is_empty());
    }

    #[test]
    fn share_threshold_spares_mostly_solid_strategies() {
        let strategies = [strategy(1)];
        // 4 transients among 20 solid alerts: share 4/24 < 0.3.
        let mut alerts: Vec<Alert> = (0..20).map(|i| solid(i, 1, i * 1_000)).collect();
        alerts.extend((20..24).map(|i| transient(i, 1, 50_000 + i * 10, 30)));
        alerts.sort_by_key(Alert::raised_at);
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = TransientTogglingDetector::default().detect(&input);
        assert!(findings.is_empty());
    }

    #[test]
    fn toggling_scores_above_plain_transient() {
        let strategies = [strategy(1), strategy(2)];
        let mut alerts: Vec<Alert> = (0..5)
            .map(|i| transient(i, 1, 1_000 + i * 240, 30)) // toggling
            .collect();
        alerts.extend((5..10).map(|i| transient(i, 2, i * 7_200, 30))); // spread
        alerts.sort_by_key(Alert::raised_at);
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = TransientTogglingDetector::default().detect(&input);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].strategy, StrategyId(1));
        assert!(findings[0].score > findings[1].score);
    }

    #[test]
    fn max_oscillation_window_logic() {
        let det = TransientTogglingDetector::default();
        let t = |s: u64| SimTime::from_secs(s);
        assert_eq!(det.max_oscillation(&[]), 0);
        assert_eq!(det.max_oscillation(&[t(0)]), 1);
        // 0, 10m, 20m, 29m → all within 30m window.
        assert_eq!(det.max_oscillation(&[t(0), t(600), t(1_200), t(1_740)]), 4);
        // 0 and 31m → never together.
        assert_eq!(det.max_oscillation(&[t(0), t(1_860)]), 1);
    }
}
