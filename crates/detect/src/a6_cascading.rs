//! A6 — cascading alerts.
//!
//! "When a service enters an anomalous state, other services that rely
//! on it will probably suffer from anomalous states as well. … Although
//! the alerts are different, they are implicitly related because they
//! originate from the cascading effect of one single failure"
//! (§III-A2). The paper's Table II example: a Block Storage "disk full"
//! alert followed within minutes by two Database "failed to commit
//! changes" alerts.
//!
//! The detector replays exactly the inference an experienced OCE makes:
//! alert *b* is **derived from** alert *a* when (1) *b* occurred within a
//! time window after *a*, and (2) *b*'s microservice transitively
//! depends on *a*'s. Derivation edges are grouped into connected
//! components; components spanning at least `min_group` alerts and two
//! microservices are reported as cascades, rooted at their earliest
//! bottom-most alert.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use alertops_model::{AlertId, DependencyGraph, MicroserviceId, SimDuration, SimTime, TimeRange};

use crate::input::DetectionInput;

/// One detected cascade: a set of causally-linked alerts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeGroup {
    /// The inferred root-cause alert (earliest alert on the most
    /// depended-upon microservice of the group).
    pub root: AlertId,
    /// All member alerts, in raise order (includes the root).
    pub members: Vec<AlertId>,
    /// The time span from first to last member.
    pub window: TimeRange,
}

impl CascadeGroup {
    /// Number of member alerts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never true for detector output).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The alerts that are *not* the root — the ones alert correlation
    /// (R3) would suppress so the OCE diagnoses only the source.
    #[must_use]
    pub fn derived(&self) -> Vec<AlertId> {
        self.members
            .iter()
            .copied()
            .filter(|&m| m != self.root)
            .collect()
    }
}

/// Detector for cascading alerts. Requires the dependency graph; without
/// one, [`detect_groups`](Self::detect_groups) returns nothing.
#[derive(Debug, Clone)]
pub struct CascadingDetector {
    /// Maximum delay between a cause alert and a derived alert.
    pub window: SimDuration,
    /// Minimum component size to report.
    pub min_group: usize,
}

impl Default for CascadingDetector {
    fn default() -> Self {
        Self {
            window: SimDuration::from_mins(10),
            min_group: 3,
        }
    }
}

impl CascadingDetector {
    /// Finds cascade groups in the input's alert stream.
    ///
    /// Runtime is `O(n · w)` where `w` is the number of alerts inside
    /// the time window — each alert only checks dependency edges against
    /// its time-window neighbours. Both this batch entry point and the
    /// incremental engine ([`crate::IncrementalState`]) drive the same
    /// [`CascadeState`], so their groups agree exactly; the output is a
    /// pure function of the alert *set* (ordered internally by raise
    /// time then id), independent of arrival order.
    #[must_use]
    pub fn detect_groups(&self, input: &DetectionInput<'_>) -> Vec<CascadeGroup> {
        let Some(graph) = input.graph() else {
            return Vec::new();
        };
        if input.alerts().is_empty() {
            return Vec::new();
        }
        let mut state = CascadeState::default();
        for alert in input.alerts() {
            state.insert(
                alert.raised_at(),
                alert.id(),
                alert.microservice(),
                self.window,
                graph,
            );
        }
        state.groups(self.min_group, graph)
    }
}

/// The cascade detector's incremental state: the set of alive alerts
/// and the derivation edges among them.
///
/// The edge set is a *pure function of the alive alert set* — an edge
/// `a — b` exists iff the two alerts are within the detector window,
/// sit on different microservices, and the later one's microservice
/// transitively depends on the earlier one's. Because no edge depends
/// on arrival order, [`insert`](Self::insert) and
/// [`remove`](Self::remove) are exact: any interleaving of inserts and
/// removes that leaves the same alive set leaves the same state.
/// [`groups`](Self::groups) then reads connected components off the
/// adjacency map.
#[derive(Debug, Clone, Default)]
pub(crate) struct CascadeState {
    /// Alive alerts, keyed by (raise time, id) → microservice. The key
    /// order fixes member order, root tie-breaks, and group order.
    alive: BTreeMap<(SimTime, AlertId), MicroserviceId>,
    /// Undirected derivation edges; nodes without edges carry no entry,
    /// so two states over the same alive set compare equal.
    adj: BTreeMap<(SimTime, AlertId), BTreeSet<(SimTime, AlertId)>>,
    /// Memoized dependency closures (cache only — excluded from
    /// equality).
    closures: HashMap<MicroserviceId, BTreeSet<MicroserviceId>>,
}

impl PartialEq for CascadeState {
    fn eq(&self, other: &Self) -> bool {
        self.alive == other.alive && self.adj == other.adj
    }
}

impl CascadeState {
    /// Whether microservice `a` transitively depends on (calls) `b`.
    fn depends(&mut self, a: MicroserviceId, b: MicroserviceId, graph: &DependencyGraph) -> bool {
        self.closures
            .entry(a)
            .or_insert_with(|| graph.dependency_closure(a))
            .contains(&b)
    }

    /// Adds one alive alert, discovering derivation edges against the
    /// alerts already alive within `window` of it (`O(w)` per insert).
    pub(crate) fn insert(
        &mut self,
        raised_at: SimTime,
        id: AlertId,
        ms: MicroserviceId,
        window: SimDuration,
        graph: &DependencyGraph,
    ) {
        let key = (raised_at, id);
        let lo = raised_at
            .checked_sub(window)
            .unwrap_or_else(|| SimTime::from_secs(0));
        let hi = raised_at.saturating_add(window);
        let neighbours: Vec<((SimTime, AlertId), MicroserviceId)> = self
            .alive
            .range((lo, AlertId(0))..=(hi, AlertId(u64::MAX)))
            .map(|(&k, &m)| (k, m))
            .collect();
        for (other, other_ms) in neighbours {
            if other == key || other_ms == ms {
                continue; // same box: repeating, not cascading
            }
            // Later derived from earlier: the later alert's microservice
            // calls the earlier one's (failure flows callee → caller).
            let (later_ms, earlier_ms) = if other < key {
                (ms, other_ms)
            } else {
                (other_ms, ms)
            };
            if self.depends(later_ms, earlier_ms, graph) {
                self.adj.entry(key).or_default().insert(other);
                self.adj.entry(other).or_default().insert(key);
            }
        }
        self.alive.insert(key, ms);
    }

    /// Removes one alert and every edge incident to it, dropping
    /// neighbours' adjacency entries that become empty (so the state
    /// stays structurally identical to a fresh build).
    pub(crate) fn remove(&mut self, raised_at: SimTime, id: AlertId) {
        let key = (raised_at, id);
        self.alive.remove(&key);
        if let Some(neighbours) = self.adj.remove(&key) {
            for neighbour in neighbours {
                if let Some(set) = self.adj.get_mut(&neighbour) {
                    set.remove(&key);
                    if set.is_empty() {
                        self.adj.remove(&neighbour);
                    }
                }
            }
        }
    }

    /// Connected components of the derivation edges, filtered and
    /// rooted exactly as the paper describes: at least `min_group`
    /// alerts spanning ≥ 2 microservices, rooted at the earliest alert
    /// whose microservice depends on no other member's.
    pub(crate) fn groups(
        &mut self,
        min_group: usize,
        graph: &DependencyGraph,
    ) -> Vec<CascadeGroup> {
        let mut visited: BTreeSet<(SimTime, AlertId)> = BTreeSet::new();
        let mut groups = Vec::new();
        let nodes: Vec<(SimTime, AlertId)> = self.adj.keys().copied().collect();
        for start in nodes {
            if visited.contains(&start) {
                continue;
            }
            // BFS over the component.
            let mut members: BTreeSet<(SimTime, AlertId)> = BTreeSet::new();
            let mut queue = std::collections::VecDeque::from([start]);
            visited.insert(start);
            while let Some(node) = queue.pop_front() {
                members.insert(node);
                if let Some(neighbours) = self.adj.get(&node) {
                    for &n in neighbours {
                        if visited.insert(n) {
                            queue.push_back(n);
                        }
                    }
                }
            }
            if members.len() < min_group {
                continue;
            }
            let ms_of = |k: &(SimTime, AlertId)| self.alive.get(k).copied();
            let distinct_ms: BTreeSet<_> = members.iter().filter_map(ms_of).collect();
            if distinct_ms.len() < 2 {
                continue;
            }
            // Root: the earliest alert on a microservice that no other
            // group member's microservice is below — i.e. the bottom of
            // the dependency chain within the group.
            let member_ms: Vec<MicroserviceId> = members.iter().filter_map(ms_of).collect();
            let mut root = None;
            for &k in &members {
                let Some(ms) = self.alive.get(&k).copied() else {
                    continue;
                };
                if !member_ms
                    .iter()
                    .any(|&other| self.depends(ms, other, graph))
                {
                    root = Some(k);
                    break;
                }
            }
            let root = root.unwrap_or_else(|| *members.first().expect("nonempty component"));
            let first = members.first().expect("nonempty").0;
            let last = members.last().expect("nonempty").0;
            groups.push(CascadeGroup {
                root: root.1,
                members: members.iter().map(|&(_, id)| id).collect(),
                window: TimeRange::new(first, last.saturating_add(SimDuration::from_secs(1))),
            });
        }
        groups.sort_by_key(|g| g.window.start());
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DetectionInput;
    use alertops_model::{
        Alert, AlertStrategy, DependencyGraph, LogRule, MicroserviceId, SimTime, StrategyId,
        StrategyKind,
    };

    fn strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("t")
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            }))
            .build()
            .unwrap()
    }

    fn alert(id: u64, ms: u64, t_secs: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(id))
            .microservice(MicroserviceId(ms))
            .raised_at(SimTime::from_secs(t_secs))
            .build()
    }

    /// db-commit (2) and db-sync (3) call storage (1).
    fn graph() -> DependencyGraph {
        [
            (MicroserviceId(2), MicroserviceId(1)),
            (MicroserviceId(3), MicroserviceId(1)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn table2_shape_cascade_is_detected() {
        // Storage alert at 06:36, two database alerts at 06:38 — the
        // paper's Table II.
        let strategies = [strategy(0), strategy(1), strategy(2)];
        let t0 = 6 * 3_600 + 36 * 60;
        let alerts = [
            alert(0, 1, t0),
            alert(1, 2, t0 + 120),
            alert(2, 3, t0 + 120),
        ];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        let groups = CascadingDetector::default().detect_groups(&input);
        assert_eq!(groups.len(), 1);
        let group = &groups[0];
        assert_eq!(group.root, AlertId(0), "root should be the storage alert");
        assert_eq!(group.len(), 3);
        assert_eq!(group.derived(), vec![AlertId(1), AlertId(2)]);
    }

    #[test]
    fn unrelated_alerts_do_not_group() {
        let strategies = [strategy(0), strategy(1), strategy(2)];
        // Microservices 5, 6, 7 share no dependency edges.
        let alerts = [alert(0, 5, 100), alert(1, 6, 160), alert(2, 7, 200)];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        assert!(CascadingDetector::default()
            .detect_groups(&input)
            .is_empty());
    }

    #[test]
    fn window_limits_grouping() {
        let strategies = [strategy(0), strategy(1), strategy(2)];
        // Dependent alerts arrive 2 hours later: outside the window.
        let alerts = [alert(0, 1, 0), alert(1, 2, 7_200), alert(2, 3, 7_260)];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        assert!(CascadingDetector::default()
            .detect_groups(&input)
            .is_empty());
    }

    #[test]
    fn min_group_size_is_enforced() {
        let strategies = [strategy(0), strategy(1)];
        let alerts = [alert(0, 1, 0), alert(1, 2, 60)];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        assert!(
            CascadingDetector::default()
                .detect_groups(&input)
                .is_empty(),
            "2 alerts < min_group 3"
        );
        let loose = CascadingDetector {
            min_group: 2,
            ..CascadingDetector::default()
        };
        assert_eq!(loose.detect_groups(&input).len(), 1);
    }

    #[test]
    fn same_microservice_repeats_do_not_cascade() {
        let strategies = [strategy(0), strategy(1), strategy(2)];
        let alerts = [alert(0, 1, 0), alert(1, 1, 30), alert(2, 1, 60)];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        assert!(CascadingDetector::default()
            .detect_groups(&input)
            .is_empty());
    }

    #[test]
    fn no_graph_no_findings() {
        let strategies = [strategy(0)];
        let alerts = [alert(0, 1, 0)];
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        assert!(CascadingDetector::default()
            .detect_groups(&input)
            .is_empty());
    }

    #[test]
    fn transitive_dependencies_cascade_too() {
        // 4 → 2 → 1: alert on 1, then on 2, then on 4.
        let strategies = [strategy(0), strategy(1), strategy(2)];
        let g: DependencyGraph = [
            (MicroserviceId(2), MicroserviceId(1)),
            (MicroserviceId(4), MicroserviceId(2)),
        ]
        .into_iter()
        .collect();
        let alerts = [alert(0, 1, 0), alert(1, 2, 60), alert(2, 4, 120)];
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        let groups = CascadingDetector::default().detect_groups(&input);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].root, AlertId(0));
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn two_separate_cascades_stay_separate() {
        let strategies: Vec<AlertStrategy> = (0..6).map(strategy).collect();
        let g: DependencyGraph = [
            (MicroserviceId(2), MicroserviceId(1)),
            (MicroserviceId(3), MicroserviceId(1)),
            (MicroserviceId(12), MicroserviceId(11)),
            (MicroserviceId(13), MicroserviceId(11)),
        ]
        .into_iter()
        .collect();
        let alerts = [
            alert(0, 1, 0),
            alert(1, 2, 60),
            alert(2, 3, 90),
            // Second cascade 5 hours later.
            alert(3, 11, 18_000),
            alert(4, 12, 18_060),
            alert(5, 13, 18_090),
        ];
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        let groups = CascadingDetector::default().detect_groups(&input);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].root, AlertId(0));
        assert_eq!(groups[1].root, AlertId(3));
    }
}
