//! A6 — cascading alerts.
//!
//! "When a service enters an anomalous state, other services that rely
//! on it will probably suffer from anomalous states as well. … Although
//! the alerts are different, they are implicitly related because they
//! originate from the cascading effect of one single failure"
//! (§III-A2). The paper's Table II example: a Block Storage "disk full"
//! alert followed within minutes by two Database "failed to commit
//! changes" alerts.
//!
//! The detector replays exactly the inference an experienced OCE makes:
//! alert *b* is **derived from** alert *a* when (1) *b* occurred within a
//! time window after *a*, and (2) *b*'s microservice transitively
//! depends on *a*'s. Derivation edges are grouped into connected
//! components; components spanning at least `min_group` alerts and two
//! microservices are reported as cascades, rooted at their earliest
//! bottom-most alert.

use serde::{Deserialize, Serialize};

use alertops_model::{AlertId, SimDuration, TimeRange};

use crate::input::DetectionInput;

/// One detected cascade: a set of causally-linked alerts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeGroup {
    /// The inferred root-cause alert (earliest alert on the most
    /// depended-upon microservice of the group).
    pub root: AlertId,
    /// All member alerts, in raise order (includes the root).
    pub members: Vec<AlertId>,
    /// The time span from first to last member.
    pub window: TimeRange,
}

impl CascadeGroup {
    /// Number of member alerts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never true for detector output).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The alerts that are *not* the root — the ones alert correlation
    /// (R3) would suppress so the OCE diagnoses only the source.
    #[must_use]
    pub fn derived(&self) -> Vec<AlertId> {
        self.members
            .iter()
            .copied()
            .filter(|&m| m != self.root)
            .collect()
    }
}

/// Detector for cascading alerts. Requires the dependency graph; without
/// one, [`detect_groups`](Self::detect_groups) returns nothing.
#[derive(Debug, Clone)]
pub struct CascadingDetector {
    /// Maximum delay between a cause alert and a derived alert.
    pub window: SimDuration,
    /// Minimum component size to report.
    pub min_group: usize,
}

impl Default for CascadingDetector {
    fn default() -> Self {
        Self {
            window: SimDuration::from_mins(10),
            min_group: 3,
        }
    }
}

impl CascadingDetector {
    /// Finds cascade groups in the input's alert stream.
    ///
    /// Runtime is `O(n · w)` where `w` is the number of alerts inside
    /// the time window — the stream is scanned once with a sliding
    /// window, and dependency checks only run within it.
    #[must_use]
    pub fn detect_groups(&self, input: &DetectionInput<'_>) -> Vec<CascadeGroup> {
        let Some(graph) = input.graph() else {
            return Vec::new();
        };
        let alerts = input.alerts();
        let n = alerts.len();
        if n == 0 {
            return Vec::new();
        }
        // Precompute each microservice's dependency closure once; the
        // sliding window below would otherwise run a BFS per alert pair.
        type ClosureCache = std::collections::HashMap<
            alertops_model::MicroserviceId,
            std::collections::BTreeSet<alertops_model::MicroserviceId>,
        >;
        let mut closures: ClosureCache = ClosureCache::new();
        let mut depends =
            |a: alertops_model::MicroserviceId, b: alertops_model::MicroserviceId| -> bool {
                closures
                    .entry(a)
                    .or_insert_with(|| graph.dependency_closure(a))
                    .contains(&b)
            };
        // Union-find over alert indices.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let mut lo = 0usize;
        for hi in 0..n {
            while alerts[hi]
                .raised_at()
                .duration_since(alerts[lo].raised_at())
                > self.window
            {
                lo += 1;
            }
            for earlier in lo..hi {
                let (a, b) = (&alerts[earlier], &alerts[hi]);
                if a.microservice() == b.microservice() {
                    continue; // same box: repeating, not cascading
                }
                // b derived from a: b's microservice calls a's
                // (failure flows from callee up to caller).
                if depends(b.microservice(), a.microservice()) {
                    let (ra, rb) = (find(&mut parent, earlier), find(&mut parent, hi));
                    if ra != rb {
                        parent[rb] = ra;
                    }
                }
            }
        }

        // Collect components.
        let mut components: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            components.entry(root).or_default().push(i);
        }

        let mut groups = Vec::new();
        for (_, mut ixs) in components {
            if ixs.len() < self.min_group {
                continue;
            }
            ixs.sort_unstable();
            let distinct_ms: std::collections::BTreeSet<_> =
                ixs.iter().map(|&i| alerts[i].microservice()).collect();
            if distinct_ms.len() < 2 {
                continue;
            }
            // Root: the earliest alert on a microservice that no other
            // group member's microservice is below — i.e. the bottom of
            // the dependency chain within the group.
            let root_ix = ixs
                .iter()
                .copied()
                .filter(|&i| {
                    let ms = alerts[i].microservice();
                    !ixs.iter().any(|&j| depends(ms, alerts[j].microservice()))
                })
                .min_by_key(|&i| alerts[i].raised_at())
                .unwrap_or(ixs[0]);
            let first = alerts[ixs[0]].raised_at();
            let last = alerts[*ixs.last().expect("nonempty")].raised_at();
            groups.push(CascadeGroup {
                root: alerts[root_ix].id(),
                members: ixs.iter().map(|&i| alerts[i].id()).collect(),
                window: TimeRange::new(first, last.saturating_add(SimDuration::from_secs(1))),
            });
        }
        groups.sort_by_key(|g| g.window.start());
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DetectionInput;
    use alertops_model::{
        Alert, AlertStrategy, DependencyGraph, LogRule, MicroserviceId, SimTime, StrategyId,
        StrategyKind,
    };

    fn strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("t")
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            }))
            .build()
            .unwrap()
    }

    fn alert(id: u64, ms: u64, t_secs: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(id))
            .microservice(MicroserviceId(ms))
            .raised_at(SimTime::from_secs(t_secs))
            .build()
    }

    /// db-commit (2) and db-sync (3) call storage (1).
    fn graph() -> DependencyGraph {
        [
            (MicroserviceId(2), MicroserviceId(1)),
            (MicroserviceId(3), MicroserviceId(1)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn table2_shape_cascade_is_detected() {
        // Storage alert at 06:36, two database alerts at 06:38 — the
        // paper's Table II.
        let strategies = [strategy(0), strategy(1), strategy(2)];
        let t0 = 6 * 3_600 + 36 * 60;
        let alerts = [
            alert(0, 1, t0),
            alert(1, 2, t0 + 120),
            alert(2, 3, t0 + 120),
        ];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        let groups = CascadingDetector::default().detect_groups(&input);
        assert_eq!(groups.len(), 1);
        let group = &groups[0];
        assert_eq!(group.root, AlertId(0), "root should be the storage alert");
        assert_eq!(group.len(), 3);
        assert_eq!(group.derived(), vec![AlertId(1), AlertId(2)]);
    }

    #[test]
    fn unrelated_alerts_do_not_group() {
        let strategies = [strategy(0), strategy(1), strategy(2)];
        // Microservices 5, 6, 7 share no dependency edges.
        let alerts = [alert(0, 5, 100), alert(1, 6, 160), alert(2, 7, 200)];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        assert!(CascadingDetector::default()
            .detect_groups(&input)
            .is_empty());
    }

    #[test]
    fn window_limits_grouping() {
        let strategies = [strategy(0), strategy(1), strategy(2)];
        // Dependent alerts arrive 2 hours later: outside the window.
        let alerts = [alert(0, 1, 0), alert(1, 2, 7_200), alert(2, 3, 7_260)];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        assert!(CascadingDetector::default()
            .detect_groups(&input)
            .is_empty());
    }

    #[test]
    fn min_group_size_is_enforced() {
        let strategies = [strategy(0), strategy(1)];
        let alerts = [alert(0, 1, 0), alert(1, 2, 60)];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        assert!(
            CascadingDetector::default()
                .detect_groups(&input)
                .is_empty(),
            "2 alerts < min_group 3"
        );
        let loose = CascadingDetector {
            min_group: 2,
            ..CascadingDetector::default()
        };
        assert_eq!(loose.detect_groups(&input).len(), 1);
    }

    #[test]
    fn same_microservice_repeats_do_not_cascade() {
        let strategies = [strategy(0), strategy(1), strategy(2)];
        let alerts = [alert(0, 1, 0), alert(1, 1, 30), alert(2, 1, 60)];
        let g = graph();
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        assert!(CascadingDetector::default()
            .detect_groups(&input)
            .is_empty());
    }

    #[test]
    fn no_graph_no_findings() {
        let strategies = [strategy(0)];
        let alerts = [alert(0, 1, 0)];
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        assert!(CascadingDetector::default()
            .detect_groups(&input)
            .is_empty());
    }

    #[test]
    fn transitive_dependencies_cascade_too() {
        // 4 → 2 → 1: alert on 1, then on 2, then on 4.
        let strategies = [strategy(0), strategy(1), strategy(2)];
        let g: DependencyGraph = [
            (MicroserviceId(2), MicroserviceId(1)),
            (MicroserviceId(4), MicroserviceId(2)),
        ]
        .into_iter()
        .collect();
        let alerts = [alert(0, 1, 0), alert(1, 2, 60), alert(2, 4, 120)];
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        let groups = CascadingDetector::default().detect_groups(&input);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].root, AlertId(0));
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn two_separate_cascades_stay_separate() {
        let strategies: Vec<AlertStrategy> = (0..6).map(strategy).collect();
        let g: DependencyGraph = [
            (MicroserviceId(2), MicroserviceId(1)),
            (MicroserviceId(3), MicroserviceId(1)),
            (MicroserviceId(12), MicroserviceId(11)),
            (MicroserviceId(13), MicroserviceId(11)),
        ]
        .into_iter()
        .collect();
        let alerts = [
            alert(0, 1, 0),
            alert(1, 2, 60),
            alert(2, 3, 90),
            // Second cascade 5 hours later.
            alert(3, 11, 18_000),
            alert(4, 12, 18_060),
            alert(5, 13, 18_090),
        ];
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_graph(&g);
        let groups = CascadingDetector::default().detect_groups(&input);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].root, AlertId(0));
        assert_eq!(groups[1].root, AlertId(3));
    }
}
