//! A2 — misleading severity.
//!
//! "Inappropriately high severity level takes up OCE's time for dealing
//! with less essential alerts, while too low severity level may lead to
//! missing important alerts" (§III-A1). The detector estimates each
//! strategy's *impact-implied* severity from evidence — how often its
//! alerts co-occur with an incident on the same service, and how often
//! they simply auto-clear — and flags strategies whose configured
//! severity sits at least two ranks away.

use alertops_model::{Clearance, Severity};

use crate::input::DetectionInput;
use crate::types::{AntiPattern, Detector, StrategyFinding};

/// Detector for misleading severities. Needs alert *and* incident
/// history; strategies with fewer than `min_alerts` alerts are skipped
/// (not enough evidence).
#[derive(Debug, Clone)]
pub struct MisleadingSeverityDetector {
    /// Minimum alert count before judging a strategy.
    pub min_alerts: usize,
    /// Minimum rank distance between configured and implied severity.
    pub min_distance: u8,
    /// How far after an alert an incident may begin and still count as
    /// indicated by it (alerts are early warnings).
    pub incident_lookahead: alertops_model::SimDuration,
}

impl Default for MisleadingSeverityDetector {
    fn default() -> Self {
        Self {
            min_alerts: 10,
            min_distance: 2,
            incident_lookahead: alertops_model::SimDuration::from_mins(30),
        }
    }
}

impl MisleadingSeverityDetector {
    /// Estimates the severity a strategy's impact evidence implies.
    ///
    /// * A clear majority of alerts co-occur with incidents → `Critical`.
    /// * A solid fraction does (and the alerts don't just auto-clear) →
    ///   `Major`.
    /// * Essentially no impact and the alerts mostly auto-clear →
    ///   `Warning` (pure noise).
    /// * Otherwise → `Minor`.
    ///
    /// Both high bands require a non-self-clearing majority (auto-clear
    /// ≤ 80%): alerts that overwhelmingly clear themselves never imply
    /// more than `Major`, however often they coincide with incidents —
    /// storms make incidental co-occurrence common, and a looser rule
    /// floods the detector with false flags.
    #[must_use]
    pub fn implied_severity(incident_rate: f64, auto_clear_rate: f64) -> Severity {
        let self_clearing = auto_clear_rate > 0.8;
        if incident_rate > 0.5 && !self_clearing {
            Severity::Critical
        } else if (incident_rate > 0.3 && !self_clearing) || incident_rate > 0.5 {
            Severity::Major
        } else if self_clearing && incident_rate <= 0.3 {
            Severity::Warning
        } else {
            Severity::Minor
        }
    }
}

/// The per-strategy aggregates A2 scoring reduces an alert history to.
/// Shared by the batch [`Detector`] pass and the incremental engine
/// ([`crate::IncrementalState`]) so both paths score identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SeverityEvidence {
    /// In-scope alerts of the strategy.
    pub total: usize,
    /// Alerts whose raise time indicated an incident on the strategy's
    /// service (within the detector's lookahead).
    pub with_incident: usize,
    /// Alerts that auto-cleared.
    pub auto_cleared: usize,
    /// Alerts that auto-cleared within [`a2_transient_cutoff`].
    pub transients: usize,
}

/// A2's transient cutoff: auto-cleared alerts shorter than this are
/// deferred to the A4 detector rather than judged for severity.
pub(crate) fn a2_transient_cutoff() -> alertops_model::SimDuration {
    alertops_model::SimDuration::from_mins(5)
}

impl MisleadingSeverityDetector {
    /// Evaluates one strategy from its [`SeverityEvidence`] aggregates —
    /// the single scoring formula behind both detection paths.
    pub(crate) fn evaluate_strategy(
        &self,
        strategy: &alertops_model::AlertStrategy,
        evidence: &SeverityEvidence,
    ) -> Option<StrategyFinding> {
        let total = evidence.total;
        if total < self.min_alerts {
            return None;
        }
        // Transient-dominated strategies are A4's finding, not A2's:
        // their severity is moot until the flapping is fixed.
        if evidence.transients as f64 / total as f64 > 0.5 {
            return None;
        }
        let incident_rate = evidence.with_incident as f64 / total as f64;
        let auto_clear_rate = evidence.auto_cleared as f64 / total as f64;
        let implied = Self::implied_severity(incident_rate, auto_clear_rate);
        // Probe severities encode worst-case impact (host down). A
        // noisy probe with no observed impact has a *timing/threshold*
        // problem, not a severity one — don't flag Critical probes
        // down to noise levels.
        if matches!(strategy.kind(), alertops_model::StrategyKind::Probe(_))
            && implied <= Severity::Minor
        {
            return None;
        }
        let distance = strategy.severity().distance(implied);
        if distance < self.min_distance {
            return None;
        }
        Some(StrategyFinding {
            strategy: strategy.id(),
            pattern: AntiPattern::MisleadingSeverity,
            score: f64::from(distance),
            evidence: format!(
                "configured {} but evidence implies {} ({} alerts, {:.0}% incident co-occurrence, {:.0}% auto-cleared)",
                strategy.severity(),
                implied,
                total,
                incident_rate * 100.0,
                auto_clear_rate * 100.0,
            ),
        })
    }

    /// The severity this detector's evidence implies for one strategy,
    /// or `None` when there is not enough history (fewer than
    /// `min_alerts` alerts). Exposed so governance remediation can
    /// propose the corrected severity without re-deriving the evidence
    /// rules.
    #[must_use]
    pub fn implied_for(
        &self,
        input: &DetectionInput<'_>,
        strategy: &alertops_model::AlertStrategy,
    ) -> Option<Severity> {
        let total = input.alert_count_of(strategy.id());
        if total < self.min_alerts {
            return None;
        }
        let mut with_incident = 0usize;
        let mut auto_cleared = 0usize;
        for alert in input.alerts_of(strategy.id()) {
            if input.incident_indicated(
                strategy.service(),
                alert.raised_at(),
                self.incident_lookahead,
            ) {
                with_incident += 1;
            }
            if alert.clearance() == Some(Clearance::Auto) {
                auto_cleared += 1;
            }
        }
        Some(Self::implied_severity(
            with_incident as f64 / total as f64,
            auto_cleared as f64 / total as f64,
        ))
    }
}

impl Detector for MisleadingSeverityDetector {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::MisleadingSeverity
    }

    fn detect(&self, input: &DetectionInput<'_>) -> Vec<StrategyFinding> {
        let mut findings = Vec::new();
        let transient_cutoff = a2_transient_cutoff();
        for strategy in input.strategies() {
            let mut evidence = SeverityEvidence {
                total: input.alert_count_of(strategy.id()),
                ..SeverityEvidence::default()
            };
            for alert in input.alerts_of(strategy.id()) {
                if input.incident_indicated(
                    strategy.service(),
                    alert.raised_at(),
                    self.incident_lookahead,
                ) {
                    evidence.with_incident += 1;
                }
                if alert.clearance() == Some(Clearance::Auto) {
                    evidence.auto_cleared += 1;
                    if alert.duration().is_some_and(|d| d < transient_cutoff) {
                        evidence.transients += 1;
                    }
                }
            }
            if let Some(finding) = self.evaluate_strategy(strategy, &evidence) {
                findings.push(finding);
            }
        }
        findings.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.strategy.cmp(&b.strategy))
        });
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{
        Alert, AlertId, AlertStrategy, Incident, IncidentId, LogRule, ServiceId, SimDuration,
        SimTime, StrategyId, StrategyKind,
    };

    fn strategy(id: u64, severity: Severity, service: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("title")
            .severity(severity)
            .service(ServiceId(service))
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            }))
            .build()
            .unwrap()
    }

    /// Auto-cleared after 10 minutes: self-clearing but not transient
    /// (transient-dominated strategies are deferred to the A4 detector).
    fn alert(id: u64, strategy: u64, t: u64, auto_clear: bool) -> Alert {
        let mut a = Alert::builder(AlertId(id), StrategyId(strategy))
            .raised_at(SimTime::from_secs(t))
            .build();
        if auto_clear {
            a.clear(SimTime::from_secs(t + 600), Clearance::Auto)
                .unwrap();
        }
        a
    }

    fn incident(service: u64, from: u64, to: u64) -> Incident {
        let mut inc = Incident::new(
            IncidentId(0),
            ServiceId(service),
            Severity::Critical,
            SimTime::from_secs(from),
        );
        inc.mitigate(SimTime::from_secs(to));
        inc
    }

    #[test]
    fn implied_severity_mapping() {
        assert_eq!(
            MisleadingSeverityDetector::implied_severity(0.9, 0.0),
            Severity::Critical
        );
        // Self-clearing alerts cap at Major even with high co-occurrence.
        assert_eq!(
            MisleadingSeverityDetector::implied_severity(0.9, 1.0),
            Severity::Major
        );
        assert_eq!(
            MisleadingSeverityDetector::implied_severity(0.4, 0.0),
            Severity::Major
        );
        // Mostly-auto-cleared alerts cannot imply Major on moderate
        // co-occurrence — storms make that incidental.
        assert_eq!(
            MisleadingSeverityDetector::implied_severity(0.4, 0.9),
            Severity::Minor
        );
        assert_eq!(
            MisleadingSeverityDetector::implied_severity(0.0, 0.9),
            Severity::Warning
        );
        assert_eq!(
            MisleadingSeverityDetector::implied_severity(0.05, 0.2),
            Severity::Minor
        );
    }

    #[test]
    fn flags_warning_strategy_whose_alerts_track_incidents() {
        // Strategy 1 is Warning-configured but all its alerts fall inside
        // an incident window → implied Critical, distance 3.
        let strategies = [strategy(1, Severity::Warning, 4)];
        let alerts: Vec<Alert> = (0..12).map(|i| alert(i, 1, 100 + i * 10, false)).collect();
        let incidents = [incident(4, 50, 1_000)];
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_incidents(&incidents);
        let findings = MisleadingSeverityDetector::default().detect(&input);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].strategy, StrategyId(1));
        assert_eq!(findings[0].score, 3.0);
        assert!(findings[0].evidence.contains("Critical"));
    }

    #[test]
    fn flags_critical_strategy_that_only_autoclears() {
        let strategies = [strategy(2, Severity::Critical, 4)];
        let alerts: Vec<Alert> = (0..12).map(|i| alert(i, 2, 100 + i * 10, true)).collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = MisleadingSeverityDetector::default().detect(&input);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].evidence.contains("auto-cleared"));
    }

    #[test]
    fn transient_dominated_strategies_are_deferred_to_a4() {
        let strategies = [strategy(2, Severity::Critical, 4)];
        // All alerts auto-clear within 60s: transient share 100%.
        let alerts: Vec<Alert> = (0..12)
            .map(|i| {
                let mut a = Alert::builder(AlertId(i), StrategyId(2))
                    .raised_at(SimTime::from_secs(100 + i * 10))
                    .build();
                a.clear(SimTime::from_secs(160 + i * 10), Clearance::Auto)
                    .unwrap();
                a
            })
            .collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = MisleadingSeverityDetector::default().detect(&input);
        assert!(findings.is_empty(), "transient flapping is A4's finding");
    }

    #[test]
    fn appropriate_severity_not_flagged() {
        // Major-configured, moderate incident co-occurrence → implied
        // Major, distance 0.
        let strategies = [strategy(3, Severity::Major, 4)];
        let alerts: Vec<Alert> = (0..10).map(|i| alert(i, 3, 100 + i * 200, false)).collect();
        let incidents = [incident(4, 100, 500)]; // covers 2/10 alerts
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_incidents(&incidents);
        let findings = MisleadingSeverityDetector::default().detect(&input);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn too_few_alerts_is_no_evidence() {
        let strategies = [strategy(1, Severity::Warning, 4)];
        let alerts: Vec<Alert> = (0..5).map(|i| alert(i, 1, 100 + i, false)).collect();
        let incidents = [incident(4, 50, 1_000)];
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_incidents(&incidents);
        let findings = MisleadingSeverityDetector::default().detect(&input);
        assert!(findings.is_empty());
    }

    #[test]
    fn incidents_on_other_services_do_not_count() {
        let strategies = [strategy(1, Severity::Warning, 4)];
        let alerts: Vec<Alert> = (0..12).map(|i| alert(i, 1, 100 + i * 10, false)).collect();
        let incidents = [incident(9, 50, 1_000)]; // different service
        let input = DetectionInput::new(&strategies)
            .with_alerts(&alerts)
            .with_incidents(&incidents);
        let findings = MisleadingSeverityDetector::default().detect(&input);
        // No incident co-occurrence, no auto-clear → implied Minor,
        // distance from Warning = 1 < 2.
        assert!(findings.is_empty());
    }
}
