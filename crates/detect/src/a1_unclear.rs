//! A1 — unclear name or description.
//!
//! "Typical unclear alert names describe the system state in a very
//! general way with vague words, e.g. *Elastic Computing Service is
//! abnormal*" (§III-A1). The detector scores every strategy's title
//! template with [`TitleScorer`] and flags those below an
//! informativeness threshold.

use alertops_text::TitleScorer;

use crate::input::DetectionInput;
use crate::types::{AntiPattern, Detector, StrategyFinding};

/// Detector for unclear titles. This detector needs no alert history —
/// the title is a static property of the strategy.
#[derive(Debug, Clone)]
pub struct UnclearTitleDetector {
    scorer: TitleScorer,
    /// Titles scoring strictly below this are flagged.
    threshold: f64,
}

impl UnclearTitleDetector {
    /// Creates a detector with the given informativeness threshold
    /// (clamped to `[0, 1]`).
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        Self {
            scorer: TitleScorer::new(),
            threshold: threshold.clamp(0.0, 1.0),
        }
    }

    /// The active threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Default for UnclearTitleDetector {
    /// Threshold 0.45: the paper's example vague titles score ≤ 0.4 with
    /// the standard lexicon while its clear samples score ≥ 0.5.
    fn default() -> Self {
        Self::new(0.45)
    }
}

impl Detector for UnclearTitleDetector {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::UnclearTitle
    }

    fn detect(&self, input: &DetectionInput<'_>) -> Vec<StrategyFinding> {
        let mut findings: Vec<StrategyFinding> = input
            .strategies()
            .iter()
            .filter_map(|strategy| {
                let report = self.scorer.report(strategy.title_template());
                (report.score < self.threshold).then(|| StrategyFinding {
                    strategy: strategy.id(),
                    pattern: AntiPattern::UnclearTitle,
                    // Higher score = worse: invert informativeness.
                    score: 1.0 - report.score,
                    evidence: format!(
                        "title {:?} scored {:.2} (vague {}/{} tokens, manifestation: {}, concrete subject: {})",
                        strategy.title_template(),
                        report.score,
                        report.vague_count,
                        report.token_count,
                        report.has_manifestation,
                        report.has_concrete_subject,
                    ),
                })
            })
            .collect();
        findings.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertStrategy, LogRule, SimDuration, StrategyId, StrategyKind};

    fn strategy(id: u64, title: &str) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template(title)
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn flags_paper_vague_examples_only() {
        let strategies = [
            strategy(0, "Elastic Computing Service is abnormal"),
            strategy(1, "Instance x is abnormal"),
            strategy(2, "Component y encounters exceptions"),
            strategy(3, "Computing cluster has risks"),
            strategy(4, "Failed to allocate new blocks, disk full"),
            strategy(5, "CPU usage of nginx instance is higher than 80%"),
        ];
        let input = DetectionInput::new(&strategies);
        let findings = UnclearTitleDetector::default().detect(&input);
        let flagged: Vec<u64> = {
            let mut v: Vec<u64> = findings.iter().map(|f| f.strategy.0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(flagged, vec![0, 1, 2, 3]);
    }

    #[test]
    fn findings_sorted_by_descending_badness() {
        let strategies = [
            strategy(0, "Instance x is abnormal"),
            strategy(1, "database replicator has risks sometimes maybe"),
        ];
        let input = DetectionInput::new(&strategies);
        let findings = UnclearTitleDetector::default().detect(&input);
        for w in findings.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn threshold_zero_flags_nothing() {
        let strategies = [strategy(0, "Instance x is abnormal")];
        let input = DetectionInput::new(&strategies);
        let findings = UnclearTitleDetector::new(0.0).detect(&input);
        assert!(findings.is_empty());
    }

    #[test]
    fn evidence_mentions_title() {
        let strategies = [strategy(0, "Instance x is abnormal")];
        let input = DetectionInput::new(&strategies);
        let findings = UnclearTitleDetector::default().detect(&input);
        assert!(findings[0].evidence.contains("Instance x is abnormal"));
        assert_eq!(findings[0].pattern, AntiPattern::UnclearTitle);
    }

    #[test]
    fn threshold_is_clamped() {
        assert_eq!(UnclearTitleDetector::new(7.0).threshold(), 1.0);
        assert_eq!(UnclearTitleDetector::new(-1.0).threshold(), 0.0);
    }
}
