//! The OCE adjudication protocol and inter-rater agreement.
//!
//! "We ask two experienced OCEs to mark whether they think the candidate
//! ineffective pattern in alerts is an anti-pattern. If they both agree,
//! we include it as an anti-pattern. If disagreements occur, another
//! experienced OCE is invited to examine the pattern" (§III-A). The
//! protocol is implemented verbatim, along with Cohen's κ for reporting
//! the two primary raters' agreement.

use serde::{Deserialize, Serialize};

/// The outcome of adjudicating one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Decision {
    /// Both primary raters (or the tie-breaker) confirmed it.
    Confirmed,
    /// Rejected by both primary raters (or the tie-breaker).
    Rejected,
}

/// Adjudicates one candidate from two primary votes and a lazily
/// obtained tie-breaker.
///
/// The tie-breaker closure is only invoked when the primary raters
/// disagree — mirroring "another experienced OCE is invited".
///
/// # Example
///
/// ```
/// use alertops_detect::adjudication::{adjudicate, Decision};
///
/// assert_eq!(adjudicate(true, true, || panic!("not needed")), Decision::Confirmed);
/// assert_eq!(adjudicate(false, false, || panic!("not needed")), Decision::Rejected);
/// assert_eq!(adjudicate(true, false, || true), Decision::Confirmed);
/// assert_eq!(adjudicate(false, true, || false), Decision::Rejected);
/// ```
pub fn adjudicate(first: bool, second: bool, tie_breaker: impl FnOnce() -> bool) -> Decision {
    let verdict = if first == second {
        first
    } else {
        tie_breaker()
    };
    if verdict {
        Decision::Confirmed
    } else {
        Decision::Rejected
    }
}

/// Cohen's κ between two binary raters over the same candidates.
///
/// Returns `None` for empty input. κ = 1 means perfect agreement, 0
/// chance-level, negative worse than chance. When both raters are
/// constant and identical, agreement is perfect but chance agreement is
/// also 1; the conventional value 1.0 is returned.
#[must_use]
pub fn cohens_kappa(first: &[bool], second: &[bool]) -> Option<f64> {
    assert_eq!(first.len(), second.len(), "rater vectors differ in length");
    let n = first.len();
    if n == 0 {
        return None;
    }
    let nf = n as f64;
    let observed = first.iter().zip(second).filter(|(a, b)| a == b).count() as f64 / nf;
    let p_first = first.iter().filter(|&&v| v).count() as f64 / nf;
    let p_second = second.iter().filter(|&&v| v).count() as f64 / nf;
    let chance = p_first * p_second + (1.0 - p_first) * (1.0 - p_second);
    if (1.0 - chance).abs() < 1e-12 {
        // Degenerate: constant raters. Perfect observed agreement → 1.
        return Some(if (observed - 1.0).abs() < 1e-12 {
            1.0
        } else {
            0.0
        });
    }
    Some((observed - chance) / (1.0 - chance))
}

/// Batch-adjudicates candidates and summarizes the outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdjudicationSummary {
    /// Total candidates examined.
    pub total: usize,
    /// Candidates confirmed as anti-patterns.
    pub confirmed: usize,
    /// Candidates where the primary raters disagreed (tie-breaker used).
    pub disagreements: usize,
    /// Cohen's κ of the two primary raters (`None` for empty input).
    pub kappa: Option<f64>,
}

/// Runs the two-rater + tie-breaker protocol over a batch. `votes` holds
/// `(first, second, tie_breaker)` triples; the tie-breaker value is only
/// consulted on disagreement.
#[must_use]
pub fn adjudicate_batch(votes: &[(bool, bool, bool)]) -> AdjudicationSummary {
    let first: Vec<bool> = votes.iter().map(|v| v.0).collect();
    let second: Vec<bool> = votes.iter().map(|v| v.1).collect();
    let mut confirmed = 0;
    let mut disagreements = 0;
    for &(a, b, tie) in votes {
        if a != b {
            disagreements += 1;
        }
        if adjudicate(a, b, || tie) == Decision::Confirmed {
            confirmed += 1;
        }
    }
    AdjudicationSummary {
        total: votes.len(),
        confirmed,
        disagreements,
        kappa: cohens_kappa(&first, &second),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_breaker_only_called_on_disagreement() {
        let mut called = false;
        let _ = adjudicate(true, true, || {
            called = true;
            true
        });
        assert!(!called);
        let _ = adjudicate(true, false, || {
            called = true;
            false
        });
        assert!(called);
    }

    #[test]
    fn paper_candidate_flow() {
        // The paper: 5 individual candidates → 4 anti-patterns, 2
        // collective candidates → 2 anti-patterns. One individual
        // candidate is rejected.
        let votes = [
            (true, true, false),
            (true, true, false),
            (true, false, true), // disagreement, tie-breaker confirms
            (true, true, false),
            (false, false, true), // rejected outright
            // collective:
            (true, true, false),
            (true, true, false),
        ];
        let summary = adjudicate_batch(&votes);
        assert_eq!(summary.total, 7);
        assert_eq!(summary.confirmed, 6);
        assert_eq!(summary.disagreements, 1);
    }

    #[test]
    fn kappa_perfect_agreement() {
        let a = [true, false, true, false];
        assert!((cohens_kappa(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kappa_chance_level_is_zero() {
        // Independent raters each saying yes half the time, agreement
        // exactly at chance: p_o = 0.5, p_e = 0.5 → κ = 0.
        let first = [true, true, false, false];
        let second = [true, false, true, false];
        assert!(cohens_kappa(&first, &second).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kappa_disagreement_is_negative() {
        let first = [true, false, true, false];
        let second = [false, true, false, true];
        assert!(cohens_kappa(&first, &second).unwrap() < 0.0);
    }

    #[test]
    fn kappa_degenerate_constant_raters() {
        let first = [true, true, true];
        let second = [true, true, true];
        assert_eq!(cohens_kappa(&first, &second), Some(1.0));
    }

    #[test]
    fn kappa_empty_is_none() {
        assert_eq!(cohens_kappa(&[], &[]), None);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn kappa_rejects_mismatched_lengths() {
        let _ = cohens_kappa(&[true], &[]);
    }
}
