//! The shared input bundle detectors operate on.

use std::collections::HashMap;

use alertops_model::{Alert, AlertStrategy, DependencyGraph, Incident, StrategyId};

/// Everything a detector may need: the strategy catalog, the alert
/// history, the incident history, and the dependency graph. All fields
/// except the strategies are optional — detectors that need missing
/// evidence simply return no findings for it.
///
/// Construct with [`DetectionInput::new`] and chain `with_*` methods.
#[derive(Debug, Clone, Default)]
pub struct DetectionInput<'a> {
    strategies: &'a [AlertStrategy],
    alerts: &'a [Alert],
    incidents: &'a [Incident],
    graph: Option<&'a DependencyGraph>,
    by_strategy: HashMap<StrategyId, Vec<usize>>,
}

impl<'a> DetectionInput<'a> {
    /// Creates an input over a strategy catalog with no alert evidence.
    #[must_use]
    pub fn new(strategies: &'a [AlertStrategy]) -> Self {
        Self {
            strategies,
            alerts: &[],
            incidents: &[],
            graph: None,
            by_strategy: HashMap::new(),
        }
    }

    /// Attaches the alert history (and indexes it by strategy).
    #[must_use]
    pub fn with_alerts(mut self, alerts: &'a [Alert]) -> Self {
        self.alerts = alerts;
        self.by_strategy = HashMap::new();
        for (ix, alert) in alerts.iter().enumerate() {
            self.by_strategy
                .entry(alert.strategy())
                .or_default()
                .push(ix);
        }
        self
    }

    /// Attaches the incident history.
    #[must_use]
    pub fn with_incidents(mut self, incidents: &'a [Incident]) -> Self {
        self.incidents = incidents;
        self
    }

    /// Attaches the dependency graph (needed by the A6 detector).
    #[must_use]
    pub fn with_graph(mut self, graph: &'a DependencyGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The strategy catalog.
    #[must_use]
    pub fn strategies(&self) -> &'a [AlertStrategy] {
        self.strategies
    }

    /// The alert history.
    #[must_use]
    pub fn alerts(&self) -> &'a [Alert] {
        self.alerts
    }

    /// The incident history.
    #[must_use]
    pub fn incidents(&self) -> &'a [Incident] {
        self.incidents
    }

    /// The dependency graph, if attached.
    #[must_use]
    pub fn graph(&self) -> Option<&'a DependencyGraph> {
        self.graph
    }

    /// The alerts of one strategy, in stream order.
    pub fn alerts_of(&self, strategy: StrategyId) -> impl Iterator<Item = &'a Alert> + '_ {
        self.by_strategy
            .get(&strategy)
            .into_iter()
            .flatten()
            .map(|&ix| &self.alerts[ix])
    }

    /// Number of alerts recorded for `strategy`.
    #[must_use]
    pub fn alert_count_of(&self, strategy: StrategyId) -> usize {
        self.by_strategy.get(&strategy).map_or(0, Vec::len)
    }

    /// Whether any incident on `service` covered instant `t`.
    #[must_use]
    pub fn incident_active(
        &self,
        service: alertops_model::ServiceId,
        t: alertops_model::SimTime,
    ) -> bool {
        self.incidents
            .iter()
            .any(|inc| inc.service() == service && inc.covers(t))
    }

    /// Whether an alert at `t` on `service` indicates an incident: one
    /// was ongoing at `t`, or began within `lookahead` after it (alerts
    /// are early warnings by design).
    #[must_use]
    pub fn incident_indicated(
        &self,
        service: alertops_model::ServiceId,
        t: alertops_model::SimTime,
        lookahead: alertops_model::SimDuration,
    ) -> bool {
        self.incidents
            .iter()
            .any(|inc| inc.service() == service && inc.covers_or_follows(t, lookahead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{
        AlertId, IncidentId, LogRule, ServiceId, Severity, SimDuration, SimTime, StrategyKind,
    };

    fn strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("t")
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            }))
            .build()
            .unwrap()
    }

    fn alert(id: u64, strategy: u64, t: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(strategy))
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    #[test]
    fn indexes_alerts_by_strategy() {
        let strategies = [strategy(1), strategy(2)];
        let alerts = [alert(0, 1, 10), alert(1, 2, 20), alert(2, 1, 30)];
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        assert_eq!(input.alert_count_of(StrategyId(1)), 2);
        assert_eq!(input.alert_count_of(StrategyId(2)), 1);
        assert_eq!(input.alert_count_of(StrategyId(9)), 0);
        let times: Vec<u64> = input
            .alerts_of(StrategyId(1))
            .map(|a| a.raised_at().as_secs())
            .collect();
        assert_eq!(times, vec![10, 30]);
    }

    #[test]
    fn incident_activity_lookup() {
        let strategies = [strategy(1)];
        let mut incident = Incident::new(
            IncidentId(1),
            ServiceId(4),
            Severity::Critical,
            SimTime::from_secs(100),
        );
        incident.mitigate(SimTime::from_secs(200));
        let incidents = [incident];
        let input = DetectionInput::new(&strategies).with_incidents(&incidents);
        assert!(input.incident_active(ServiceId(4), SimTime::from_secs(150)));
        assert!(!input.incident_active(ServiceId(4), SimTime::from_secs(250)));
        assert!(!input.incident_active(ServiceId(5), SimTime::from_secs(150)));
    }

    #[test]
    fn empty_input_is_safe() {
        let strategies: [AlertStrategy; 0] = [];
        let input = DetectionInput::new(&strategies);
        assert!(input.alerts().is_empty());
        assert!(input.incidents().is_empty());
        assert!(input.graph().is_none());
        assert_eq!(input.alerts_of(StrategyId(1)).count(), 0);
    }
}
