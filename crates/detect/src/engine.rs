//! The incremental detection engine: per-window governance in
//! O(window), not O(history).
//!
//! The streaming governance loop used to flatten its entire rolling
//! history into a fresh `Vec<Alert>` and re-run every detector from
//! scratch on each ingested window — O(history × window) work plus full
//! reallocations per tick. [`IncrementalState`] replaces that with a
//! stateful engine exposing three operations:
//!
//! * [`observe_window`](IncrementalState::observe_window) — fold one
//!   window of alerts into per-strategy rolling aggregates, the storm
//!   region-hour histogram, and the cascade edge set, remembering a
//!   compact [`WindowDigest`] so the window can later be subtracted;
//! * [`evict_window`](IncrementalState::evict_window) — subtract the
//!   oldest window's digest from every aggregate (the *eviction
//!   algebra*: each aggregate is a multiset count, so subtraction is
//!   exact and order-independent);
//! * [`current_findings`](IncrementalState::current_findings) — produce
//!   an [`AntiPatternReport`] equal to running the batch detectors over
//!   the flattened surviving history, re-evaluating only strategies
//!   whose aggregates changed.
//!
//! # Exactness
//!
//! Every detector's scoring was refactored into a per-strategy
//! `evaluate_strategy` function of *aggregates* (counts, time
//! multisets, hour histograms); both the batch [`Detector`] passes and
//! this engine reduce a strategy's evidence to exactly those aggregates
//! and call the same function, so findings agree byte for byte. The
//! aggregates themselves are order-independent and support exact
//! subtraction, with empty entries removed eagerly so a long-lived
//! state is structurally identical to one freshly built from only the
//! surviving windows (the property suite asserts this).
//!
//! A1 (unclear title) depends only on the catalog; it is computed once
//! and re-derived only when the catalog changes. A2/A3 additionally
//! depend on the incident list, so their cached findings are
//! invalidated whenever the provided incidents differ from the previous
//! evaluation.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use alertops_model::{
    Alert, AlertId, AlertStrategy, Clearance, DependencyGraph, Incident, MicroserviceId, RegionId,
    ServiceId, SimDuration, SimTime, StrategyId,
};

use crate::a2_severity::{a2_transient_cutoff, SeverityEvidence};
use crate::a6_cascading::{CascadeGroup, CascadeState};
use crate::input::DetectionInput;
use crate::metrics::DetectMetrics;
use crate::report::AntiPatternReport;
use crate::types::{AntiPattern, Detector, StrategyFinding};
use crate::{
    CascadingDetector, ImproperRuleDetector, MisleadingSeverityDetector, RepeatingDetector,
    TransientTogglingDetector, UnclearTitleDetector,
};

/// A multiset of simulation instants: time → occurrence count.
///
/// The engine's basic aggregate. Order-independent (it's a map), and
/// subtractable: removing the same times that were added restores the
/// previous value exactly. Entries are dropped at count zero so two
/// multisets over the same surviving alerts always compare equal.
pub(crate) type TimeMultiset = BTreeMap<SimTime, usize>;

fn multiset_add(ms: &mut TimeMultiset, t: SimTime) {
    *ms.entry(t).or_insert(0) += 1;
}

fn multiset_sub(ms: &mut TimeMultiset, t: SimTime) {
    if let Some(count) = ms.get_mut(&t) {
        *count -= 1;
        if *count == 0 {
            ms.remove(&t);
        }
    }
}

/// Detector configurations the engine evaluates with. Defaults match
/// [`AntiPatternReport::run_default`], so an engine with a default
/// config reproduces the batch pipeline exactly.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// A1 — unclear title.
    pub a1: UnclearTitleDetector,
    /// A2 — misleading severity.
    pub a2: MisleadingSeverityDetector,
    /// A3 — improper/outdated rule.
    pub a3: ImproperRuleDetector,
    /// A4 — transient/toggling.
    pub a4: TransientTogglingDetector,
    /// A5 — repeating.
    pub a5: RepeatingDetector,
    /// A6 — cascading.
    pub a6: CascadingDetector,
}

/// One strategy's contribution to one window — everything eviction
/// needs to subtract the window from [`StrategyState`].
#[derive(Debug, Clone, Default, PartialEq)]
struct StrategyWindowDigest {
    /// Raise times of the strategy's alerts in the window.
    times: Vec<SimTime>,
    /// Raise times of the transient ones (A4's definition).
    transient_times: Vec<SimTime>,
    /// Alerts that auto-cleared.
    auto_cleared: usize,
    /// Alerts that auto-cleared within A2's transient cutoff.
    a2_transients: usize,
}

/// The compact per-window summary retained instead of cloned alerts.
#[derive(Debug, Clone, Default, PartialEq)]
struct WindowDigest {
    /// Alerts ingested in the window.
    alert_count: usize,
    /// Earliest raise time in the window, if any alerts.
    oldest: Option<SimTime>,
    /// Per-strategy slices of the window.
    per_strategy: BTreeMap<StrategyId, StrategyWindowDigest>,
    /// `(region, hour) → count` contribution to the storm histogram.
    region_hours: Vec<((RegionId, u64), usize)>,
    /// `(raise time, id, microservice)` of every alert, recorded only
    /// when a dependency graph was attached at observe time (the
    /// cascade state is maintained only then).
    cascade: Vec<(SimTime, AlertId, MicroserviceId)>,
}

/// Rolling aggregates for one strategy over the surviving windows.
#[derive(Debug, Clone, Default, PartialEq)]
struct StrategyState {
    /// Total in-scope alerts.
    total: usize,
    /// Raise-time multiset of every alert (drives A2/A3 incident
    /// co-occurrence counting).
    times: TimeMultiset,
    /// Raise-time multiset of A4-transient alerts.
    transient_times: TimeMultiset,
    /// Auto-cleared alerts.
    auto_cleared: usize,
    /// Auto-cleared within A2's transient cutoff.
    a2_transients: usize,
    /// Alerts per hour bucket (drives A5).
    hours: BTreeMap<u64, usize>,
}

/// Cached per-strategy findings of the four history-driven detectors.
#[derive(Debug, Clone, Default)]
struct CachedFindings {
    a2: Option<StrategyFinding>,
    a3: Option<StrategyFinding>,
    a4: Option<StrategyFinding>,
    a5: Option<StrategyFinding>,
}

/// The incremental detection engine. See the [module docs](self) for
/// the design; see `StreamingGovernor` in `alertops-core` for the
/// production driver.
///
/// Cloning the state clones the full rolling aggregates — this is what
/// the ingestion daemon's checkpointing relies on for crash recovery.
#[derive(Debug, Clone)]
pub struct IncrementalState {
    config: EngineConfig,
    /// Digests of the surviving windows, oldest first.
    windows: VecDeque<WindowDigest>,
    /// Total alerts across surviving windows (O(1) scope size).
    alerts_in_scope: usize,
    /// Per-strategy rolling aggregates; entries are removed when a
    /// strategy's last alert is evicted.
    per_strategy: BTreeMap<StrategyId, StrategyState>,
    /// The storm `(region, hour) → count` histogram, incrementally
    /// maintained; zero entries are removed.
    histogram: BTreeMap<(RegionId, u64), usize>,
    /// A6's alive-alert set and derivation edges.
    cascade: CascadeState,
    /// Strategies whose aggregates changed since the last evaluation.
    dirty: BTreeSet<StrategyId>,
    /// The catalog seen by the last evaluation (None before the first).
    catalog: Option<Vec<AlertStrategy>>,
    /// The incident list seen by the last evaluation.
    incidents_seen: Option<Vec<Incident>>,
    /// A1 findings for `catalog` (valid while the catalog is unchanged).
    a1_cache: Vec<StrategyFinding>,
    /// Cached A2–A5 findings per strategy with in-scope alerts.
    findings_cache: BTreeMap<StrategyId, CachedFindings>,
}

impl PartialEq for IncrementalState {
    /// Compares only the *rolling state* (window digests, per-strategy
    /// aggregates, histogram, cascade edges) — not evaluation caches,
    /// which legitimately differ between a long-lived state and a fresh
    /// rebuild until the next `current_findings` call.
    fn eq(&self, other: &Self) -> bool {
        self.windows == other.windows
            && self.alerts_in_scope == other.alerts_in_scope
            && self.per_strategy == other.per_strategy
            && self.histogram == other.histogram
            && self.cascade == other.cascade
    }
}

impl Default for IncrementalState {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl IncrementalState {
    /// Creates an empty engine with the given detector configurations.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            windows: VecDeque::new(),
            alerts_in_scope: 0,
            per_strategy: BTreeMap::new(),
            histogram: BTreeMap::new(),
            cascade: CascadeState::default(),
            dirty: BTreeSet::new(),
            catalog: None,
            incidents_seen: None,
            a1_cache: Vec::new(),
            findings_cache: BTreeMap::new(),
        }
    }

    /// The detector configurations.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Total alerts across the surviving windows — O(1).
    #[must_use]
    pub fn alert_count(&self) -> usize {
        self.alerts_in_scope
    }

    /// Number of surviving (observed but not evicted) windows.
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The earliest alert raise time still in scope, if any.
    #[must_use]
    pub fn oldest_alert_time(&self) -> Option<SimTime> {
        self.windows.iter().filter_map(|w| w.oldest).min()
    }

    /// The incrementally maintained storm `(region, hour) → count`
    /// histogram over the surviving windows. Identical to
    /// [`region_hour_histogram`](crate::region_hour_histogram) over the
    /// flattened scope.
    #[must_use]
    pub fn histogram(&self) -> &BTreeMap<(RegionId, u64), usize> {
        &self.histogram
    }

    /// Folds one window of alerts into the rolling aggregates —
    /// O(window), independent of how much history is in scope.
    ///
    /// Pass the dependency graph if (and only if) cascade detection is
    /// wanted; the cascade edge set is maintained only for windows
    /// observed with a graph. `metrics` times the apply under
    /// `alertops_engine_apply_micros` (observer-only).
    pub fn observe_window(
        &mut self,
        window: &[Alert],
        graph: Option<&DependencyGraph>,
        metrics: Option<&DetectMetrics>,
    ) {
        let _span = metrics.map(DetectMetrics::engine_apply_timer);
        let transient_cutoff = a2_transient_cutoff();
        let mut digest = WindowDigest {
            alert_count: window.len(),
            ..WindowDigest::default()
        };
        let mut region_hours: BTreeMap<(RegionId, u64), usize> = BTreeMap::new();
        for alert in window {
            let t = alert.raised_at();
            digest.oldest = Some(digest.oldest.map_or(t, |o| o.min(t)));
            let slice = digest.per_strategy.entry(alert.strategy()).or_default();
            slice.times.push(t);
            if self.config.a4.is_transient(alert) {
                slice.transient_times.push(t);
            }
            if alert.clearance() == Some(Clearance::Auto) {
                slice.auto_cleared += 1;
                if alert.duration().is_some_and(|d| d < transient_cutoff) {
                    slice.a2_transients += 1;
                }
            }
            *region_hours
                .entry((alert.location().region().clone(), alert.hour_bucket()))
                .or_insert(0) += 1;
            if graph.is_some() {
                digest.cascade.push((t, alert.id(), alert.microservice()));
            }
        }
        digest.region_hours = region_hours.into_iter().collect();

        // Apply the digest to the rolling aggregates.
        self.alerts_in_scope += digest.alert_count;
        for (&strategy, slice) in &digest.per_strategy {
            let state = self.per_strategy.entry(strategy).or_default();
            state.total += slice.times.len();
            for &t in &slice.times {
                multiset_add(&mut state.times, t);
                *state.hours.entry(t.hour_bucket()).or_insert(0) += 1;
            }
            for &t in &slice.transient_times {
                multiset_add(&mut state.transient_times, t);
            }
            state.auto_cleared += slice.auto_cleared;
            state.a2_transients += slice.a2_transients;
            self.dirty.insert(strategy);
        }
        for ((region, hour), count) in &digest.region_hours {
            *self.histogram.entry((region.clone(), *hour)).or_insert(0) += count;
        }
        if let Some(graph) = graph {
            for &(t, id, ms) in &digest.cascade {
                self.cascade.insert(t, id, ms, self.config.a6.window, graph);
            }
        }
        self.windows.push_back(digest);
    }

    /// Subtracts the oldest window from every aggregate and drops its
    /// digest. Returns the number of alerts evicted (0 when no window
    /// survives). `metrics` times the eviction under
    /// `alertops_engine_evict_micros`.
    pub fn evict_window(&mut self, metrics: Option<&DetectMetrics>) -> usize {
        let _span = metrics.map(DetectMetrics::engine_evict_timer);
        let Some(digest) = self.windows.pop_front() else {
            return 0;
        };
        self.alerts_in_scope -= digest.alert_count;
        for (strategy, slice) in digest.per_strategy {
            if let Some(state) = self.per_strategy.get_mut(&strategy) {
                state.total -= slice.times.len();
                for &t in &slice.times {
                    multiset_sub(&mut state.times, t);
                    if let Some(count) = state.hours.get_mut(&t.hour_bucket()) {
                        *count -= 1;
                        if *count == 0 {
                            state.hours.remove(&t.hour_bucket());
                        }
                    }
                }
                for &t in &slice.transient_times {
                    multiset_sub(&mut state.transient_times, t);
                }
                state.auto_cleared -= slice.auto_cleared;
                state.a2_transients -= slice.a2_transients;
                if state.total == 0 {
                    self.per_strategy.remove(&strategy);
                }
            }
            self.dirty.insert(strategy);
        }
        for ((region, hour), count) in digest.region_hours {
            if let Some(current) = self.histogram.get_mut(&(region.clone(), hour)) {
                *current -= count;
                if *current == 0 {
                    self.histogram.remove(&(region, hour));
                }
            }
        }
        for (t, id, _) in digest.cascade {
            self.cascade.remove(t, id);
        }
        digest.alert_count
    }

    /// Evaluates the current scope into an [`AntiPatternReport`] equal
    /// to running the batch detectors over the flattened surviving
    /// history with `strategies`, `incidents`, and `graph` attached.
    ///
    /// Only strategies whose aggregates changed since the last
    /// evaluation are re-scored; A1 is recomputed only when the catalog
    /// changes, and A2/A3 additionally when the incident list changes.
    /// Per-pattern wall time and finding counts are recorded into
    /// `metrics` exactly as the batch
    /// [`run_instrumented`](AntiPatternReport::run_instrumented) does.
    pub fn current_findings(
        &mut self,
        strategies: &[AlertStrategy],
        incidents: &[Incident],
        graph: Option<&DependencyGraph>,
        metrics: Option<&DetectMetrics>,
    ) -> AntiPatternReport {
        if let Some(m) = metrics {
            m.record_run(self.alerts_in_scope as u64);
        }
        let catalog_changed = self.catalog.as_deref() != Some(strategies);
        if catalog_changed {
            // Strategy attributes (severity, kind, service) feed every
            // evaluator: invalidate everything.
            self.dirty.extend(self.per_strategy.keys().copied());
        }
        let incidents_changed = self.incidents_seen.as_deref() != Some(incidents);

        let mut findings: BTreeMap<AntiPattern, Vec<StrategyFinding>> = BTreeMap::new();

        // A1 — pure function of the catalog.
        let a1 = {
            let _span = metrics.map(|m| m.detector_timer(AntiPattern::UnclearTitle));
            if catalog_changed {
                self.a1_cache = self.config.a1.detect(&DetectionInput::new(strategies));
            }
            self.a1_cache.clone()
        };
        if let Some(m) = metrics {
            m.record_findings(AntiPattern::UnclearTitle, a1.len() as u64);
        }
        findings.insert(AntiPattern::UnclearTitle, a1);

        let by_id: HashMap<StrategyId, &AlertStrategy> =
            strategies.iter().map(|s| (s.id(), s)).collect();
        // A2/A3 consume the incident list; a changed list invalidates
        // every strategy's cached finding for them.
        let stale_a23: Vec<StrategyId> = if incidents_changed {
            self.per_strategy
                .keys()
                .chain(self.dirty.iter())
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect()
        } else {
            self.dirty.iter().copied().collect()
        };
        let stale_a45: Vec<StrategyId> = self.dirty.iter().copied().collect();

        // A2 — misleading severity.
        {
            let _span = metrics.map(|m| m.detector_timer(AntiPattern::MisleadingSeverity));
            for &id in &stale_a23 {
                let finding = match (by_id.get(&id), self.per_strategy.get(&id)) {
                    (Some(strategy), Some(state)) => {
                        let evidence = SeverityEvidence {
                            total: state.total,
                            with_incident: with_incident(
                                &state.times,
                                strategy.service(),
                                incidents,
                                self.config.a2.incident_lookahead,
                            ),
                            auto_cleared: state.auto_cleared,
                            transients: state.a2_transients,
                        };
                        self.config.a2.evaluate_strategy(strategy, &evidence)
                    }
                    _ => None,
                };
                self.store_finding(id, |cache| cache.a2 = finding);
            }
        }
        self.publish(
            AntiPattern::MisleadingSeverity,
            &mut findings,
            metrics,
            |c| c.a2.clone(),
        );

        // A3 — improper rule.
        {
            let _span = metrics.map(|m| m.detector_timer(AntiPattern::ImproperRule));
            for &id in &stale_a23 {
                let finding = match (by_id.get(&id), self.per_strategy.get(&id)) {
                    (Some(strategy), Some(state)) => self.config.a3.evaluate_strategy(
                        strategy,
                        state.total,
                        with_incident(
                            &state.times,
                            strategy.service(),
                            incidents,
                            self.config.a3.incident_lookahead,
                        ),
                    ),
                    _ => None,
                };
                self.store_finding(id, |cache| cache.a3 = finding);
            }
        }
        self.publish(AntiPattern::ImproperRule, &mut findings, metrics, |c| {
            c.a3.clone()
        });

        // A4 — transient/toggling.
        {
            let _span = metrics.map(|m| m.detector_timer(AntiPattern::TransientToggling));
            for &id in &stale_a45 {
                let finding = match (by_id.get(&id), self.per_strategy.get(&id)) {
                    (Some(_), Some(state)) => {
                        self.config
                            .a4
                            .evaluate_strategy(id, state.total, &state.transient_times)
                    }
                    _ => None,
                };
                self.store_finding(id, |cache| cache.a4 = finding);
            }
        }
        self.publish(
            AntiPattern::TransientToggling,
            &mut findings,
            metrics,
            |c| c.a4.clone(),
        );

        // A5 — repeating.
        {
            let _span = metrics.map(|m| m.detector_timer(AntiPattern::Repeating));
            for &id in &stale_a45 {
                let finding = match (by_id.get(&id), self.per_strategy.get(&id)) {
                    (Some(_), Some(state)) => {
                        self.config
                            .a5
                            .evaluate_strategy(id, state.total, &state.hours)
                    }
                    _ => None,
                };
                self.store_finding(id, |cache| cache.a5 = finding);
            }
        }
        self.publish(AntiPattern::Repeating, &mut findings, metrics, |c| {
            c.a5.clone()
        });

        // A6 — cascades come straight off the maintained edge set.
        let cascades: Vec<CascadeGroup> = {
            let _span = metrics.map(|m| m.detector_timer(AntiPattern::Cascading));
            let min_group = self.config.a6.min_group;
            match graph {
                Some(graph) => self.cascade.groups(min_group, graph),
                None => Vec::new(),
            }
        };
        if let Some(m) = metrics {
            m.record_findings(AntiPattern::Cascading, cascades.len() as u64);
        }

        self.dirty.clear();
        if catalog_changed {
            self.catalog = Some(strategies.to_vec());
        }
        if incidents_changed {
            self.incidents_seen = Some(incidents.to_vec());
        }
        AntiPatternReport { findings, cascades }
    }

    /// Stores one recomputed per-strategy finding, dropping the cache
    /// entry entirely when the strategy no longer has in-scope alerts
    /// (keeps the cache congruent with `per_strategy`).
    fn store_finding(&mut self, id: StrategyId, write: impl FnOnce(&mut CachedFindings)) {
        if self.per_strategy.contains_key(&id) {
            write(self.findings_cache.entry(id).or_default());
        } else {
            self.findings_cache.remove(&id);
        }
    }

    /// Collects one pattern's cached findings, sorts them with the
    /// detectors' shared comparator (score descending, then strategy),
    /// records the count, and files them under `pattern`.
    fn publish(
        &self,
        pattern: AntiPattern,
        findings: &mut BTreeMap<AntiPattern, Vec<StrategyFinding>>,
        metrics: Option<&DetectMetrics>,
        select: impl Fn(&CachedFindings) -> Option<StrategyFinding>,
    ) {
        let mut found: Vec<StrategyFinding> =
            self.findings_cache.values().filter_map(select).collect();
        found.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.strategy.cmp(&b.strategy))
        });
        if let Some(m) = metrics {
            m.record_findings(pattern, found.len() as u64);
        }
        findings.insert(pattern, found);
    }
}

/// How many occurrences in `times` indicated an incident on `service`
/// (one was ongoing, or began within `lookahead` after the instant) —
/// the shared co-occurrence count behind A2 and A3.
fn with_incident(
    times: &TimeMultiset,
    service: ServiceId,
    incidents: &[Incident],
    lookahead: SimDuration,
) -> usize {
    times
        .iter()
        .filter(|(&t, _)| {
            incidents
                .iter()
                .any(|inc| inc.service() == service && inc.covers_or_follows(t, lookahead))
        })
        .map(|(_, &count)| count)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{LogRule, StrategyKind};

    fn strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("haproxy process number warning")
            .kind(StrategyKind::Log(LogRule {
                keyword: "WARN".into(),
                min_count: 1,
                window: SimDuration::from_mins(5),
            }))
            .build()
            .unwrap()
    }

    fn alert(id: u64, strategy: u64, t: u64) -> Alert {
        let mut a = Alert::builder(AlertId(id), StrategyId(strategy))
            .raised_at(SimTime::from_secs(t))
            .build();
        a.clear(SimTime::from_secs(t + 30), Clearance::Auto)
            .unwrap();
        a
    }

    fn windows() -> Vec<Vec<Alert>> {
        (0..4u64)
            .map(|w| {
                (0..6u64)
                    .map(|i| alert(w * 100 + i, 1 + (i % 2), w * 3_600 + i * 300))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batch_and_engine_reports_agree() {
        let strategies = vec![strategy(1), strategy(2)];
        let scope: Vec<Alert> = windows().concat();
        let input = DetectionInput::new(&strategies).with_alerts(&scope);
        let batch = AntiPatternReport::run_default(&input);
        let mut engine = IncrementalState::default();
        engine.observe_window(&scope, None, None);
        let incremental = engine.current_findings(&strategies, &[], None, None);
        assert_eq!(batch, incremental);
    }

    #[test]
    fn eviction_restores_fresh_state() {
        let ws = windows();
        let mut engine = IncrementalState::default();
        for w in &ws {
            engine.observe_window(w, None, None);
        }
        engine.evict_window(None);
        engine.evict_window(None);
        let mut fresh = IncrementalState::default();
        for w in &ws[2..] {
            fresh.observe_window(w, None, None);
        }
        assert_eq!(engine, fresh);
        assert_eq!(engine.alert_count(), fresh.alert_count());
        assert_eq!(engine.oldest_alert_time(), fresh.oldest_alert_time());
    }

    #[test]
    fn evicting_everything_leaves_an_empty_state() {
        let ws = windows();
        let mut engine = IncrementalState::default();
        for w in &ws {
            engine.observe_window(w, None, None);
        }
        while engine.window_count() > 0 {
            engine.evict_window(None);
        }
        assert_eq!(engine, IncrementalState::default());
        assert_eq!(engine.alert_count(), 0);
        assert!(engine.histogram().is_empty());
        assert_eq!(engine.oldest_alert_time(), None);
    }

    #[test]
    fn findings_cache_tracks_evictions() {
        let strategies = vec![strategy(1), strategy(2)];
        let ws = windows();
        let mut engine = IncrementalState::default();
        for w in &ws {
            engine.observe_window(w, None, None);
        }
        let before = engine.current_findings(&strategies, &[], None, None);
        // Evict everything: findings must clear (evidence gone).
        for _ in 0..ws.len() {
            engine.evict_window(None);
        }
        let after = engine.current_findings(&strategies, &[], None, None);
        assert!(before.finding_count() > 0, "{before}");
        assert_eq!(
            after.finding_count(),
            0,
            "no evidence may survive full eviction: {after}"
        );
    }

    #[test]
    fn evict_on_empty_engine_is_a_noop() {
        let mut engine = IncrementalState::default();
        assert_eq!(engine.evict_window(None), 0);
        assert_eq!(engine, IncrementalState::default());
    }
}
