//! Shared detector types.

use std::fmt;

use serde::{Deserialize, Serialize};

use alertops_model::StrategyId;

use crate::input::DetectionInput;

/// The six anti-patterns of alerts (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AntiPattern {
    /// A1 — unclear name or description.
    UnclearTitle,
    /// A2 — misleading severity.
    MisleadingSeverity,
    /// A3 — improper and outdated generation rule.
    ImproperRule,
    /// A4 — transient and toggling alerts.
    TransientToggling,
    /// A5 — repeating alerts.
    Repeating,
    /// A6 — cascading alerts.
    Cascading,
}

impl AntiPattern {
    /// All anti-patterns, A1..A6.
    pub const ALL: [AntiPattern; 6] = [
        AntiPattern::UnclearTitle,
        AntiPattern::MisleadingSeverity,
        AntiPattern::ImproperRule,
        AntiPattern::TransientToggling,
        AntiPattern::Repeating,
        AntiPattern::Cascading,
    ];

    /// The paper's identifier, e.g. `"A1"`.
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            AntiPattern::UnclearTitle => "A1",
            AntiPattern::MisleadingSeverity => "A2",
            AntiPattern::ImproperRule => "A3",
            AntiPattern::TransientToggling => "A4",
            AntiPattern::Repeating => "A5",
            AntiPattern::Cascading => "A6",
        }
    }

    /// Whether this is an *individual* anti-pattern (a property of one
    /// strategy) rather than a *collective* one (a property of a bunch of
    /// alerts).
    #[must_use]
    pub const fn is_individual(self) -> bool {
        matches!(
            self,
            AntiPattern::UnclearTitle
                | AntiPattern::MisleadingSeverity
                | AntiPattern::ImproperRule
                | AntiPattern::TransientToggling
        )
    }

    /// The paper's name for the anti-pattern.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AntiPattern::UnclearTitle => "Unclear Name or Description",
            AntiPattern::MisleadingSeverity => "Misleading Severity",
            AntiPattern::ImproperRule => "Improper and Outdated Generation Rule",
            AntiPattern::TransientToggling => "Transient and Toggling Alerts",
            AntiPattern::Repeating => "Repeating Alerts",
            AntiPattern::Cascading => "Cascading Alerts",
        }
    }
}

impl fmt::Display for AntiPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code(), self.name())
    }
}

/// A per-strategy detection result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyFinding {
    /// The flagged strategy.
    pub strategy: StrategyId,
    /// Which anti-pattern was detected.
    pub pattern: AntiPattern,
    /// Detector-specific confidence/severity score, higher = worse.
    pub score: f64,
    /// Human-readable evidence ("title scored 0.12; vague words: ...").
    pub evidence: String,
}

impl fmt::Display for StrategyFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} (score {:.2}): {}",
            self.pattern.code(),
            self.strategy,
            self.score,
            self.evidence
        )
    }
}

/// A detector of per-strategy anti-patterns.
///
/// Implementations examine a [`DetectionInput`] and return one finding
/// per flagged strategy, sorted by descending score. The cascading
/// detector (A6) does not fit this shape — its findings are groups of
/// alerts, not strategies — and exposes its own entry point instead.
pub trait Detector {
    /// Which anti-pattern this detector targets.
    fn pattern(&self) -> AntiPattern;

    /// Runs detection over the input.
    fn detect(&self, input: &DetectionInput<'_>) -> Vec<StrategyFinding>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_partition() {
        assert_eq!(AntiPattern::UnclearTitle.code(), "A1");
        assert_eq!(AntiPattern::Cascading.code(), "A6");
        let individual = AntiPattern::ALL
            .iter()
            .filter(|p| p.is_individual())
            .count();
        assert_eq!(individual, 4);
    }

    #[test]
    fn display_includes_code_and_name() {
        let s = AntiPattern::TransientToggling.to_string();
        assert!(s.contains("A4"));
        assert!(s.contains("Transient"));
    }

    #[test]
    fn finding_display() {
        let f = StrategyFinding {
            strategy: StrategyId(3),
            pattern: AntiPattern::Repeating,
            score: 12.0,
            evidence: "peaked at 12 alerts/hour".into(),
        };
        let s = f.to_string();
        assert!(s.contains("A5"));
        assert!(s.contains("strategy-3"));
        assert!(s.contains("12 alerts/hour"));
    }
}
