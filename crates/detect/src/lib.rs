//! Detectors for the six anti-patterns of alerts (DSN'22, RQ1).
//!
//! The paper characterizes six anti-patterns from 4M+ production alerts:
//!
//! | Id | Anti-pattern | Detector |
//! |----|--------------|----------|
//! | A1 | Unclear name or description | [`UnclearTitleDetector`] |
//! | A2 | Misleading severity | [`MisleadingSeverityDetector`] |
//! | A3 | Improper / outdated generation rule | [`ImproperRuleDetector`] |
//! | A4 | Transient and toggling alerts | [`TransientTogglingDetector`] |
//! | A5 | Repeating alerts | [`RepeatingDetector`] |
//! | A6 | Cascading alerts | [`CascadingDetector`] |
//!
//! It also describes the **mining methodology** that surfaced them, which
//! this crate reproduces faithfully:
//!
//! * [`candidates`] — strategies in the top 30% of average processing
//!   time become candidates of *individual* anti-patterns; region-hours
//!   with more than 200 alerts become candidates of *collective* ones;
//! * [`storm`] — alert-storm detection (>100 alerts per region-hour,
//!   consecutive storm hours merged);
//! * [`adjudication`] — the two-OCE agreement protocol (third opinion on
//!   disagreement) plus Cohen's κ;
//! * [`report`] — aggregation and precision/recall scoring against a
//!   known ground truth.
//!
//! # Example
//!
//! ```
//! use alertops_detect::{DetectionInput, Detector, UnclearTitleDetector};
//! use alertops_model::{AlertStrategy, LogRule, Severity, SimDuration, StrategyId, StrategyKind};
//!
//! # fn main() -> Result<(), alertops_model::ModelError> {
//! let vague = AlertStrategy::builder(StrategyId(0))
//!     .title_template("Instance x is abnormal")
//!     .kind(StrategyKind::Log(LogRule {
//!         keyword: "ERROR".into(),
//!         min_count: 5,
//!         window: SimDuration::from_mins(2),
//!     }))
//!     .build()?;
//! let strategies = [vague];
//! let input = DetectionInput::new(&strategies);
//! let findings = UnclearTitleDetector::default().detect(&input);
//! assert_eq!(findings.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adjudication;
pub mod candidates;
pub mod metrics;
pub mod report;
pub mod storm;

mod a1_unclear;
mod a2_severity;
mod a3_improper;
mod a4_transient;
mod a5_repeating;
mod a6_cascading;
mod engine;
mod input;
mod types;

pub use a1_unclear::UnclearTitleDetector;
pub use a2_severity::MisleadingSeverityDetector;
pub use a3_improper::ImproperRuleDetector;
pub use a4_transient::TransientTogglingDetector;
pub use a5_repeating::RepeatingDetector;
pub use a6_cascading::{CascadeGroup, CascadingDetector};
pub use engine::{EngineConfig, IncrementalState};
pub use input::DetectionInput;
pub use metrics::DetectMetrics;
pub use report::{evaluate_sets, AntiPatternReport, PrecisionRecall};
pub use storm::{region_hour_histogram, storms_from_histogram, AlertStorm, StormConfig};
pub use types::{AntiPattern, Detector, StrategyFinding};
