//! Alert-storm detection.
//!
//! "In this study, if the number of alerts from a region exceeds 100 in
//! an hour, we count it as an alert storm. Consecutive hours of alert
//! storm will be merged into one" (§III-A2). Both rules are implemented
//! verbatim.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, RegionId, TimeRange};

/// Configuration for [`detect_storms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormConfig {
    /// Alerts per region-hour above which the hour is a storm hour
    /// (the paper: 100; strict `>` comparison).
    pub hourly_threshold: usize,
}

impl Default for StormConfig {
    fn default() -> Self {
        Self {
            hourly_threshold: 100,
        }
    }
}

/// One detected alert storm: a maximal run of consecutive storm hours in
/// one region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertStorm {
    /// The affected region.
    pub region: RegionId,
    /// The merged `[first storm hour, last storm hour + 1)` span.
    pub window: TimeRange,
    /// Hour buckets belonging to the storm, ascending and consecutive.
    pub hours: Vec<u64>,
    /// Total alerts across the storm hours.
    pub total_alerts: usize,
    /// The peak single-hour alert count.
    pub peak_hourly: usize,
}

impl AlertStorm {
    /// Storm length in hours.
    #[must_use]
    pub fn duration_hours(&self) -> usize {
        self.hours.len()
    }
}

/// Detects alert storms in a stream: groups alerts per `(region, hour)`,
/// keeps hours whose count exceeds the threshold, and merges consecutive
/// storm hours per region. Returned storms are sorted by start time then
/// region.
#[must_use]
pub fn detect_storms(alerts: &[Alert], config: &StormConfig) -> Vec<AlertStorm> {
    storms_from_histogram(region_hour_histogram(alerts), config)
}

/// Groups alerts into the `(region, hour) → count` histogram storm
/// detection runs on. Histograms from disjoint alert subsets can be
/// summed key-wise and fed to [`storms_from_histogram`] to get exactly
/// the storms of the combined stream — this is what lets a sharded
/// ingester compute global storm state without reassembling alerts.
#[must_use]
pub fn region_hour_histogram(alerts: &[Alert]) -> BTreeMap<(RegionId, u64), usize> {
    let mut counts: BTreeMap<(RegionId, u64), usize> = BTreeMap::new();
    for alert in alerts {
        *counts
            .entry((alert.location().region().clone(), alert.hour_bucket()))
            .or_insert(0) += 1;
    }
    counts
}

/// Storm detection over a pre-computed `(region, hour)` histogram: keeps
/// hours whose count exceeds the threshold and merges consecutive storm
/// hours per region (see [`detect_storms`]).
#[must_use]
pub fn storms_from_histogram(
    counts: BTreeMap<(RegionId, u64), usize>,
    config: &StormConfig,
) -> Vec<AlertStorm> {
    // Per region, the sorted list of storm hours (BTreeMap keys are
    // already sorted by (region, hour)).
    let mut storms = Vec::new();
    let mut current: Option<AlertStorm> = None;
    for ((region, hour), count) in counts {
        if count <= config.hourly_threshold {
            continue;
        }
        match current.take() {
            Some(mut storm)
                if storm.region == region && storm.hours.last() == Some(&(hour - 1)) =>
            {
                storm.hours.push(hour);
                storm.total_alerts += count;
                storm.peak_hourly = storm.peak_hourly.max(count);
                storm.window = storm.window.merge(&TimeRange::hour(hour));
                current = Some(storm);
            }
            other => {
                if let Some(done) = other {
                    storms.push(done);
                }
                current = Some(AlertStorm {
                    region,
                    window: TimeRange::hour(hour),
                    hours: vec![hour],
                    total_alerts: count,
                    peak_hourly: count,
                });
            }
        }
    }
    if let Some(done) = current {
        storms.push(done);
    }
    storms.sort_by(|a, b| {
        a.window
            .start()
            .cmp(&b.window.start())
            .then_with(|| a.region.cmp(&b.region))
    });
    storms
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, Location, SimTime, StrategyId};

    /// `n` alerts in `region` during hour `hour`.
    fn burst(region: &str, hour: u64, n: usize, start_id: u64) -> Vec<Alert> {
        (0..n)
            .map(|i| {
                Alert::builder(AlertId(start_id + i as u64), StrategyId(0))
                    .location(Location::new(region, "dc-1"))
                    .raised_at(SimTime::from_secs(hour * 3_600 + i as u64 % 3_600))
                    .build()
            })
            .collect()
    }

    #[test]
    fn threshold_is_strictly_greater() {
        let config = StormConfig::default();
        let exactly_100 = burst("r1", 5, 100, 0);
        assert!(detect_storms(&exactly_100, &config).is_empty());
        let over = burst("r1", 5, 101, 0);
        let storms = detect_storms(&over, &config);
        assert_eq!(storms.len(), 1);
        assert_eq!(storms[0].total_alerts, 101);
    }

    #[test]
    fn consecutive_hours_merge() {
        let mut alerts = burst("r1", 7, 150, 0);
        alerts.extend(burst("r1", 8, 200, 1_000));
        alerts.extend(burst("r1", 9, 120, 2_000));
        let storms = detect_storms(&alerts, &StormConfig::default());
        assert_eq!(storms.len(), 1);
        let storm = &storms[0];
        assert_eq!(storm.hours, vec![7, 8, 9]);
        assert_eq!(storm.duration_hours(), 3);
        assert_eq!(storm.total_alerts, 470);
        assert_eq!(storm.peak_hourly, 200);
        assert_eq!(storm.window.start(), SimTime::from_hours(7));
        assert_eq!(storm.window.end(), SimTime::from_hours(10));
    }

    #[test]
    fn gap_splits_storms() {
        let mut alerts = burst("r1", 7, 150, 0);
        alerts.extend(burst("r1", 9, 150, 1_000)); // hour 8 calm
        let storms = detect_storms(&alerts, &StormConfig::default());
        assert_eq!(storms.len(), 2);
        assert_eq!(storms[0].hours, vec![7]);
        assert_eq!(storms[1].hours, vec![9]);
    }

    #[test]
    fn regions_are_independent() {
        let mut alerts = burst("r1", 7, 150, 0);
        alerts.extend(burst("r2", 8, 150, 1_000));
        let storms = detect_storms(&alerts, &StormConfig::default());
        assert_eq!(storms.len(), 2);
        assert_eq!(storms[0].region, RegionId::new("r1"));
        assert_eq!(storms[1].region, RegionId::new("r2"));
    }

    #[test]
    fn same_hour_different_regions_do_not_merge() {
        let mut alerts = burst("r1", 7, 150, 0);
        alerts.extend(burst("r2", 7, 150, 1_000));
        let storms = detect_storms(&alerts, &StormConfig::default());
        assert_eq!(storms.len(), 2);
    }

    #[test]
    fn sub_threshold_traffic_is_ignored_entirely() {
        let mut alerts = Vec::new();
        for hour in 0..48 {
            alerts.extend(burst("r1", hour, 20, hour * 100));
        }
        assert!(detect_storms(&alerts, &StormConfig::default()).is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(detect_storms(&[], &StormConfig::default()).is_empty());
    }

    #[test]
    fn storms_are_disjoint_and_ordered() {
        let mut alerts = Vec::new();
        for &h in &[3u64, 4, 10, 20, 21, 22] {
            alerts.extend(burst("r1", h, 150, h * 1_000));
        }
        let storms = detect_storms(&alerts, &StormConfig::default());
        assert_eq!(storms.len(), 3);
        for pair in storms.windows(2) {
            assert!(!pair[0].window.overlaps(&pair[1].window));
            assert!(pair[0].window.end() <= pair[1].window.start());
        }
    }
}
