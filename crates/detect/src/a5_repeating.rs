//! A5 — repeating alerts.
//!
//! "Repeating alerts means that alerts from the same alert strategy
//! appear repeatedly. Sometimes the repeated alerts may last for several
//! hours. This is usually due to the inappropriate frequency of alert
//! generation" (§III-A2). In the paper's Fig. 3 storm, a single
//! WARNING-level strategy ("haproxy process number warning") produced
//! ≈30% of the 2751 alerts, hour after hour.
//!
//! The detector flags strategies by hourly volume: a strategy repeats if
//! its alert count reaches `hourly_threshold` in at least
//! `min_repeat_hours` (possibly non-consecutive) hours.

use std::collections::BTreeMap;

use alertops_model::StrategyId;

use crate::input::DetectionInput;
use crate::types::{AntiPattern, Detector, StrategyFinding};

/// Detector for repeating alerts.
#[derive(Debug, Clone)]
pub struct RepeatingDetector {
    /// Alerts per hour from one strategy that count as "repeating".
    pub hourly_threshold: usize,
    /// How many such hours are required to flag the strategy.
    pub min_repeat_hours: usize,
    /// Distinct active hours for the sustained-repetition signature.
    pub min_active_hours: usize,
    /// Minimum total alerts for the sustained-repetition signature.
    pub min_sustained_total: usize,
    /// Span (in hours) within which the sustained signature must occur.
    pub sustained_span_hours: u64,
}

impl Default for RepeatingDetector {
    fn default() -> Self {
        Self {
            hourly_threshold: 18,
            min_repeat_hours: 2,
            min_active_hours: 12,
            min_sustained_total: 24,
            sustained_span_hours: 24,
        }
    }
}

impl RepeatingDetector {
    /// Evaluates one strategy from its rolling aggregates: `total`
    /// in-scope alerts bucketed into the `per_hour` histogram. The
    /// single scoring formula shared by the batch [`Detector`] pass and
    /// the incremental engine ([`crate::IncrementalState`]).
    pub(crate) fn evaluate_strategy(
        &self,
        strategy: StrategyId,
        total: usize,
        per_hour: &BTreeMap<u64, usize>,
    ) -> Option<StrategyFinding> {
        if total < self.hourly_threshold && total < self.min_sustained_total {
            return None;
        }
        let repeat_hours = per_hour
            .values()
            .filter(|&&c| c >= self.hourly_threshold)
            .count();
        let peak = per_hour.values().copied().max().unwrap_or(0);
        let burst = repeat_hours >= self.min_repeat_hours;
        // Sustained: sliding 24h span over the sorted hour buckets.
        let sustained = {
            let hours: Vec<(u64, usize)> = per_hour.iter().map(|(&h, &c)| (h, c)).collect();
            let mut best = false;
            let mut lo = 0;
            let mut span_alerts = 0usize;
            for hi in 0..hours.len() {
                span_alerts += hours[hi].1;
                while hours[hi].0 - hours[lo].0 >= self.sustained_span_hours {
                    span_alerts -= hours[lo].1;
                    lo += 1;
                }
                if hi - lo + 1 >= self.min_active_hours && span_alerts >= self.min_sustained_total {
                    best = true;
                    break;
                }
            }
            best
        };
        if !(burst || sustained) {
            return None;
        }
        Some(StrategyFinding {
            strategy,
            pattern: AntiPattern::Repeating,
            score: peak as f64 + repeat_hours as f64 + per_hour.len() as f64 * 0.1,
            evidence: if burst {
                format!(
                    "reached ≥{}/hour in {} hours (peak {}/hour, {} total alerts)",
                    self.hourly_threshold, repeat_hours, peak, total,
                )
            } else {
                format!(
                    "fired in {} distinct hours ({} total alerts, peak {}/hour)",
                    per_hour.len(),
                    total,
                    peak,
                )
            },
        })
    }
}

impl Detector for RepeatingDetector {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::Repeating
    }

    fn detect(&self, input: &DetectionInput<'_>) -> Vec<StrategyFinding> {
        let mut findings = Vec::new();
        for strategy in input.strategies() {
            let total = input.alert_count_of(strategy.id());
            let mut per_hour: BTreeMap<u64, usize> = BTreeMap::new();
            for alert in input.alerts_of(strategy.id()) {
                *per_hour.entry(alert.hour_bucket()).or_insert(0) += 1;
            }
            if let Some(finding) = self.evaluate_strategy(strategy.id(), total, &per_hour) {
                findings.push(finding);
            }
        }
        findings.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.strategy.cmp(&b.strategy))
        });
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{
        Alert, AlertId, AlertStrategy, LogRule, SimDuration, SimTime, StrategyId, StrategyKind,
    };

    fn strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("haproxy process number warning")
            .kind(StrategyKind::Log(LogRule {
                keyword: "WARN".into(),
                min_count: 1,
                window: SimDuration::from_mins(5),
            }))
            .build()
            .unwrap()
    }

    /// `n` alerts of `strategy` inside hour `hour`.
    fn hour_of_alerts(start_id: u64, strategy: u64, hour: u64, n: usize) -> Vec<Alert> {
        (0..n)
            .map(|i| {
                Alert::builder(AlertId(start_id + i as u64), StrategyId(strategy))
                    .raised_at(SimTime::from_secs(
                        hour * 3_600 + (i as u64 * 3_600 / n as u64),
                    ))
                    .build()
            })
            .collect()
    }

    #[test]
    fn flags_strategy_repeating_across_hours() {
        let strategies = [strategy(1)];
        let mut alerts = hour_of_alerts(0, 1, 7, 22);
        alerts.extend(hour_of_alerts(100, 1, 8, 19));
        alerts.extend(hour_of_alerts(200, 1, 9, 18));
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = RepeatingDetector::default().detect(&input);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].evidence.contains("3 hours"));
        assert!(findings[0].evidence.contains("peak 22/hour"));
    }

    #[test]
    fn one_busy_hour_is_not_repeating_by_default() {
        let strategies = [strategy(1)];
        let alerts = hour_of_alerts(0, 1, 7, 30);
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = RepeatingDetector::default().detect(&input);
        assert!(findings.is_empty(), "needs min_repeat_hours hours");
        // But with min_repeat_hours = 1 it is flagged.
        let findings = RepeatingDetector {
            min_repeat_hours: 1,
            ..RepeatingDetector::default()
        }
        .detect(&input);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn sparse_strategies_not_flagged() {
        let strategies = [strategy(1)];
        // 20 alerts in 20 hours: many hours but below the sustained total.
        let alerts: Vec<Alert> = (0..20)
            .map(|i| {
                Alert::builder(AlertId(i), StrategyId(1))
                    .raised_at(SimTime::from_hours(i)) // 1 per hour
                    .build()
            })
            .collect();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = RepeatingDetector::default().detect(&input);
        assert!(findings.is_empty());
    }

    #[test]
    fn sustained_low_rate_repetition_is_flagged() {
        let strategies = [strategy(1)];
        // 2 alerts per hour across 15 hours = 30 alerts: never bursts,
        // but repeats for hours.
        let mut alerts = Vec::new();
        for h in 0..15u64 {
            alerts.extend(hour_of_alerts(h * 10, 1, h, 2));
        }
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = RepeatingDetector::default().detect(&input);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].evidence.contains("distinct hours"));
    }

    #[test]
    fn the_same_volume_spread_over_weeks_is_not_repeating() {
        let strategies = [strategy(1)];
        // 30 alerts across 15 *days* (2 per day): background, not
        // repetition — no 24h span concentrates the activity.
        let mut alerts = Vec::new();
        for d in 0..15u64 {
            alerts.extend(hour_of_alerts(d * 10, 1, d * 24, 1));
            alerts.extend(hour_of_alerts(d * 10 + 5, 1, d * 24 + 9, 1));
        }
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = RepeatingDetector::default().detect(&input);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn heavier_repeaters_rank_first() {
        let strategies = [strategy(1), strategy(2)];
        let mut alerts = hour_of_alerts(0, 1, 7, 30);
        alerts.extend(hour_of_alerts(100, 1, 8, 30));
        alerts.extend(hour_of_alerts(200, 2, 7, 19));
        alerts.extend(hour_of_alerts(300, 2, 8, 19));
        alerts.sort_by_key(Alert::raised_at);
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let findings = RepeatingDetector::default().detect(&input);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].strategy, StrategyId(1));
    }

    #[test]
    fn no_alerts_no_findings() {
        let strategies = [strategy(1)];
        let input = DetectionInput::new(&strategies);
        assert!(RepeatingDetector::default().detect(&input).is_empty());
    }
}
