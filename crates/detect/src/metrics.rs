//! Detection-pipeline metrics.
//!
//! [`DetectMetrics`] is a bundle of pre-registered handles into an
//! [`alertops_obs::MetricsRegistry`]: one wall-time histogram and one
//! findings counter per anti-pattern, plus run/scan totals. Handles are
//! registered once and cached, so recording from
//! [`AntiPatternReport::run_instrumented`](crate::AntiPatternReport::run_instrumented)
//! is pure relaxed-atomic work — detection output is identical with or
//! without metrics attached (the property suite asserts this).

use std::sync::Arc;

use alertops_obs::{Counter, Histogram, MetricsRegistry, Span};

use crate::types::AntiPattern;

/// Cached metric handles for the anti-pattern detectors.
#[derive(Debug, Clone)]
pub struct DetectMetrics {
    /// Per-pattern detector wall time, aligned with [`AntiPattern::ALL`].
    detector_micros: [Arc<Histogram>; 6],
    /// Per-pattern findings emitted, aligned with [`AntiPattern::ALL`].
    detector_findings: [Arc<Counter>; 6],
    /// Detection runs started.
    runs: Arc<Counter>,
    /// Alerts visible to the detectors, summed over runs.
    alerts_scanned: Arc<Counter>,
    /// Incremental-engine window-apply wall time.
    engine_apply_micros: Arc<Histogram>,
    /// Incremental-engine window-evict wall time.
    engine_evict_micros: Arc<Histogram>,
}

impl DetectMetrics {
    /// Registers (or re-attaches to) the detect metric families.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        let detector_micros = AntiPattern::ALL.map(|p| {
            registry.histogram(
                "alertops_detector_micros",
                "Wall time of one detector pass, by anti-pattern.",
                &[("pattern", p.code())],
            )
        });
        let detector_findings = AntiPattern::ALL.map(|p| {
            registry.counter(
                "alertops_detector_findings_total",
                "Findings (strategies or cascade groups) emitted, by anti-pattern.",
                &[("pattern", p.code())],
            )
        });
        Self {
            detector_micros,
            detector_findings,
            runs: registry.counter(
                "alertops_detect_runs_total",
                "Full detection passes executed.",
                &[],
            ),
            alerts_scanned: registry.counter(
                "alertops_detect_alerts_scanned_total",
                "Alerts visible to the detectors, summed over runs.",
                &[],
            ),
            engine_apply_micros: registry.histogram(
                "alertops_engine_apply_micros",
                "Wall time folding one window into the incremental engine.",
                &[],
            ),
            engine_evict_micros: registry.histogram(
                "alertops_engine_evict_micros",
                "Wall time evicting one window from the incremental engine.",
                &[],
            ),
        }
    }

    fn index(pattern: AntiPattern) -> usize {
        AntiPattern::ALL
            .iter()
            .position(|p| *p == pattern)
            .expect("ALL contains every pattern")
    }

    /// Starts a wall-time span for one detector pass.
    #[must_use]
    pub fn detector_timer(&self, pattern: AntiPattern) -> Span<'_> {
        self.detector_micros[Self::index(pattern)].time()
    }

    /// Records the number of findings a detector emitted.
    pub fn record_findings(&self, pattern: AntiPattern, count: u64) {
        self.detector_findings[Self::index(pattern)].add(count);
    }

    /// Records the start of a detection run over `alerts` alerts.
    pub fn record_run(&self, alerts: u64) {
        self.runs.inc();
        self.alerts_scanned.add(alerts);
    }

    /// Starts a wall-time span over one incremental-engine window apply
    /// ([`IncrementalState::observe_window`](crate::IncrementalState::observe_window)).
    #[must_use]
    pub fn engine_apply_timer(&self) -> Span<'_> {
        self.engine_apply_micros.time()
    }

    /// Starts a wall-time span over one incremental-engine window
    /// eviction
    /// ([`IncrementalState::evict_window`](crate::IncrementalState::evict_window)).
    #[must_use]
    pub fn engine_evict_timer(&self) -> Span<'_> {
        self.engine_evict_micros.time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_one_series_per_pattern() {
        let registry = MetricsRegistry::new();
        let metrics = DetectMetrics::register(&registry);
        metrics.record_run(42);
        metrics.record_findings(AntiPattern::Repeating, 3);
        drop(metrics.detector_timer(AntiPattern::Cascading));
        drop(metrics.engine_apply_timer());
        drop(metrics.engine_evict_timer());
        let text = registry.render();
        for pattern in AntiPattern::ALL {
            assert!(
                text.contains(&format!("pattern=\"{}\"", pattern.code())),
                "missing {pattern:?} series"
            );
        }
        assert!(text.contains("alertops_detect_alerts_scanned_total 42"));
        assert!(text.contains("alertops_detector_findings_total{pattern=\"A5\"} 3"));
        assert!(text.contains("alertops_detector_micros_count{pattern=\"A6\"} 1"));
        assert!(text.contains("alertops_engine_apply_micros"));
        assert!(text.contains("alertops_engine_evict_micros"));
        alertops_obs::lint_exposition(&text).unwrap();
    }

    #[test]
    fn re_registering_shares_series() {
        let registry = MetricsRegistry::new();
        let a = DetectMetrics::register(&registry);
        let b = DetectMetrics::register(&registry);
        a.record_run(1);
        b.record_run(1);
        assert!(registry.render().contains("alertops_detect_runs_total 2"));
    }
}
