//! Property tests over the incremental detection engine's eviction
//! algebra: observing windows and then evicting some prefix must leave
//! the engine *exactly* where a fresh engine fed only the surviving
//! windows would be — structurally (rolling counters, transient
//! multisets, repeat histograms, the storm region-hour histogram, and
//! cascade edges) and in the findings it reports. This is the property
//! that makes O(window) streaming detection semantically equal to
//! O(history) batch recomputation.

use proptest::prelude::*;

use alertops_detect::storm::region_hour_histogram;
use alertops_detect::IncrementalState;
use alertops_model::{
    Alert, AlertId, AlertStrategy, Clearance, DependencyGraph, Incident, IncidentId, Location,
    LogRule, MicroserviceId, ServiceId, Severity, SimDuration, SimTime, StrategyId, StrategyKind,
};

/// A dense-id log catalog covering every strategy the generator emits.
fn catalog() -> Vec<AlertStrategy> {
    (0..6u64)
        .map(|id| {
            AlertStrategy::builder(StrategyId(id))
                .title_template("service latency is abnormal")
                .kind(StrategyKind::Log(LogRule {
                    keyword: "ERROR".into(),
                    min_count: 1,
                    window: SimDuration::from_mins(5),
                }))
                .build()
                .expect("catalog strategy is well-formed")
        })
        .collect()
}

/// A small call chain `m0 → m1 → m2 → m3` so cascade edges appear.
fn graph() -> DependencyGraph {
    let mut g = DependencyGraph::new();
    for (caller, callee) in [(0u64, 1u64), (1, 2), (2, 3)] {
        g.add_edge(MicroserviceId(caller), MicroserviceId(callee));
    }
    g
}

/// A couple of incidents so the A2/A3 co-occurrence paths execute.
fn incidents() -> Vec<Incident> {
    let mut mitigated = Incident::new(
        IncidentId(0),
        ServiceId(0),
        Severity::Critical,
        SimTime::from_secs(1_800),
    );
    mitigated.mitigate(SimTime::from_secs(7_200));
    let open = Incident::new(
        IncidentId(1),
        ServiceId(1),
        Severity::Major,
        SimTime::from_secs(10_000),
    );
    vec![mitigated, open]
}

/// Random alert windows: each alert gets a strategy, region, hour,
/// microservice tied to the strategy (so the dependency graph applies),
/// and an optional auto-clearance — short enough to count as transient
/// for some draws, exercising the A4 multiset and the A2 evidence
/// counters in both directions.
fn arb_windows(max_alerts: usize) -> impl Strategy<Value = Vec<Vec<Alert>>> {
    (
        prop::collection::vec(
            (
                0u64..6,                         // strategy
                0u64..10,                        // hour
                0u64..3_600,                     // offset in hour
                0u64..2,                         // region index
                prop::option::of(10u64..900u64), // auto-clear after seconds
            ),
            0..max_alerts,
        ),
        2usize..20, // window length
    )
        .prop_map(|(rows, window_len)| {
            let mut alerts: Vec<Alert> = rows
                .into_iter()
                .enumerate()
                .map(|(i, (strategy, hour, offset, region, clear_after))| {
                    let raised = SimTime::from_secs(hour * 3_600 + offset);
                    let mut alert = Alert::builder(AlertId(i as u64), StrategyId(strategy))
                        .title("service latency is abnormal")
                        .microservice(MicroserviceId(strategy % 4))
                        .location(Location::new(format!("r{region}"), "dc"))
                        .raised_at(raised)
                        .build();
                    if let Some(secs) = clear_after {
                        alert
                            .clear(raised + SimDuration::from_secs(secs), Clearance::Auto)
                            .expect("clearance after raise");
                    }
                    alert
                })
                .collect();
            alerts.sort_by_key(|a| (a.raised_at(), a.id()));
            alerts.chunks(window_len).map(<[Alert]>::to_vec).collect()
        })
}

/// A fresh engine fed only `windows`, in order.
fn fresh(windows: &[Vec<Alert>], graph: &DependencyGraph) -> IncrementalState {
    let mut engine = IncrementalState::default();
    for window in windows {
        engine.observe_window(window, Some(graph), None);
    }
    engine
}

/// Deep sweep under `ALERTOPS_TEST_FULL=1`; a faster default keeps the
/// tier-1 wall clock flat.
fn cases(full: u32, quick: u32) -> u32 {
    if std::env::var("ALERTOPS_TEST_FULL").as_deref() == Ok("1") {
        full
    } else {
        quick
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48, 24)))]

    /// observe(all) + evict(k) == observe(survivors), for every k —
    /// state, storm histogram, and reported findings alike.
    #[test]
    fn eviction_equals_fresh_rebuild_of_survivors(windows in arb_windows(160)) {
        let graph = graph();
        let strategies = catalog();
        let incidents = incidents();
        for k in 0..=windows.len() {
            let mut evicted = fresh(&windows, &graph);
            let mut removed = 0;
            for _ in 0..k {
                removed += evicted.evict_window(None);
            }
            let survivors: usize = windows[k..].iter().map(Vec::len).sum();
            prop_assert_eq!(removed + survivors, windows.iter().map(Vec::len).sum::<usize>());
            prop_assert_eq!(evicted.alert_count(), survivors);

            let mut rebuilt = fresh(&windows[k..], &graph);
            prop_assert_eq!(&evicted, &rebuilt, "state diverged after evicting {} windows", k);

            let flat: Vec<Alert> = windows[k..].iter().flatten().cloned().collect();
            prop_assert_eq!(evicted.histogram(), &region_hour_histogram(&flat));

            let from_evicted =
                evicted.current_findings(&strategies, &incidents, Some(&graph), None);
            let from_rebuilt =
                rebuilt.current_findings(&strategies, &incidents, Some(&graph), None);
            prop_assert_eq!(from_evicted, from_rebuilt, "findings diverged at k={}", k);
        }
    }

    /// Rolling usage — interleaved observe/evict with a bounded scope —
    /// stays equal to rebuilding from the surviving suffix at every
    /// step, including the findings reported mid-stream (which also
    /// exercises the dirty-tracking cache between mutations).
    #[test]
    fn interleaved_observe_and_evict_track_a_sliding_rebuild(
        windows in arb_windows(120),
        scope in 1usize..5,
    ) {
        let graph = graph();
        let strategies = catalog();
        let incidents = incidents();
        let mut rolling = IncrementalState::default();
        for (i, window) in windows.iter().enumerate() {
            rolling.observe_window(window, Some(&graph), None);
            while rolling.window_count() > scope {
                rolling.evict_window(None);
            }
            let start = (i + 1).saturating_sub(scope);
            let mut rebuilt = fresh(&windows[start..=i], &graph);
            prop_assert_eq!(&rolling, &rebuilt, "state diverged at window {}", i);
            prop_assert_eq!(
                rolling.current_findings(&strategies, &incidents, Some(&graph), None),
                rebuilt.current_findings(&strategies, &incidents, Some(&graph), None),
                "findings diverged at window {}", i
            );
        }
    }

    /// Evicting everything returns the engine to its pristine state.
    #[test]
    fn full_eviction_is_pristine(windows in arb_windows(80)) {
        let graph = graph();
        let mut engine = fresh(&windows, &graph);
        while engine.window_count() > 0 {
            engine.evict_window(None);
        }
        prop_assert_eq!(engine.alert_count(), 0);
        prop_assert!(engine.histogram().is_empty());
        prop_assert_eq!(engine.oldest_alert_time(), None);
        prop_assert_eq!(&engine, &IncrementalState::default());
    }
}
