//! Property-based tests over the mining methodology and detectors.

use proptest::prelude::*;

use alertops_detect::storm::detect_storms;
use alertops_detect::{candidates, AntiPatternReport, DetectMetrics, DetectionInput, StormConfig};
use alertops_model::{
    Alert, AlertId, AlertStrategy, Location, LogRule, SimDuration, SimTime, StrategyId,
    StrategyKind,
};
use alertops_obs::MetricsRegistry;

/// A dense-id log catalog covering every strategy `arb_alerts` emits.
fn catalog() -> Vec<AlertStrategy> {
    (0..8u64)
        .map(|id| {
            AlertStrategy::builder(StrategyId(id))
                .title_template("service latency is abnormal")
                .kind(StrategyKind::Log(LogRule {
                    keyword: "ERROR".into(),
                    min_count: 1,
                    window: SimDuration::from_mins(5),
                }))
                .build()
                .expect("catalog strategy is well-formed")
        })
        .collect()
}

/// Strategy for generating random alert streams.
fn arb_alerts(max: usize) -> impl Strategy<Value = Vec<Alert>> {
    prop::collection::vec(
        (
            0u64..8,                     // strategy
            0u64..48,                    // hour
            0u64..3_600,                 // offset in hour
            0u64..2,                     // region index
            prop::option::of(1u64..120), // processing minutes
        ),
        0..max,
    )
    .prop_map(|rows| {
        let mut alerts: Vec<Alert> = rows
            .into_iter()
            .enumerate()
            .map(|(i, (strategy, hour, offset, region, mins))| {
                let mut builder = Alert::builder(AlertId(i as u64), StrategyId(strategy))
                    .location(Location::new(format!("r{region}"), "dc"))
                    .raised_at(SimTime::from_secs(hour * 3_600 + offset));
                if let Some(m) = mins {
                    builder = builder.processing_time(SimDuration::from_mins(m));
                }
                builder.build()
            })
            .collect();
        alerts.sort_by_key(|a| (a.raised_at(), a.id()));
        alerts
    })
}

/// Deep sweep under `ALERTOPS_TEST_FULL=1`; a faster default keeps the
/// tier-1 wall clock flat.
fn cases(full: u32, quick: u32) -> u32 {
    if std::env::var("ALERTOPS_TEST_FULL").as_deref() == Ok("1") {
        full
    } else {
        quick
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64, 24)))]

    #[test]
    fn storms_are_disjoint_ordered_and_over_threshold(
        alerts in arb_alerts(400),
        threshold in 1usize..40,
    ) {
        let storms = detect_storms(&alerts, &StormConfig { hourly_threshold: threshold });
        for storm in &storms {
            // Hours are consecutive and each is over the threshold.
            for w in storm.hours.windows(2) {
                prop_assert_eq!(w[1], w[0] + 1);
            }
            prop_assert!(storm.peak_hourly > threshold);
            prop_assert!(storm.total_alerts > threshold);
            // Every storm hour individually exceeds the threshold.
            for &hour in &storm.hours {
                let count = alerts
                    .iter()
                    .filter(|a| {
                        a.hour_bucket() == hour
                            && a.location().region() == &storm.region
                    })
                    .count();
                prop_assert!(count > threshold, "hour {} has {}", hour, count);
            }
        }
        // Same-region storms never touch (merging is maximal).
        for i in 0..storms.len() {
            for j in i + 1..storms.len() {
                if storms[i].region == storms[j].region {
                    let a = &storms[i].hours;
                    let b = &storms[j].hours;
                    let adjacent = a.last().unwrap() + 1 == *b.first().unwrap()
                        || b.last().unwrap() + 1 == *a.first().unwrap();
                    prop_assert!(!adjacent, "adjacent storms were not merged");
                    prop_assert!(a.iter().all(|h| !b.contains(h)));
                }
            }
        }
    }

    #[test]
    fn storm_detection_is_idempotent_per_storm(
        alerts in arb_alerts(400),
        threshold in 1usize..40,
    ) {
        // DESIGN.md §7: a storm is a maximal run of over-threshold
        // region-hours. Re-detecting over exactly the alerts a storm
        // claims must reproduce that storm and nothing else — storms
        // are a fixed point of their own evidence.
        let config = StormConfig { hourly_threshold: threshold };
        for storm in detect_storms(&alerts, &config) {
            let own: Vec<Alert> = alerts
                .iter()
                .filter(|a| {
                    a.location().region() == &storm.region
                        && storm.hours.contains(&a.hour_bucket())
                })
                .cloned()
                .collect();
            let again = detect_storms(&own, &config);
            prop_assert_eq!(again.len(), 1, "storm evidence re-detects to one storm");
            prop_assert_eq!(&again[0], &storm);
        }
    }

    #[test]
    fn instrumented_detection_is_observer_only(alerts in arb_alerts(250)) {
        // The alertops-obs guarantee: attaching metrics must never
        // change detection output, only record it.
        let strategies = catalog();
        let input = DetectionInput::new(&strategies).with_alerts(&alerts);
        let baseline = AntiPatternReport::run_default(&input);

        let registry = MetricsRegistry::new();
        let metrics = DetectMetrics::register(&registry);
        let instrumented = AntiPatternReport::run_instrumented(&input, Some(&metrics));
        prop_assert_eq!(instrumented, baseline);

        let text = registry.render();
        prop_assert!(text.contains("alertops_detect_runs_total 1"), "{}", text);
        prop_assert!(
            text.contains(&format!(
                "alertops_detect_alerts_scanned_total {}",
                alerts.len()
            )),
            "{}",
            text
        );
        prop_assert!(alertops_obs::lint_exposition(&text).is_ok());
    }

    #[test]
    fn storm_detection_is_permutation_invariant(alerts in arb_alerts(200)) {
        let config = StormConfig::default();
        let baseline = detect_storms(&alerts, &config);
        let mut shuffled = alerts;
        shuffled.reverse();
        prop_assert_eq!(detect_storms(&shuffled, &config), baseline);
    }

    #[test]
    fn individual_candidates_size_is_ceil_fraction(
        alerts in arb_alerts(300),
        fraction in 0.05f64..1.0,
    ) {
        let with_evidence: std::collections::BTreeSet<StrategyId> = alerts
            .iter()
            .filter(|a| a.processing_time().is_some())
            .map(Alert::strategy)
            .collect();
        let selected = candidates::individual_candidates(&alerts, fraction);
        let expected = ((with_evidence.len() as f64) * fraction).ceil() as usize;
        prop_assert_eq!(selected.len(), expected);
        // Sorted by descending average.
        for w in selected.windows(2) {
            prop_assert!(w[0].avg_processing_mins >= w[1].avg_processing_mins);
        }
    }

    #[test]
    fn collective_candidates_counts_are_exact(
        alerts in arb_alerts(300),
        threshold in 1usize..30,
    ) {
        for candidate in candidates::collective_candidates(&alerts, threshold) {
            let recount = alerts
                .iter()
                .filter(|a| {
                    a.hour_bucket() == candidate.hour
                        && a.location().region() == &candidate.region
                })
                .count();
            prop_assert_eq!(recount, candidate.alert_count);
            prop_assert!(candidate.alert_count > threshold);
        }
    }
}
