//! End-to-end: detectors must recover the anti-patterns the simulator
//! injected, from nothing but the alert stream, the catalog, the
//! incidents and the dependency graph — mirroring how the paper mined
//! candidates from production data.

use std::collections::BTreeSet;

use alertops_detect::{candidates, evaluate_sets, AntiPattern, AntiPatternReport, DetectionInput};
use alertops_model::StrategyId;
use alertops_sim::scenarios;

fn injected(
    out: &alertops_sim::SimOutput,
    f: impl Fn(&alertops_sim::InjectedProfile) -> bool,
) -> BTreeSet<StrategyId> {
    out.catalog
        .strategies()
        .iter()
        .map(alertops_model::AlertStrategy::id)
        .filter(|&id| f(&out.catalog.profile(id)))
        .collect()
}

#[test]
fn detectors_recover_injected_anti_patterns() {
    let out = scenarios::mini_study(11).run();
    let graph = out.topology.dependency_graph();
    let input = DetectionInput::new(out.catalog.strategies())
        .with_alerts(&out.alerts)
        .with_incidents(&out.incidents)
        .with_graph(&graph);
    let report = AntiPatternReport::run_default(&input);

    // A1: title-based detection is near-exact (it sees the same text the
    // injector wrote).
    let a1 = evaluate_sets(
        &report.flagged(AntiPattern::UnclearTitle),
        &injected(&out, |p| p.vague_title),
    );
    assert!(a1.recall > 0.9, "A1 recall {:.2}", a1.recall);
    assert!(a1.precision > 0.9, "A1 precision {:.2}", a1.precision);

    // A4: transient/toggling behaviour is a statistical signature;
    // evidence-based recall is necessarily partial (quiet strategies
    // never produce alerts to judge).
    let a4 = evaluate_sets(
        &report.flagged(AntiPattern::TransientToggling),
        &injected(&out, |p| p.oversensitive),
    );
    assert!(a4.precision > 0.7, "A4 precision {:.2}", a4.precision);
    assert!(a4.recall > 0.4, "A4 recall {:.2}", a4.recall);

    // A5: chatty strategies fire hour after hour.
    let a5 = evaluate_sets(
        &report.flagged(AntiPattern::Repeating),
        &injected(&out, |p| p.chatty),
    );
    assert!(a5.recall > 0.6, "A5 recall {:.2}", a5.recall);
}

#[test]
fn individual_candidate_mining_is_enriched_with_injected_strategies() {
    let out = scenarios::mini_study(11).run();
    let top30 = candidates::individual_candidates(&out.alerts, 0.3);
    let candidate_ids: BTreeSet<StrategyId> = top30.iter().map(|c| c.strategy).collect();
    // Fraction of candidates that carry an injected anti-pattern must
    // exceed the base rate of injected strategies among all strategies
    // with alerts — the paper's mining premise.
    let flagged_in_candidates = candidate_ids
        .iter()
        .filter(|&&id| out.catalog.profile(id).any())
        .count() as f64
        / candidate_ids.len().max(1) as f64;
    let all_with_alerts: BTreeSet<StrategyId> = out
        .alerts
        .iter()
        .map(alertops_model::Alert::strategy)
        .collect();
    let base_rate = all_with_alerts
        .iter()
        .filter(|&&id| out.catalog.profile(id).any())
        .count() as f64
        / all_with_alerts.len().max(1) as f64;
    assert!(
        flagged_in_candidates > base_rate,
        "top-30% not enriched: {flagged_in_candidates:.2} vs base {base_rate:.2}"
    );
}

#[test]
fn collective_candidates_and_storms_appear_in_study() {
    let out = scenarios::mini_study(11).run();
    let collective = candidates::collective_candidates(&out.alerts, 200);
    let storms = alertops_detect::storm::detect_storms(
        &out.alerts,
        &alertops_detect::StormConfig::default(),
    );
    assert!(!storms.is_empty(), "study produced no storms");
    // Collective candidates (threshold 200) are a subset of storm hours
    // (threshold 100).
    for candidate in &collective {
        assert!(
            storms
                .iter()
                .any(|s| s.region == candidate.region && s.hours.contains(&candidate.hour)),
            "candidate region-hour not inside any storm"
        );
    }
}

#[test]
fn cascades_detected_in_signal_scenario() {
    let out = scenarios::quickstart(11).run();
    let graph = out.topology.dependency_graph();
    let input = DetectionInput::new(out.catalog.strategies())
        .with_alerts(&out.alerts)
        .with_incidents(&out.incidents)
        .with_graph(&graph);
    let report = AntiPatternReport::run_default(&input);
    // quickstart injects one cascade; detection should find at least one
    // multi-microservice group.
    assert!(
        !report.cascades.is_empty(),
        "no cascade groups found despite injected cascade"
    );
    for group in &report.cascades {
        assert!(group.len() >= 3);
        assert!(group.members.contains(&group.root));
    }
}
