//! Exponential backoff with deterministic jitter.
//!
//! Used by the replay client to reconnect after a connection reset:
//! delays double from `base` up to `cap`, each multiplied by a seeded
//! jitter factor in `[0.5, 1.0]` so reconnect storms decorrelate
//! without sacrificing replayability.

use std::time::Duration;

use crate::rng::ChaosRng;

/// An iterator of reconnect delays: exponential growth, capped, with
/// seeded half-jitter. Never terminates — callers bound attempts.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: ChaosRng,
}

impl Backoff {
    /// Creates a backoff schedule. `base` is the first (pre-jitter)
    /// delay, `cap` the ceiling; `seed` fixes the jitter stream.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or exceeds `cap`.
    #[must_use]
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        assert!(!base.is_zero(), "backoff base must be positive");
        assert!(base <= cap, "backoff base must not exceed cap");
        Self {
            base,
            cap,
            attempt: 0,
            rng: ChaosRng::new(seed),
        }
    }

    /// The delay to sleep before the next attempt.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        // Half-jitter: uniform in [exp/2, exp].
        let jitter = 0.5 + self.rng.uniform() * 0.5;
        exp.mul_f64(jitter)
    }

    /// Attempts made so far (delays handed out).
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the exponent (e.g. after a healthy connection), keeping
    /// the jitter stream position.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_then_cap() {
        let mut b = Backoff::new(
            Duration::from_millis(10),
            Duration::from_millis(160),
            0xBEEF,
        );
        let delays: Vec<Duration> = (0..8).map(|_| b.next_delay()).collect();
        // Each delay sits in [exp/2, exp] of the capped exponential.
        for (i, d) in delays.iter().enumerate() {
            let exp = Duration::from_millis((10u64 << i.min(16)).min(160));
            assert!(*d >= exp / 2 && *d <= exp, "attempt {i}: {d:?} vs {exp:?}");
        }
        assert_eq!(b.attempts(), 8);
    }

    #[test]
    fn same_seed_same_delays() {
        let mut a = Backoff::new(Duration::from_millis(5), Duration::from_secs(1), 3);
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_secs(1), 3);
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn reset_restarts_the_exponent() {
        let mut b = Backoff::new(Duration::from_millis(8), Duration::from_secs(2), 1);
        for _ in 0..5 {
            let _ = b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay() <= Duration::from_millis(8));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_base_is_rejected() {
        let _ = Backoff::new(Duration::ZERO, Duration::from_secs(1), 0);
    }
}
