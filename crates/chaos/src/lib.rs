//! Deterministic chaos engineering for the alertops daemon.
//!
//! The paper's governance loop only earns trust if it keeps running
//! while the world misbehaves: connections reset mid-frame, frames
//! arrive truncated or corrupted, consumers stall, shard workers
//! crash, and bounded queues overflow. This crate provides the
//! *deterministic* vocabulary for injecting exactly those faults:
//!
//! - [`ChaosRng`]: a seeded splitmix64 stream — the only randomness
//!   source, so every chaos run replays byte for byte;
//! - [`ChaosSchedule`]: pure-data fault schedules ([`ChaosKind`] at
//!   trace positions) generated from a seed;
//! - [`truncate_frame`] / [`garble_frame`]: frame corruption with a
//!   guaranteed-rejected result (invalid JSON / invalid UTF-8), so
//!   the test oracle can do exact quarantine accounting;
//! - [`Backoff`]: capped exponential reconnect delays with seeded
//!   jitter for the replay client;
//! - [`silence_panics_containing`]: a panic-hook filter so supervised
//!   worker crashes injected on purpose don't spray backtraces over
//!   test output.
//!
//! Nothing here touches the wall clock or global RNG state: a chaos
//! run is a function of `(trace, seed)` and nothing else. Override the
//! seed with the `CHAOS_SEED` environment variable (see
//! [`seed_from_env`]) to replay a failure printed by CI.

#![forbid(unsafe_code)]
#![warn(missing_docs, clippy::pedantic)]
#![allow(
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::module_name_repetitions
)]

mod backoff;
mod corrupt;
mod rng;
mod schedule;

pub use backoff::Backoff;
pub use corrupt::{garble_frame, truncate_frame};
pub use rng::ChaosRng;
pub use schedule::{seed_from_env, ChaosConfig, ChaosEvent, ChaosKind, ChaosSchedule};

use std::sync::Mutex;

static SILENCED: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Suppresses the default panic report for panics whose message
/// contains `marker`; all other panics still print normally.
///
/// Chaos tests inject worker panics on purpose — the supervisor
/// catches them — and without this filter every injected crash dumps
/// a backtrace into otherwise-green test output. Safe to call multiple
/// times (markers accumulate); the hook chains to whatever hook was
/// installed before the first call.
pub fn silence_panics_containing(marker: &str) {
    let mut silenced = SILENCED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let install = silenced.is_empty();
    if !silenced.iter().any(|m| m == marker) {
        silenced.push(marker.to_string());
    }
    drop(silenced);
    if install {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            let silenced = SILENCED
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if silenced.iter().any(|m| message.contains(m.as_str())) {
                return;
            }
            drop(silenced);
            previous(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silenced_panics_are_still_catchable() {
        silence_panics_containing("chaos-test-marker");
        let caught = std::panic::catch_unwind(|| {
            panic!("injected chaos-test-marker crash");
        });
        assert!(caught.is_err());
        // And a second registration of the same marker is a no-op.
        silence_panics_containing("chaos-test-marker");
    }
}
