//! Deterministic frame corruption.
//!
//! Both corruptors guarantee the mangled frame is *rejected* by the
//! daemon's codec, never silently reinterpreted as a different valid
//! frame:
//!
//! - [`truncate_frame`] cuts a JSON object line before its closing
//!   brace, so the result always fails JSON parsing;
//! - [`garble_frame`] splices raw `0xFF` bytes into the line, so the
//!   result always fails UTF-8 validation.
//!
//! That guarantee is what lets the chaos oracle do exact accounting:
//! a corrupted frame is always quarantined (one counter bump, one
//! lost alert) and never anything else.

use crate::rng::ChaosRng;

/// Cuts `frame` (one NDJSON line, no trailing newline) to a strict
/// prefix that can never parse as JSON.
///
/// The cut point is drawn from `1..len` on a UTF-8 character boundary,
/// so at least one byte survives and the closing `}` never does.
///
/// # Panics
///
/// Panics if `frame` is shorter than 2 bytes (nothing to truncate).
#[must_use]
pub fn truncate_frame(frame: &str, rng: &mut ChaosRng) -> Vec<u8> {
    assert!(frame.len() >= 2, "frame too short to truncate: {frame:?}");
    let mut cut = rng.range_usize(1, frame.len());
    while !frame.is_char_boundary(cut) {
        cut -= 1;
    }
    frame.as_bytes()[..cut.max(1)].to_vec()
}

/// Splices invalid UTF-8 (`0xFF`) into `frame` at a deterministic
/// position, so the line always fails UTF-8 validation.
///
/// # Panics
///
/// Panics if `frame` is empty.
#[must_use]
pub fn garble_frame(frame: &str, rng: &mut ChaosRng) -> Vec<u8> {
    assert!(!frame.is_empty(), "cannot garble an empty frame");
    let at = rng.range_usize(0, frame.len());
    let mut out = Vec::with_capacity(frame.len() + 2);
    out.extend_from_slice(&frame.as_bytes()[..at]);
    out.extend_from_slice(&[0xFF, 0xFE]);
    out.extend_from_slice(&frame.as_bytes()[at..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAME: &str = r#"{"alert":{"id":7,"strategy":3}}"#;

    #[test]
    fn truncation_is_a_proper_prefix_and_never_valid_json() {
        let mut rng = ChaosRng::new(1);
        for _ in 0..200 {
            let cut = truncate_frame(FRAME, &mut rng);
            assert!(!cut.is_empty() && cut.len() < FRAME.len());
            assert!(FRAME.as_bytes().starts_with(&cut));
            let text = std::str::from_utf8(&cut).expect("cut on char boundary");
            assert!(
                serde_json::from_str::<serde_json::Value>(text).is_err(),
                "truncated frame unexpectedly parsed: {text}"
            );
        }
    }

    #[test]
    fn truncation_respects_multibyte_boundaries() {
        let frame = r#"{"title":"ünïcodé alert ß"}"#;
        let mut rng = ChaosRng::new(2);
        for _ in 0..200 {
            let cut = truncate_frame(frame, &mut rng);
            assert!(std::str::from_utf8(&cut).is_ok());
        }
    }

    #[test]
    fn garbling_is_never_valid_utf8() {
        let mut rng = ChaosRng::new(3);
        for _ in 0..200 {
            let bad = garble_frame(FRAME, &mut rng);
            assert!(std::str::from_utf8(&bad).is_err());
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let mut a = ChaosRng::new(9);
        let mut b = ChaosRng::new(9);
        assert_eq!(truncate_frame(FRAME, &mut a), truncate_frame(FRAME, &mut b));
        assert_eq!(garble_frame(FRAME, &mut a), garble_frame(FRAME, &mut b));
    }
}
