//! The chaos stream RNG.
//!
//! Chaos schedules must be *pure data*: the same seed has to produce
//! the same faults at the same positions on every machine, forever.
//! [`ChaosRng`] is a splitmix64 sequence — the same generator the
//! simulator's keyed noise uses — kept deliberately tiny so the chaos
//! crate depends on nothing.

/// A seeded, deterministic stream of pseudo-random values.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a generator from a seed. Equal seeds yield equal
    /// streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            // Pre-mix so seed 0 and seed 1 diverge immediately.
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// The next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → exactly representable dyadic rational.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "ChaosRng::range: empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift bounded sampling; bias < 2^-64 * span.
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        usize::try_from(self.range(lo as u64, hi as u64)).expect("range fits usize")
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// A uniformly chosen element of `items`, or `None` when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_usize(0, items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosRng::new(0);
        let mut b = ChaosRng::new(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = ChaosRng::new(7);
        for _ in 0..1_000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn uniform_in_unit_interval_with_sane_mean() {
        let mut rng = ChaosRng::new(3);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.uniform()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut rng = ChaosRng::new(11);
        let items = [1, 2, 3, 4];
        let seen: std::collections::BTreeSet<i32> =
            (0..200).filter_map(|_| rng.pick(&items).copied()).collect();
        assert_eq!(seen.len(), items.len());
        assert_eq!(rng.pick::<i32>(&[]), None);
    }
}
