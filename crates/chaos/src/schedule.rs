//! Seeded chaos schedules: *what* goes wrong, *where* in the trace.
//!
//! A [`ChaosSchedule`] is pure data generated from a seed — no wall
//! clock, no global state — so a chaos run is replayable byte for
//! byte: rerun the harness with the same seed and the same faults hit
//! the same alert positions. The schedule says nothing about *how* a
//! fault is applied; the driver (the chaos test harness, or any other
//! tool) interprets each [`ChaosKind`] against a live daemon.

use serde::{Deserialize, Serialize};

use crate::rng::ChaosRng;

/// One kind of injected fault at the transport or shard layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ChaosKind {
    /// Drop the TCP connection mid-frame: the daemon sees a truncated
    /// final line (quarantined), the producer reconnects and resends.
    ConnectionReset,
    /// Deliver a frame cut short at a random byte: quarantined, the
    /// alert is lost at the transport.
    TruncatedFrame,
    /// Deliver a frame with garbage bytes spliced in (including
    /// invalid UTF-8): quarantined, the alert is lost at the transport.
    CorruptFrame,
    /// The producer stalls for `millis` before continuing — a slow
    /// consumer upstream. No frames are harmed; the daemon must simply
    /// stay responsive.
    SlowConsumer {
        /// Stall length in milliseconds (small: this is a liveness
        /// probe, not a soak).
        millis: u64,
    },
    /// Force the shard's worker to panic between window closes: its
    /// buffered window is lost, the supervisor restarts it, and the
    /// window's snapshot is marked degraded for that shard.
    WorkerPanic {
        /// The shard whose worker panics.
        shard: usize,
    },
    /// Force the shard's worker to panic *inside* the next window
    /// close (mid-detection): the whole window is lost on that shard
    /// and its governor is rehydrated from the last closed window.
    WorkerPanicOnClose {
        /// The shard whose worker panics at close.
        shard: usize,
    },
    /// Stall the shard's worker and slam `burst` alerts into its
    /// bounded queue: under `drop` overflow the excess is shed with
    /// exact accounting, under `block` backpressure propagates.
    QueueOverflow {
        /// The shard whose queue overflows.
        shard: usize,
        /// How many alerts the burst carries.
        burst: usize,
    },
    /// Kill a cluster node outright (`kill -9` semantics): its
    /// in-memory state is discarded; only its write-ahead log
    /// survives. Drivers treat a kill of an already-dead node as a
    /// no-op, so shuffled schedules stay applicable.
    NodeKill {
        /// The node to kill.
        node: usize,
    },
    /// Rejoin a killed cluster node: replay its write-ahead log,
    /// rebuild its detection history, restore its in-flight tail.
    /// No-op if the node is alive.
    NodeRejoin {
        /// The node to rejoin.
        node: usize,
    },
    /// Chop bytes off the end of a node's newest WAL segment — a torn
    /// write or disk corruption, surfaced as torn records (and exact
    /// `dropped` accounting) at the node's next replay.
    WalTruncate {
        /// The node whose log is damaged.
        node: usize,
        /// Bytes removed from the end of the newest segment.
        bytes: u64,
    },
}

impl ChaosKind {
    /// A short stable label for logs and error messages.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ChaosKind::ConnectionReset => "connection_reset",
            ChaosKind::TruncatedFrame => "truncated_frame",
            ChaosKind::CorruptFrame => "corrupt_frame",
            ChaosKind::SlowConsumer { .. } => "slow_consumer",
            ChaosKind::WorkerPanic { .. } => "worker_panic",
            ChaosKind::WorkerPanicOnClose { .. } => "worker_panic_on_close",
            ChaosKind::QueueOverflow { .. } => "queue_overflow",
            ChaosKind::NodeKill { .. } => "node_kill",
            ChaosKind::NodeRejoin { .. } => "node_rejoin",
            ChaosKind::WalTruncate { .. } => "wal_truncate",
        }
    }
}

/// One scheduled fault: fire `kind` just before the trace alert at
/// position `at` is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// 0-based trace position the fault fires at.
    pub at: usize,
    /// What goes wrong.
    pub kind: ChaosKind,
}

/// How many faults of each kind to schedule over a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Length of the alert trace the schedule spans.
    pub trace_len: usize,
    /// Shard count of the daemon under test (panic/overflow targets
    /// are drawn from `0..shards`).
    pub shards: usize,
    /// Connection resets mid-frame.
    pub resets: usize,
    /// Frames delivered truncated.
    pub truncations: usize,
    /// Frames delivered corrupted.
    pub corruptions: usize,
    /// Producer-side stalls.
    pub stalls: usize,
    /// Worker panics between closes.
    pub panics: usize,
    /// Worker panics during a close.
    pub close_panics: usize,
    /// Queue-overflow storms.
    pub overflows: usize,
    /// Alerts per overflow burst.
    pub burst_len: usize,
    /// Node count of the cluster under test (node-fault targets are
    /// drawn from `0..nodes`). Irrelevant — and ignored — while the
    /// node-fault counts below are zero, which they are by default:
    /// single-daemon chaos configs and their schedules are unchanged.
    pub nodes: usize,
    /// Cluster node kills (`kill -9` semantics; the WAL survives).
    pub node_kills: usize,
    /// Cluster node rejoins (WAL replay; no-op while the node is
    /// alive).
    pub node_rejoins: usize,
    /// WAL tail truncations (torn-write / disk-corruption injection).
    pub wal_truncates: usize,
    /// Bytes chopped per WAL truncation.
    pub truncate_bytes: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            trace_len: 0,
            shards: 1,
            resets: 1,
            truncations: 1,
            corruptions: 1,
            stalls: 1,
            panics: 1,
            close_panics: 1,
            overflows: 1,
            burst_len: 96,
            nodes: 1,
            node_kills: 0,
            node_rejoins: 0,
            wal_truncates: 0,
            truncate_bytes: 32,
        }
    }
}

impl ChaosConfig {
    fn total_events(&self) -> usize {
        self.resets
            + self.truncations
            + self.corruptions
            + self.stalls
            + self.panics
            + self.close_panics
            + self.overflows
            + self.node_kills
            + self.node_rejoins
            + self.wal_truncates
    }
}

/// A replayable fault schedule: events sorted by trace position, at
/// most one per position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// The seed the schedule was generated from (kept for error
    /// messages: every failure names the seed that reproduces it).
    pub seed: u64,
    /// The scheduled faults, ascending by [`ChaosEvent::at`].
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Generates the schedule for `config` from `seed`. Positions are
    /// distinct and drawn from `1..trace_len` (never position 0, so
    /// every run ingests at least one clean frame first); kinds are
    /// deterministically shuffled across positions.
    ///
    /// # Panics
    ///
    /// Panics if the trace is too short to place the requested events
    /// (`trace_len` must exceed four times the event count) or if
    /// `shards` is zero while shard-targeted events are requested.
    #[must_use]
    pub fn generate(seed: u64, config: &ChaosConfig) -> Self {
        let total = config.total_events();
        assert!(
            config.trace_len > total * 4,
            "trace of {} cannot host {} chaos events",
            config.trace_len,
            total
        );
        let needs_shard = config.panics + config.close_panics + config.overflows > 0;
        assert!(
            config.shards > 0 || !needs_shard,
            "shard-targeted chaos needs shards >= 1"
        );
        let needs_node = config.node_kills + config.node_rejoins + config.wal_truncates > 0;
        assert!(
            config.nodes > 0 || !needs_node,
            "node-targeted chaos needs nodes >= 1"
        );

        let mut rng = ChaosRng::new(seed);

        // Distinct positions, then sorted: rejection sampling is fine
        // because the trace is ≥ 4× oversized by the assert above.
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < total {
            positions.insert(rng.range_usize(1, config.trace_len));
        }
        let positions: Vec<usize> = positions.into_iter().collect();

        // One kind per requested event, then a Fisher–Yates shuffle so
        // kinds interleave across the trace instead of clustering.
        let mut kinds = Vec::with_capacity(total);
        for _ in 0..config.resets {
            kinds.push(ChaosKind::ConnectionReset);
        }
        for _ in 0..config.truncations {
            kinds.push(ChaosKind::TruncatedFrame);
        }
        for _ in 0..config.corruptions {
            kinds.push(ChaosKind::CorruptFrame);
        }
        for _ in 0..config.stalls {
            kinds.push(ChaosKind::SlowConsumer {
                millis: rng.range(1, 5),
            });
        }
        for _ in 0..config.panics {
            kinds.push(ChaosKind::WorkerPanic {
                shard: rng.range_usize(0, config.shards.max(1)),
            });
        }
        for _ in 0..config.close_panics {
            kinds.push(ChaosKind::WorkerPanicOnClose {
                shard: rng.range_usize(0, config.shards.max(1)),
            });
        }
        for _ in 0..config.overflows {
            kinds.push(ChaosKind::QueueOverflow {
                shard: rng.range_usize(0, config.shards.max(1)),
                burst: config.burst_len,
            });
        }
        // Node faults draw rng only when requested, appended after the
        // transport/shard kinds: existing single-daemon schedules keep
        // their exact byte-for-byte draws.
        for _ in 0..config.node_kills {
            kinds.push(ChaosKind::NodeKill {
                node: rng.range_usize(0, config.nodes.max(1)),
            });
        }
        for _ in 0..config.node_rejoins {
            kinds.push(ChaosKind::NodeRejoin {
                node: rng.range_usize(0, config.nodes.max(1)),
            });
        }
        for _ in 0..config.wal_truncates {
            kinds.push(ChaosKind::WalTruncate {
                node: rng.range_usize(0, config.nodes.max(1)),
                bytes: config.truncate_bytes,
            });
        }
        for i in (1..kinds.len()).rev() {
            kinds.swap(i, rng.range_usize(0, i + 1));
        }

        let events = positions
            .into_iter()
            .zip(kinds)
            .map(|(at, kind)| ChaosEvent { at, kind })
            .collect();
        Self { seed, events }
    }

    /// The events scheduled exactly at trace position `index`.
    pub fn events_at(&self, index: usize) -> impl Iterator<Item = &ChaosEvent> {
        // At most one per position by construction, but iterate anyway
        // so hand-built schedules with duplicates still work.
        self.events.iter().filter(move |e| e.at == index)
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The chaos seed to use: the `CHAOS_SEED` environment variable when
/// set (and parseable as `u64`), else `default`. CI logs print the
/// seed of every chaos run; exporting `CHAOS_SEED` replays it locally.
#[must_use]
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ChaosConfig {
        ChaosConfig {
            trace_len: 400,
            shards: 4,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ChaosSchedule::generate(99, &config());
        let b = ChaosSchedule::generate(99, &config());
        assert_eq!(a, b);
        assert_ne!(a, ChaosSchedule::generate(100, &config()));
    }

    #[test]
    fn positions_are_distinct_sorted_and_in_range() {
        let schedule = ChaosSchedule::generate(7, &config());
        assert_eq!(schedule.len(), 7);
        let positions: Vec<usize> = schedule.events.iter().map(|e| e.at).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(positions, sorted, "positions must be distinct ascending");
        assert!(positions.iter().all(|&p| (1..400).contains(&p)));
    }

    #[test]
    fn every_requested_kind_appears() {
        let schedule = ChaosSchedule::generate(13, &config());
        let labels: std::collections::BTreeSet<&str> =
            schedule.events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels.len(), 7, "one of each kind requested: {labels:?}");
    }

    #[test]
    fn shard_targets_stay_in_range() {
        let cfg = ChaosConfig {
            trace_len: 2_000,
            shards: 3,
            panics: 20,
            close_panics: 20,
            overflows: 20,
            ..ChaosConfig::default()
        };
        for event in &ChaosSchedule::generate(5, &cfg).events {
            match event.kind {
                ChaosKind::WorkerPanic { shard }
                | ChaosKind::WorkerPanicOnClose { shard }
                | ChaosKind::QueueOverflow { shard, .. } => assert!(shard < 3),
                _ => {}
            }
        }
    }

    #[test]
    fn node_faults_appear_only_when_requested() {
        // Defaults request none: schedules are identical to a config
        // that has never heard of clusters.
        let baseline = ChaosSchedule::generate(13, &config());
        assert!(baseline.events.iter().all(|e| !matches!(
            e.kind,
            ChaosKind::NodeKill { .. }
                | ChaosKind::NodeRejoin { .. }
                | ChaosKind::WalTruncate { .. }
        )));

        let cfg = ChaosConfig {
            trace_len: 800,
            nodes: 4,
            node_kills: 3,
            node_rejoins: 3,
            wal_truncates: 2,
            ..config()
        };
        let schedule = ChaosSchedule::generate(13, &cfg);
        let labels: std::collections::BTreeSet<&str> =
            schedule.events.iter().map(|e| e.kind.label()).collect();
        for label in ["node_kill", "node_rejoin", "wal_truncate"] {
            assert!(labels.contains(label), "missing {label}: {labels:?}");
        }
        for event in &schedule.events {
            match event.kind {
                ChaosKind::NodeKill { node } | ChaosKind::NodeRejoin { node } => {
                    assert!(node < 4);
                }
                ChaosKind::WalTruncate { node, bytes } => {
                    assert!(node < 4);
                    assert_eq!(bytes, 32);
                }
                _ => {}
            }
        }
        // Same seed, same node-fault schedule: replayable.
        assert_eq!(schedule, ChaosSchedule::generate(13, &cfg));
    }

    #[test]
    fn schedule_roundtrips_through_json() {
        let schedule = ChaosSchedule::generate(21, &config());
        let json = serde_json::to_string(&schedule).unwrap();
        let back: ChaosSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(schedule, back);
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn undersized_trace_is_rejected() {
        let cfg = ChaosConfig {
            trace_len: 10,
            ..ChaosConfig::default()
        };
        let _ = ChaosSchedule::generate(1, &cfg);
    }

    #[test]
    fn events_at_finds_the_position() {
        let schedule = ChaosSchedule::generate(3, &config());
        let first = schedule.events[0];
        assert_eq!(schedule.events_at(first.at).count(), 1);
        assert!(!schedule.is_empty());
    }
}
