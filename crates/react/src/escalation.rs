//! Incident escalation proposals from correlated alert clusters.
//!
//! "A severe enough alert (or a group of related alerts) can escalate to
//! an incident" (§I, Table I). The paper's related work (Li et al.,
//! ATC'21) generates incidents from alerts automatically; this module
//! implements that step on top of R3's output: a correlated cluster
//! whose evidence is severe enough becomes an [`IncidentProposal`] for
//! the incident-management system.

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, AlertId, Severity, SimTime};

use crate::correlation::CorrelatedCluster;

/// Thresholds for proposing incidents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EscalationConfig {
    /// A cluster with at least this many alerts escalates regardless of
    /// severity (volume alone marks a broad failure).
    pub min_cluster_size: usize,
    /// A cluster containing an alert at or above this severity escalates
    /// regardless of size.
    pub severity_floor: Severity,
}

impl Default for EscalationConfig {
    fn default() -> Self {
        Self {
            min_cluster_size: 5,
            severity_floor: Severity::Critical,
        }
    }
}

/// A proposed incident, ready for the incident-management system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncidentProposal {
    /// The cluster's source alert — the proposed root cause.
    pub source: AlertId,
    /// Severity for the incident: the maximum across the cluster.
    pub severity: Severity,
    /// Display names of the services touched by the cluster, sorted and
    /// deduplicated (alerts carry the service name the OCE sees).
    pub services: Vec<String>,
    /// When the earliest alert of the cluster fired.
    pub started_at: SimTime,
    /// Every alert of the cluster (source first).
    pub alerts: Vec<AlertId>,
    /// Why the cluster escalated.
    pub reason: EscalationReason,
}

/// What pushed a cluster over the escalation bar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EscalationReason {
    /// The cluster contained an alert at/above the severity floor.
    SevereAlert,
    /// The cluster's sheer size crossed the volume threshold.
    ClusterVolume,
    /// Both conditions held.
    Both,
}

/// Evaluates correlated clusters against the escalation thresholds.
///
/// `alerts` must contain every alert referenced by the clusters (as
/// produced by [`AlertCorrelator::correlate`](crate::AlertCorrelator));
/// unknown ids are skipped defensively. Proposals come back ordered by
/// start time.
#[must_use]
pub fn propose_incidents(
    clusters: &[CorrelatedCluster],
    alerts: &[Alert],
    config: &EscalationConfig,
) -> Vec<IncidentProposal> {
    let by_id: std::collections::HashMap<AlertId, &Alert> =
        alerts.iter().map(|a| (a.id(), a)).collect();
    let lookup = |id: AlertId| by_id.get(&id).copied();
    let mut proposals = Vec::new();
    for cluster in clusters {
        let members: Vec<&Alert> = std::iter::once(cluster.source)
            .chain(cluster.derived.iter().copied())
            .filter_map(lookup)
            .collect();
        if members.is_empty() {
            continue;
        }
        let severe = members
            .iter()
            .any(|a| a.severity() >= config.severity_floor);
        let voluminous = members.len() >= config.min_cluster_size;
        let reason = match (severe, voluminous) {
            (true, true) => EscalationReason::Both,
            (true, false) => EscalationReason::SevereAlert,
            (false, true) => EscalationReason::ClusterVolume,
            (false, false) => continue,
        };
        let mut services: Vec<String> = members
            .iter()
            .map(|a| a.service_name().to_owned())
            .collect();
        services.sort_unstable();
        services.dedup();
        proposals.push(IncidentProposal {
            source: cluster.source,
            severity: members
                .iter()
                .map(|a| a.severity())
                .max()
                .expect("members nonempty"),
            services,
            started_at: members
                .iter()
                .map(|a| a.raised_at())
                .min()
                .expect("members nonempty"),
            alerts: members.iter().map(|a| a.id()).collect(),
            reason,
        });
    }
    proposals.sort_by_key(|p| (p.started_at, p.source));
    proposals
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{SimTime, StrategyId};

    fn alert(id: u64, severity: Severity, t: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(0))
            .severity(severity)
            .service(format!("svc-{}", id % 3))
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    fn cluster(source: u64, derived: &[u64]) -> CorrelatedCluster {
        CorrelatedCluster {
            source: AlertId(source),
            derived: derived.iter().map(|&d| AlertId(d)).collect(),
        }
    }

    #[test]
    fn severe_singleton_escalates() {
        let alerts = vec![alert(0, Severity::Critical, 100)];
        let proposals =
            propose_incidents(&[cluster(0, &[])], &alerts, &EscalationConfig::default());
        assert_eq!(proposals.len(), 1);
        assert_eq!(proposals[0].reason, EscalationReason::SevereAlert);
        assert_eq!(proposals[0].severity, Severity::Critical);
        assert_eq!(proposals[0].started_at, SimTime::from_secs(100));
    }

    #[test]
    fn large_mild_cluster_escalates_on_volume() {
        let alerts: Vec<Alert> = (0..6).map(|i| alert(i, Severity::Minor, 100 + i)).collect();
        let proposals = propose_incidents(
            &[cluster(0, &[1, 2, 3, 4, 5])],
            &alerts,
            &EscalationConfig::default(),
        );
        assert_eq!(proposals.len(), 1);
        assert_eq!(proposals[0].reason, EscalationReason::ClusterVolume);
        assert_eq!(proposals[0].alerts.len(), 6);
        assert_eq!(proposals[0].services, vec!["svc-0", "svc-1", "svc-2"]);
    }

    #[test]
    fn small_mild_cluster_does_not_escalate() {
        let alerts: Vec<Alert> = (0..3).map(|i| alert(i, Severity::Minor, 100)).collect();
        let proposals = propose_incidents(
            &[cluster(0, &[1, 2])],
            &alerts,
            &EscalationConfig::default(),
        );
        assert!(proposals.is_empty());
    }

    #[test]
    fn both_reason_when_severe_and_large() {
        let mut alerts: Vec<Alert> = (0..5).map(|i| alert(i, Severity::Minor, 100)).collect();
        alerts.push(alert(5, Severity::Critical, 105));
        let proposals = propose_incidents(
            &[cluster(0, &[1, 2, 3, 4, 5])],
            &alerts,
            &EscalationConfig::default(),
        );
        assert_eq!(proposals[0].reason, EscalationReason::Both);
    }

    #[test]
    fn unknown_ids_are_skipped_defensively() {
        let alerts = vec![alert(0, Severity::Critical, 100)];
        let proposals = propose_incidents(
            &[cluster(0, &[99, 100])],
            &alerts,
            &EscalationConfig::default(),
        );
        assert_eq!(proposals.len(), 1);
        assert_eq!(proposals[0].alerts, vec![AlertId(0)]);
    }

    #[test]
    fn proposals_sorted_by_start() {
        let alerts = vec![
            alert(0, Severity::Critical, 500),
            alert(1, Severity::Critical, 100),
        ];
        let proposals = propose_incidents(
            &[cluster(0, &[]), cluster(1, &[])],
            &alerts,
            &EscalationConfig::default(),
        );
        assert_eq!(proposals[0].source, AlertId(1));
        assert_eq!(proposals[1].source, AlertId(0));
    }
}
