//! R4 — emerging alert detection.
//!
//! "Manually configured dependencies of alert strategies could not cover
//! all the alert strategies … a few alerts corresponding to a root cause
//! (i.e., emerging alerts) appear first. If they are not dealt with
//! seriously, when the root cause escalates its influence, numerous
//! cascading alerts will be generated. … We employ the adaptive online
//! Latent Dirichlet Allocation to capture the implicit dependencies"
//! (§III-C). This typically catches gray failures (memory leaks, CPU
//! creep) before they cascade.
//!
//! The detector buckets alerts into fixed time windows, turns each
//! alert's text (title + service) into a bag-of-words document, runs
//! [`AdaptiveOnlineLda`] window by window, and reports alerts whose
//! dominant topic has no counterpart in recent history.

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, AlertId, SimDuration};
use alertops_text::{BagOfWords, Tokenizer, Vocabulary};
use alertops_topics::{AdaptiveOnlineLda, AoldaConfig, LdaConfig};

/// Configuration for [`EmergingAlertDetector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergingConfig {
    /// Window length for bucketing alerts.
    pub window: SimDuration,
    /// Number of topics.
    pub num_topics: usize,
    /// AOLDA adaptation weight (see [`AoldaConfig`]).
    pub adaptation_weight: f64,
    /// Emerging-topic JS-divergence threshold.
    pub emerging_threshold: f64,
    /// LDA passes per window.
    pub passes_per_window: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for EmergingConfig {
    fn default() -> Self {
        Self {
            window: SimDuration::from_hours(1),
            num_topics: 6,
            adaptation_weight: 0.5,
            emerging_threshold: 0.25,
            passes_per_window: 15,
            seed: 17,
        }
    }
}

/// The verdict for one processed window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergingReport {
    /// Window index (0-based, consecutive).
    pub window_index: usize,
    /// Alerts in the window.
    pub alert_count: usize,
    /// Number of emerging topics found.
    pub emerging_topics: usize,
    /// Alerts whose dominant topic is emerging — surface these to OCEs
    /// first.
    pub emerging_alerts: Vec<AlertId>,
}

/// Streaming emerging-alert detection over consecutive windows.
///
/// The vocabulary must be fitted before processing (so word ids are
/// stable across windows); use [`fit`](Self::fit) on a historical sample
/// or on the full stream in offline analysis.
#[derive(Debug)]
pub struct EmergingAlertDetector {
    config: EmergingConfig,
    tokenizer: Tokenizer,
    vocab: Vocabulary,
    aolda: Option<AdaptiveOnlineLda>,
    windows_processed: usize,
}

impl EmergingAlertDetector {
    /// Creates a detector; the vocabulary is empty until
    /// [`fit`](Self::fit) is called.
    #[must_use]
    pub fn new(config: EmergingConfig) -> Self {
        Self {
            config,
            tokenizer: Tokenizer::new().drop_numbers(),
            vocab: Vocabulary::new(),
            aolda: None,
            windows_processed: 0,
        }
    }

    /// Fits the vocabulary over a corpus of alerts and initializes the
    /// topic model. Must be called once before processing windows.
    pub fn fit(&mut self, alerts: &[Alert]) {
        for alert in alerts {
            let tokens = self.tokenize(alert);
            for token in &tokens {
                self.vocab.intern(token);
            }
        }
        // Guard against a degenerate empty vocabulary.
        if self.vocab.is_empty() {
            self.vocab.intern("alert");
        }
        self.aolda = Some(AdaptiveOnlineLda::new(AoldaConfig {
            lda: LdaConfig {
                num_topics: self.config.num_topics,
                vocab_size: self.vocab.len(),
                seed: self.config.seed,
                ..LdaConfig::default()
            },
            adaptation_weight: self.config.adaptation_weight,
            emerging_threshold: self.config.emerging_threshold,
            passes_per_window: self.config.passes_per_window,
            ..AoldaConfig::default()
        }));
        self.windows_processed = 0;
    }

    /// Whether [`fit`](Self::fit) has been called.
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.aolda.is_some()
    }

    /// Processes one window of alerts (the caller buckets them; see
    /// [`run`](Self::run) for the offline driver).
    ///
    /// # Panics
    ///
    /// Panics if the detector is not fitted.
    pub fn process_window(&mut self, alerts: &[&Alert]) -> EmergingReport {
        let aolda = self
            .aolda
            .as_mut()
            .expect("EmergingAlertDetector::fit must be called first");
        let docs: Vec<BagOfWords> = alerts
            .iter()
            .map(|a| {
                let tokens =
                    self.tokenizer
                        .tokenize(&format!("{} {}", a.title(), a.service_name()));
                self.vocab.encode_frozen(&tokens)
            })
            .collect();
        let window = aolda.process_window(&docs);
        let emerging_alerts = window
            .emerging_doc_indices()
            .into_iter()
            .map(|ix| alerts[ix].id())
            .collect();
        let report = EmergingReport {
            window_index: self.windows_processed,
            alert_count: alerts.len(),
            emerging_topics: window.emerging_topics().len(),
            emerging_alerts,
        };
        self.windows_processed += 1;
        report
    }

    /// Offline driver: fits the vocabulary on the whole stream, buckets
    /// it into windows of the configured length, and processes each
    /// window in order.
    pub fn run(&mut self, alerts: &[Alert]) -> Vec<EmergingReport> {
        self.fit(alerts);
        if alerts.is_empty() {
            return Vec::new();
        }
        let window_secs = self.config.window.as_secs().max(1);
        let first = alerts
            .iter()
            .map(|a| a.raised_at().as_secs())
            .min()
            .expect("nonempty");
        let last = alerts
            .iter()
            .map(|a| a.raised_at().as_secs())
            .max()
            .expect("nonempty");
        let mut reports = Vec::new();
        let mut start = first - first % window_secs;
        while start <= last {
            let end = start + window_secs;
            let bucket: Vec<&Alert> = alerts
                .iter()
                .filter(|a| {
                    let t = a.raised_at().as_secs();
                    t >= start && t < end
                })
                .collect();
            if !bucket.is_empty() {
                reports.push(self.process_window(&bucket));
            }
            start = end;
        }
        reports
    }

    fn tokenize(&self, alert: &Alert) -> Vec<String> {
        self.tokenizer
            .tokenize(&format!("{} {}", alert.title(), alert.service_name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, SimTime, StrategyId};

    fn alert(id: u64, title: &str, t: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(id % 7))
            .title(title)
            .service("Storage")
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    /// Hours 0..3: routine disk/cpu themes. Hour 3: a brand-new theme
    /// ("certificate rotation deadlock") appears.
    fn stream() -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut id = 0;
        for hour in 0..4u64 {
            for i in 0..12 {
                let title = if i % 2 == 0 {
                    "disk usage of storage node over threshold"
                } else {
                    "cpu utilization high on compute worker"
                };
                alerts.push(alert(id, title, hour * 3_600 + i * 240));
                id += 1;
            }
            if hour == 3 {
                for i in 0..10 {
                    alerts.push(alert(
                        id,
                        "certificate rotation deadlock renewal stuck handshake expired",
                        hour * 3_600 + 100 + i * 300,
                    ));
                    id += 1;
                }
            }
        }
        alerts.sort_by_key(Alert::raised_at);
        alerts
    }

    #[test]
    fn run_produces_one_report_per_nonempty_window() {
        let alerts = stream();
        let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
        let reports = detector.run(&alerts);
        assert_eq!(reports.len(), 4);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.window_index, i);
            assert!(r.alert_count > 0);
        }
    }

    #[test]
    fn novel_theme_is_flagged_in_its_window() {
        let alerts = stream();
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            num_topics: 3,
            ..EmergingConfig::default()
        });
        let reports = detector.run(&alerts);
        // The first window has no history: never emerging.
        assert!(reports[0].emerging_alerts.is_empty());
        // The novel "certificate" theme lands in window 3.
        let last = &reports[3];
        assert!(
            !last.emerging_alerts.is_empty(),
            "no emerging alerts flagged in the novel window"
        );
        // The flagged alerts should mostly be certificate alerts (ids >= 48).
        let novel_hits = last.emerging_alerts.iter().filter(|id| id.0 >= 48).count();
        assert!(
            novel_hits * 2 >= last.emerging_alerts.len(),
            "emerging alerts are mostly stale: {:?}",
            last.emerging_alerts
        );
    }

    #[test]
    fn stable_stream_stays_quiet() {
        let mut alerts = Vec::new();
        for hour in 0..4u64 {
            for i in 0..10 {
                alerts.push(alert(
                    hour * 100 + i,
                    "disk usage of storage node over threshold",
                    hour * 3_600 + i * 300,
                ));
            }
        }
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            num_topics: 2,
            ..EmergingConfig::default()
        });
        let reports = detector.run(&alerts);
        let total_emerging: usize = reports.iter().map(|r| r.emerging_alerts.len()).sum();
        assert_eq!(total_emerging, 0, "stable stream flagged {total_emerging}");
    }

    #[test]
    fn empty_stream_is_fine() {
        let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
        let reports = detector.run(&[]);
        assert!(reports.is_empty());
        assert!(detector.is_fitted());
    }

    #[test]
    #[should_panic(expected = "fit must be called")]
    fn process_without_fit_panics() {
        let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
        let _ = detector.process_window(&[]);
    }

    #[test]
    fn deterministic() {
        let alerts = stream();
        let mut a = EmergingAlertDetector::new(EmergingConfig::default());
        let mut b = EmergingAlertDetector::new(EmergingConfig::default());
        assert_eq!(a.run(&alerts), b.run(&alerts));
    }
}
