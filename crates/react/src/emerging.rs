//! R4 — emerging alert detection.
//!
//! "Manually configured dependencies of alert strategies could not cover
//! all the alert strategies … a few alerts corresponding to a root cause
//! (i.e., emerging alerts) appear first. If they are not dealt with
//! seriously, when the root cause escalates its influence, numerous
//! cascading alerts will be generated. … We employ the adaptive online
//! Latent Dirichlet Allocation to capture the implicit dependencies"
//! (§III-C). This typically catches gray failures (memory leaks, CPU
//! creep) before they cascade.
//!
//! The detector buckets alerts into fixed time windows, turns each
//! alert's text (title + service) into a bag-of-words document, runs
//! [`AdaptiveOnlineLda`] window by window, and reports alerts whose
//! dominant topic has no counterpart in recent history.
//!
//! Two driving modes share one window-processing core:
//!
//! * **offline** — [`run`](EmergingAlertDetector::run) fits the
//!   vocabulary on the whole stream, freezes it, buckets the stream
//!   into wall-clock windows (empty ones included, so the JS-divergence
//!   history only ever compares time-adjacent windows), and processes
//!   them in order;
//! * **streaming** — [`observe_window`](EmergingAlertDetector::observe_window)
//!   is fit-free: unseen words are interned online (stable-id growth)
//!   and the topic-word matrix widens via
//!   [`AdaptiveOnlineLda::grow_vocab`] as the vocabulary grows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use alertops_model::{Alert, AlertId, SimDuration, SimTime};
use alertops_text::{BagOfWords, OovPolicy, Tokenizer, Vocabulary};
use alertops_topics::{AdaptiveOnlineLda, AoldaConfig, LdaConfig};

/// An opt-in per-window token budget for the emerging channel.
///
/// Under storm load a window can carry far more text than AO-LDA needs
/// to recover its themes. When a window's total token count exceeds
/// [`max_tokens_per_window`](Self::max_tokens_per_window), the detector
/// downsamples the window to exactly that many tokens with seeded
/// reservoir-style selection sampling (Knuth's Algorithm S) over the
/// individual token occurrences, in document order.
///
/// The budget is **adaptive**: windows at or under the cap pass through
/// untouched, byte-exact — sampling only engages under load. It is
/// **off by default** (`budget: None` in [`EmergingConfig`]), so every
/// sampling-off configuration keeps the streaming-vs-offline and
/// shard-count differentials byte-exact. When sampling does engage,
/// exactness versus an unbudgeted run is deliberately traded away — but
/// the draw is a pure function of `(seed, window_index, window
/// contents)`, so any two runs with the same seed sample the same token
/// set and produce identical snapshots (seed-replayable; asserted in
/// `tests/emerging_streaming.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmergingBudget {
    /// Hard per-window token cap; sampling engages only above it.
    pub max_tokens_per_window: usize,
    /// Seed for the per-window sampling RNG. The window index is mixed
    /// in, so each window draws an independent but replayable sample.
    pub seed: u64,
}

impl EmergingBudget {
    /// A budget of `max_tokens_per_window` tokens with the given seed.
    #[must_use]
    pub fn new(max_tokens_per_window: usize, seed: u64) -> Self {
        Self {
            max_tokens_per_window,
            seed,
        }
    }
}

/// Downsamples `bows` in place to at most `budget.max_tokens_per_window`
/// tokens using seeded selection sampling over token occurrences, and
/// returns the number of tokens kept.
///
/// Windows at or under the cap are returned untouched (the adaptive
/// fast path). Over the cap, each token occurrence — the unit is one
/// count of one word in one document, visited in (document, position,
/// count) order — is kept with Algorithm S: keep iff
/// `rng.gen_range(0..remaining) < needed`. This keeps *exactly* the cap,
/// preserves document order, and is a pure function of the inputs and
/// the per-window RNG `StdRng::seed_from_u64(seed ^ mix(window_index))`,
/// which is what makes budgeted runs seed-replayable. Emptied documents
/// keep their slot (as empty bags) so document indices still line up
/// with the window's alert ids.
pub fn apply_budget(
    bows: &mut [BagOfWords],
    budget: &EmergingBudget,
    window_index: usize,
) -> usize {
    let total: usize = bows
        .iter()
        .map(|d| d.iter().map(|&(_, c)| c as usize).sum::<usize>())
        .sum();
    if total <= budget.max_tokens_per_window {
        return total;
    }
    // SplitMix64's golden-ratio increment decorrelates consecutive
    // window indices before they perturb the seed.
    let mix = (window_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(budget.seed ^ mix);
    let mut remaining = total as u64;
    let mut needed = budget.max_tokens_per_window as u64;
    for doc in bows.iter_mut() {
        for entry in doc.iter_mut() {
            let mut kept = 0u32;
            for _ in 0..entry.1 {
                if rng.gen_range(0..remaining) < needed {
                    kept += 1;
                    needed -= 1;
                }
                remaining -= 1;
            }
            entry.1 = kept;
        }
        doc.retain(|&(_, c)| c > 0);
    }
    budget.max_tokens_per_window
}

/// Configuration for [`EmergingAlertDetector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergingConfig {
    /// Window length for bucketing alerts.
    pub window: SimDuration,
    /// Number of topics.
    pub num_topics: usize,
    /// AOLDA adaptation weight (see [`AoldaConfig`]).
    pub adaptation_weight: f64,
    /// Emerging-topic JS-divergence threshold.
    pub emerging_threshold: f64,
    /// LDA passes per window.
    pub passes_per_window: usize,
    /// Seed.
    pub seed: u64,
    /// Optional per-window token budget (see [`EmergingBudget`]).
    /// `None` — the default — disables sampling entirely, keeping every
    /// differential byte-exact.
    pub budget: Option<EmergingBudget>,
}

impl Default for EmergingConfig {
    fn default() -> Self {
        Self {
            window: SimDuration::from_hours(1),
            num_topics: 6,
            adaptation_weight: 0.5,
            emerging_threshold: 0.25,
            passes_per_window: 15,
            seed: 17,
            budget: None,
        }
    }
}

/// The text of one alert, detached from the full [`Alert`] record.
///
/// This is what ingestd shards forward to the coordinator for the
/// emerging channel: the id (to name flagged alerts), the raise time
/// (to place the window on the wall clock), and the raw text AO-LDA
/// tokenizes — nothing else crosses the shard boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmergingDoc {
    /// The alert this document was extracted from.
    pub alert: AlertId,
    /// When the alert was raised.
    pub raised_at: SimTime,
    /// The text fed to the tokenizer (title + service).
    pub text: String,
}

impl EmergingDoc {
    /// Extracts the emerging-channel document from an alert.
    #[must_use]
    pub fn from_alert(alert: &Alert) -> Self {
        Self {
            alert: alert.id(),
            raised_at: alert.raised_at(),
            text: format!("{} {}", alert.title(), alert.service_name()),
        }
    }
}

/// The verdict for one processed window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergingReport {
    /// Window index — counts every wall-clock window processed,
    /// empty ones included.
    pub window_index: usize,
    /// Wall-clock start of the window (aligned down to the configured
    /// window length).
    pub window_start: SimTime,
    /// Alerts in the window.
    pub alert_count: usize,
    /// Number of emerging topics found.
    pub emerging_topics: usize,
    /// Alerts whose dominant topic is emerging — surface these to OCEs
    /// first.
    pub emerging_alerts: Vec<AlertId>,
}

/// Emerging-alert detection over consecutive time windows.
///
/// Fit-free streaming use needs no setup: construct and call
/// [`observe_window`](Self::observe_window) per wall-clock window.
/// Offline analysis goes through [`run`](Self::run), which fits and
/// freezes the vocabulary on the full stream first.
#[derive(Debug, Clone)]
pub struct EmergingAlertDetector {
    config: EmergingConfig,
    tokenizer: Tokenizer,
    vocab: Vocabulary,
    oov: OovPolicy,
    aolda: Option<AdaptiveOnlineLda>,
    windows_processed: usize,
    /// Where the next window starts if it turns out to be empty —
    /// carried forward so gaps in the stream keep their place on the
    /// wall clock.
    next_window_start: Option<SimTime>,
}

impl EmergingAlertDetector {
    /// Creates a fit-free detector: the vocabulary starts empty and
    /// grows online as windows arrive ([`OovPolicy::Intern`]).
    #[must_use]
    pub fn new(config: EmergingConfig) -> Self {
        Self::with_vocabulary(config, Vocabulary::new())
    }

    /// Creates a detector pre-seeded with `vocab` (word ids are reused
    /// as-is; unseen words still intern online). Pass a vocabulary
    /// fitted elsewhere to make a streaming detector reproduce an
    /// offline run exactly.
    #[must_use]
    pub fn with_vocabulary(config: EmergingConfig, vocab: Vocabulary) -> Self {
        Self {
            config,
            tokenizer: Tokenizer::new().drop_numbers(),
            vocab,
            oov: OovPolicy::Intern,
            aolda: None,
            windows_processed: 0,
            next_window_start: None,
        }
    }

    /// The current vocabulary.
    #[must_use]
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Fits the vocabulary over a corpus of alerts, *freezes* it
    /// (out-of-vocabulary words are dropped from then on), and
    /// initializes the topic model. Any previous state — vocabulary,
    /// model, window counters — is discarded, so refitting on a new
    /// corpus behaves exactly like a fresh detector.
    pub fn fit(&mut self, alerts: &[Alert]) {
        self.vocab.clear();
        for alert in alerts {
            let tokens = self.tokenize(alert);
            for token in &tokens {
                self.vocab.intern(token);
            }
        }
        // Guard against a degenerate empty vocabulary.
        if self.vocab.is_empty() {
            self.vocab.intern("alert");
        }
        self.oov = OovPolicy::Drop;
        self.aolda = Some(self.build_aolda(self.vocab.len()));
        self.windows_processed = 0;
        self.next_window_start = None;
    }

    /// Whether [`fit`](Self::fit) has been called (or a model already
    /// exists from streaming observation).
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.aolda.is_some()
    }

    /// Processes one wall-clock window of alerts, fit-free: unseen
    /// words are interned and the topic model's vocabulary widens in
    /// place. Feed windows in stream order, **including empty ones** —
    /// the adaptive prior and the emergence baseline assume adjacent
    /// windows are adjacent in time.
    pub fn observe_window(&mut self, alerts: &[&Alert]) -> EmergingReport {
        let docs: Vec<EmergingDoc> = alerts.iter().map(|a| EmergingDoc::from_alert(a)).collect();
        self.observe_docs(&docs)
    }

    /// [`observe_window`](Self::observe_window) over pre-extracted
    /// documents — the form ingestd's coordinator consumes after
    /// merging the per-shard forwards.
    pub fn observe_docs(&mut self, docs: &[EmergingDoc]) -> EmergingReport {
        let window_start = docs
            .iter()
            .map(|d| d.raised_at)
            .min()
            .map(|t| self.align_down(t))
            .or(self.next_window_start)
            .unwrap_or(SimTime::from_secs(0));

        // Allocation-light encode: tokens stream through one reused
        // scratch buffer straight into the interner, skipping the
        // per-token `String` and per-document counting map the batch
        // `tokenize` + `encode` pair would allocate. The stream visits
        // the same tokens in the same order (both differentially tested
        // in alertops-text), so word ids, counts, and therefore every
        // downstream topic are byte-identical to the batch path.
        let mut scratch = String::new();
        let mut bows: Vec<BagOfWords> = Vec::with_capacity(docs.len());
        let oov = self.oov;
        for d in docs {
            let mut doc = BagOfWords::new();
            let vocab = &mut self.vocab;
            self.tokenizer.for_each_token(&d.text, &mut scratch, |tok| {
                vocab.count_token(tok, oov, &mut doc);
            });
            doc.sort_unstable_by_key(|&(id, _)| id);
            bows.push(doc);
        }

        // Storm-load token budget (opt-in; see `EmergingBudget`).
        // Applied *after* encoding so vocabulary interning — and thus
        // word ids — never depends on which tokens the sampler keeps.
        if let Some(budget) = self.config.budget {
            apply_budget(&mut bows, &budget, self.windows_processed);
        }

        // Lazily create the model, or widen it if interning grew the
        // vocabulary. Ids only ever append, so widening is sound.
        let vocab_size = self.vocab.len().max(1);
        match self.aolda.as_mut() {
            None => self.aolda = Some(self.build_aolda(vocab_size)),
            Some(aolda) => {
                if vocab_size > aolda.config().lda.vocab_size {
                    aolda.grow_vocab(vocab_size);
                }
            }
        }
        let aolda = self.aolda.as_mut().expect("model just ensured");

        let window = aolda.process_window(&bows);
        let emerging_alerts = window
            .emerging_doc_indices()
            .into_iter()
            .map(|ix| docs[ix].alert)
            .collect();
        let report = EmergingReport {
            window_index: self.windows_processed,
            window_start,
            alert_count: docs.len(),
            emerging_topics: window.emerging_topics().len(),
            emerging_alerts,
        };
        self.windows_processed += 1;
        self.next_window_start = Some(window_start + self.config.window);
        report
    }

    /// Processes one window of alerts against the *fitted* model (the
    /// caller buckets them; see [`run`](Self::run) for the offline
    /// driver).
    ///
    /// # Panics
    ///
    /// Panics if the detector is not fitted.
    pub fn process_window(&mut self, alerts: &[&Alert]) -> EmergingReport {
        assert!(
            self.aolda.is_some(),
            "EmergingAlertDetector::fit must be called first"
        );
        self.observe_window(alerts)
    }

    /// Offline driver: fits the vocabulary on the whole stream, buckets
    /// it into wall-clock windows of the configured length, and
    /// processes **every** window from the first alert to the last —
    /// empty windows included, so the topic history never compares
    /// windows that are not adjacent in time, and `window_index` counts
    /// wall-clock buckets.
    pub fn run(&mut self, alerts: &[Alert]) -> Vec<EmergingReport> {
        self.fit(alerts);
        if alerts.is_empty() {
            return Vec::new();
        }
        let window_secs = self.config.window.as_secs().max(1);
        let (first, last) = alerts
            .iter()
            .map(|a| a.raised_at().as_secs())
            .fold((u64::MAX, 0), |(lo, hi), t| (lo.min(t), hi.max(t)));
        let origin = first - first % window_secs;

        // One bucketing pass over the stream (input order preserved
        // within each bucket), instead of re-filtering the whole slice
        // once per window.
        let bucket_count = ((last - origin) / window_secs + 1) as usize;
        let mut buckets: Vec<Vec<&Alert>> = vec![Vec::new(); bucket_count];
        for alert in alerts {
            let ix = ((alert.raised_at().as_secs() - origin) / window_secs) as usize;
            buckets[ix].push(alert);
        }
        buckets
            .iter()
            .map(|bucket| self.process_window(bucket))
            .collect()
    }

    fn build_aolda(&self, vocab_size: usize) -> AdaptiveOnlineLda {
        AdaptiveOnlineLda::new(AoldaConfig {
            lda: LdaConfig {
                num_topics: self.config.num_topics,
                vocab_size,
                seed: self.config.seed,
                ..LdaConfig::default()
            },
            adaptation_weight: self.config.adaptation_weight,
            emerging_threshold: self.config.emerging_threshold,
            passes_per_window: self.config.passes_per_window,
            ..AoldaConfig::default()
        })
    }

    fn align_down(&self, t: SimTime) -> SimTime {
        let window_secs = self.config.window.as_secs().max(1);
        SimTime::from_secs(t.as_secs() - t.as_secs() % window_secs)
    }

    fn tokenize(&self, alert: &Alert) -> Vec<String> {
        self.tokenizer
            .tokenize(&format!("{} {}", alert.title(), alert.service_name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, SimTime, StrategyId};

    fn alert(id: u64, title: &str, t: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(id % 7))
            .title(title)
            .service("Storage")
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    /// Hours 0..3: routine disk/cpu themes. Hour 3: a brand-new theme
    /// ("certificate rotation deadlock") appears.
    fn stream() -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut id = 0;
        for hour in 0..4u64 {
            for i in 0..12 {
                let title = if i % 2 == 0 {
                    "disk usage of storage node over threshold"
                } else {
                    "cpu utilization high on compute worker"
                };
                alerts.push(alert(id, title, hour * 3_600 + i * 240));
                id += 1;
            }
            if hour == 3 {
                for i in 0..10 {
                    alerts.push(alert(
                        id,
                        "certificate rotation deadlock renewal stuck handshake expired",
                        hour * 3_600 + 100 + i * 300,
                    ));
                    id += 1;
                }
            }
        }
        alerts.sort_by_key(Alert::raised_at);
        alerts
    }

    #[test]
    fn run_produces_one_report_per_nonempty_window() {
        let alerts = stream();
        let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
        let reports = detector.run(&alerts);
        assert_eq!(reports.len(), 4);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.window_index, i);
            assert_eq!(r.window_start, SimTime::from_secs(i as u64 * 3_600));
            assert!(r.alert_count > 0);
        }
    }

    #[test]
    fn novel_theme_is_flagged_in_its_window() {
        let alerts = stream();
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            num_topics: 3,
            ..EmergingConfig::default()
        });
        let reports = detector.run(&alerts);
        // The first window has no history: never emerging.
        assert!(reports[0].emerging_alerts.is_empty());
        // The novel "certificate" theme lands in window 3.
        let last = &reports[3];
        assert!(
            !last.emerging_alerts.is_empty(),
            "no emerging alerts flagged in the novel window"
        );
        // The flagged alerts should mostly be certificate alerts (ids >= 48).
        let novel_hits = last.emerging_alerts.iter().filter(|id| id.0 >= 48).count();
        assert!(
            novel_hits * 2 >= last.emerging_alerts.len(),
            "emerging alerts are mostly stale: {:?}",
            last.emerging_alerts
        );
    }

    #[test]
    fn stable_stream_stays_quiet() {
        let mut alerts = Vec::new();
        for hour in 0..4u64 {
            for i in 0..10 {
                alerts.push(alert(
                    hour * 100 + i,
                    "disk usage of storage node over threshold",
                    hour * 3_600 + i * 300,
                ));
            }
        }
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            num_topics: 2,
            ..EmergingConfig::default()
        });
        let reports = detector.run(&alerts);
        let total_emerging: usize = reports.iter().map(|r| r.emerging_alerts.len()).sum();
        assert_eq!(total_emerging, 0, "stable stream flagged {total_emerging}");
    }

    #[test]
    fn empty_stream_is_fine() {
        let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
        let reports = detector.run(&[]);
        assert!(reports.is_empty());
        assert!(detector.is_fitted());
    }

    #[test]
    #[should_panic(expected = "fit must be called")]
    fn process_without_fit_panics() {
        let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
        let _ = detector.process_window(&[]);
    }

    #[test]
    fn deterministic() {
        let alerts = stream();
        let mut a = EmergingAlertDetector::new(EmergingConfig::default());
        let mut b = EmergingAlertDetector::new(EmergingConfig::default());
        assert_eq!(a.run(&alerts), b.run(&alerts));
    }

    /// Regression (windowing bug): a silent hour used to be skipped
    /// entirely, so the JS-divergence history compared windows that
    /// were not adjacent in time and `window_index` drifted off the
    /// wall clock. Empty buckets now produce explicit empty reports.
    #[test]
    fn gap_in_stream_yields_explicit_empty_window() {
        let mut alerts = Vec::new();
        let mut id = 0;
        // Hours 0, 1 and 3 are active; hour 2 is silent.
        for hour in [0u64, 1, 3] {
            for i in 0..10 {
                alerts.push(alert(
                    id,
                    "disk usage of storage node over threshold",
                    hour * 3_600 + i * 300,
                ));
                id += 1;
            }
        }
        let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
        let reports = detector.run(&alerts);
        assert_eq!(reports.len(), 4, "the silent hour must appear as a window");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.window_index, i, "indices count wall-clock buckets");
            assert_eq!(r.window_start, SimTime::from_secs(i as u64 * 3_600));
        }
        let silent = &reports[2];
        assert_eq!(silent.alert_count, 0);
        assert_eq!(silent.emerging_topics, 0);
        assert!(silent.emerging_alerts.is_empty());
    }

    /// Regression (refit bug): `fit` used to keep the previous corpus's
    /// vocabulary, so a reused detector silently grew its vocabulary
    /// and diverged from a fresh one. Refit now equals fresh.
    #[test]
    fn refit_matches_fresh_detector() {
        let first_corpus = stream();
        let mut second_corpus = Vec::new();
        for hour in 0..3u64 {
            for i in 0..8 {
                second_corpus.push(alert(
                    hour * 100 + i,
                    "replication lag on database follower exceeds budget",
                    hour * 3_600 + i * 400,
                ));
            }
        }
        let config = EmergingConfig::default();

        let mut reused = EmergingAlertDetector::new(config.clone());
        reused.run(&first_corpus);
        let refit_reports = reused.run(&second_corpus);

        let mut fresh = EmergingAlertDetector::new(config);
        let fresh_reports = fresh.run(&second_corpus);

        assert_eq!(refit_reports, fresh_reports);
        assert_eq!(
            reused.vocabulary().len(),
            fresh.vocabulary().len(),
            "refit kept stale tokens from the previous corpus"
        );
    }

    /// The streaming API needs no fit: the vocabulary is interned
    /// online and the model widens as new words arrive, yet a genuinely
    /// novel window is still flagged.
    #[test]
    fn observe_window_is_fit_free() {
        let alerts = stream();
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            num_topics: 3,
            ..EmergingConfig::default()
        });
        let window_secs = 3_600;
        let mut reports = Vec::new();
        for hour in 0..4u64 {
            let bucket: Vec<&Alert> = alerts
                .iter()
                .filter(|a| a.raised_at().as_secs() / window_secs == hour)
                .collect();
            reports.push(detector.observe_window(&bucket));
        }
        assert!(
            !detector.vocabulary().is_empty(),
            "vocabulary interned online"
        );
        assert!(reports[0].emerging_alerts.is_empty(), "no history yet");
        assert!(
            !reports[3].emerging_alerts.is_empty(),
            "novel certificate theme not flagged in streaming mode"
        );
        let novel_hits = reports[3]
            .emerging_alerts
            .iter()
            .filter(|id| id.0 >= 48)
            .count();
        assert!(novel_hits * 2 >= reports[3].emerging_alerts.len());
    }

    fn total_tokens(bows: &[BagOfWords]) -> usize {
        bows.iter()
            .map(|d| d.iter().map(|&(_, c)| c as usize).sum::<usize>())
            .sum()
    }

    #[test]
    fn budget_under_cap_is_untouched() {
        let mut bows: Vec<BagOfWords> = vec![vec![(0, 2), (1, 1)], vec![(2, 3)]];
        let original = bows.clone();
        let kept = apply_budget(&mut bows, &EmergingBudget::new(6, 9), 0);
        assert_eq!(kept, 6, "window is exactly at the cap");
        assert_eq!(bows, original, "at/under the cap nothing may change");
    }

    #[test]
    fn budget_over_cap_keeps_exactly_the_cap_and_is_seed_replayable() {
        let make = || -> Vec<BagOfWords> {
            (0..10)
                .map(|i| vec![(i, 3), (i + 10, 2), (i + 20, 1)])
                .collect()
        };
        let mut a = make();
        let mut b = make();
        assert_eq!(total_tokens(&a), 60);
        let kept_a = apply_budget(&mut a, &EmergingBudget::new(25, 7), 4);
        let kept_b = apply_budget(&mut b, &EmergingBudget::new(25, 7), 4);
        assert_eq!(kept_a, 25);
        assert_eq!(kept_b, 25);
        assert_eq!(total_tokens(&a), 25, "exactly the cap survives");
        assert_eq!(a, b, "same seed + window index → same sampled token set");

        // A different seed or window index draws a different sample.
        let mut c = make();
        apply_budget(&mut c, &EmergingBudget::new(25, 8), 4);
        let mut d = make();
        apply_budget(&mut d, &EmergingBudget::new(25, 7), 5);
        assert!(a != c || a != d, "sampling ignored seed and window index");
    }

    #[test]
    fn budget_preserves_doc_slots_and_word_order() {
        let mut bows: Vec<BagOfWords> = (0..8).map(|i| vec![(i, 4), (i + 8, 4)]).collect();
        apply_budget(&mut bows, &EmergingBudget::new(10, 3), 0);
        assert_eq!(bows.len(), 8, "emptied docs keep their slot");
        for doc in &bows {
            let ids: Vec<usize> = doc.iter().map(|&(id, _)| id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "within-doc id order preserved");
        }
    }

    /// A budget generous enough never to engage leaves the whole
    /// detector run byte-identical to a budget-free run — the adaptive
    /// "off under the cap" guarantee at the report level.
    #[test]
    fn unengaged_budget_run_matches_budget_free_run() {
        let alerts = stream();
        let mut plain = EmergingAlertDetector::new(EmergingConfig::default());
        let mut budgeted = EmergingAlertDetector::new(EmergingConfig {
            budget: Some(EmergingBudget::new(1_000_000, 99)),
            ..EmergingConfig::default()
        });
        assert_eq!(plain.run(&alerts), budgeted.run(&alerts));
    }

    /// With the cap low enough to engage, same-seed runs still agree
    /// with each other (replayability at the report level).
    #[test]
    fn engaged_budget_is_deterministic_across_runs() {
        let alerts = stream();
        let config = EmergingConfig {
            budget: Some(EmergingBudget::new(20, 42)),
            ..EmergingConfig::default()
        };
        let mut a = EmergingAlertDetector::new(config.clone());
        let mut b = EmergingAlertDetector::new(config);
        assert_eq!(a.run(&alerts), b.run(&alerts));
    }

    /// A streaming detector seeded with the offline fit's vocabulary
    /// reproduces the offline run byte-for-byte, gaps included.
    #[test]
    fn streaming_with_preagreed_vocabulary_matches_offline_run() {
        let mut alerts = stream();
        // Punch a gap: drop hour 2 so the stream has a silent window.
        alerts.retain(|a| a.raised_at().as_secs() / 3_600 != 2);
        let config = EmergingConfig::default();

        let mut offline = EmergingAlertDetector::new(config.clone());
        let offline_reports = offline.run(&alerts);

        let mut fitted = EmergingAlertDetector::new(config.clone());
        fitted.fit(&alerts);
        let mut streaming =
            EmergingAlertDetector::with_vocabulary(config, fitted.vocabulary().clone());
        let streaming_reports: Vec<EmergingReport> = (0..4u64)
            .map(|hour| {
                let bucket: Vec<&Alert> = alerts
                    .iter()
                    .filter(|a| a.raised_at().as_secs() / 3_600 == hour)
                    .collect();
                streaming.observe_window(&bucket)
            })
            .collect();
        assert_eq!(offline_reports, streaming_reports);
    }
}
