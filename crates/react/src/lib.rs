//! Postmortem reactions to alert anti-patterns (DSN'22, RQ3).
//!
//! When the number of alerts becomes too large for manual triage, the
//! paper's OCEs take four kinds of reactions, all implemented here:
//!
//! | Id | Reaction | Module |
//! |----|----------|--------|
//! | R1 | Alert blocking | [`blocking`] — rule-based suppression of transient / toggling / repeating noise |
//! | R2 | Alert aggregation | [`aggregation`] — dedup into groups, "use the number of alerts as another feature" |
//! | R3 | Alert correlation analysis | [`correlation`] — strategy-dependency rules + service topology → diagnose source alerts only |
//! | R4 | Emerging alert detection | [`emerging`] — adaptive online LDA over alert-text windows to flag alerts with no historical counterpart |
//!
//! [`pipeline`] chains them in the order OCEs apply them (block →
//! aggregate → correlate) and reports per-stage volume reduction — the
//! quantity Fig. 2(c) of the paper asks OCEs to rate the effectiveness
//! of. Two governance extensions round the reactions out: [`audit`]
//! measures blocking-rule health (the paper's "when to invalidate these
//! rules" problem), and [`escalation`] proposes incidents from severe
//! correlated clusters (Table I's "a group of related alerts can
//! escalate to an incident").
//!
//! # Example
//!
//! ```
//! use alertops_model::{Alert, AlertId, SimTime, StrategyId};
//! use alertops_react::blocking::{AlertBlocker, BlockRule};
//!
//! let alerts: Vec<Alert> = (0..4)
//!     .map(|i| {
//!         Alert::builder(AlertId(i), StrategyId(i % 2))
//!             .raised_at(SimTime::from_secs(i * 60))
//!             .build()
//!     })
//!     .collect();
//! let mut blocker = AlertBlocker::new();
//! blocker.add_rule(BlockRule::for_strategy("mute noisy rule", StrategyId(0)));
//! let outcome = blocker.apply(&alerts);
//! assert_eq!(outcome.blocked.len(), 2);
//! assert_eq!(outcome.passed.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod aggregation;
pub mod audit;
pub mod blocking;
pub mod correlation;
pub mod emerging;
pub mod escalation;
pub mod metrics;
pub mod pipeline;

pub use aggregation::{aggregate, reduction_ratio, AggregationConfig, AlertGroup, GroupKey};
pub use audit::{audit_blocker, audit_blocker_with, review_queue, AuditConfig, RuleAudit};
pub use blocking::{AlertBlocker, BlockCriterion, BlockOutcome, BlockRule};
pub use correlation::{AlertCorrelator, CorrelatedCluster, StrategyDependencies};
pub use emerging::{
    apply_budget, EmergingAlertDetector, EmergingBudget, EmergingConfig, EmergingDoc,
    EmergingReport,
};
pub use escalation::{propose_incidents, EscalationConfig, EscalationReason, IncidentProposal};
pub use metrics::ReactMetrics;
pub use pipeline::{PipelineReport, ReactionPipeline, StageStat};
