//! R2 — alert aggregation.
//!
//! "OCEs will set rules to aggregate alerts in a period and use the
//! number of alerts as another feature. By doing so, OCEs can quickly
//! identify critical alerts and focus more on the information provided
//! by them" (§III-C). Alerts are grouped by key (strategy, or the
//! normalized title template for cross-strategy duplicates) within
//! fixed tumbling windows; each group keeps a representative, the count,
//! and the maximum severity.

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, AlertId, Severity, SimDuration, StrategyId, TimeRange};
use alertops_text::extract_template;

/// How alerts are keyed into groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum GroupKey {
    /// Group by the generating strategy (exact duplicates).
    Strategy,
    /// Group by the normalized title template (near-duplicates across
    /// strategies, e.g. per-instance clones of one rule).
    TitleTemplate,
}

/// Configuration for [`aggregate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationConfig {
    /// Tumbling window length.
    pub window: SimDuration,
    /// Grouping key.
    pub key: GroupKey,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        Self {
            window: SimDuration::from_mins(30),
            key: GroupKey::Strategy,
        }
    }
}

/// One aggregated group of duplicate alerts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertGroup {
    /// The group key rendered as text (strategy id or title template).
    pub key: String,
    /// The strategy of the representative alert.
    pub strategy: StrategyId,
    /// The earliest alert of the group — what the OCE actually reads.
    pub representative: AlertId,
    /// "The number of alerts as another feature."
    pub count: usize,
    /// All member ids, in raise order.
    pub members: Vec<AlertId>,
    /// The group's time span (first raise .. last raise + 1s).
    pub window: TimeRange,
    /// The maximum severity across members (for prioritization).
    pub max_severity: Severity,
}

/// Aggregates `alerts` (assumed sorted by raise time, as produced by the
/// simulator and monitor) into groups per `(key, tumbling window)`.
///
/// Count preservation holds: the sum of group counts equals the input
/// length, and every input alert appears in exactly one group.
///
/// # Panics
///
/// Panics if the configured window is zero.
#[must_use]
pub fn aggregate(alerts: &[Alert], config: &AggregationConfig) -> Vec<AlertGroup> {
    assert!(
        !config.window.is_zero(),
        "aggregation window must be positive"
    );
    use std::collections::BTreeMap;
    // (window index, key) → member indices.
    let mut buckets: BTreeMap<(u64, String), Vec<usize>> = BTreeMap::new();
    for (ix, alert) in alerts.iter().enumerate() {
        let window_ix = alert.raised_at().as_secs() / config.window.as_secs();
        let key = match config.key {
            GroupKey::Strategy => alert.strategy().to_string(),
            GroupKey::TitleTemplate => extract_template(alert.title()),
        };
        buckets.entry((window_ix, key)).or_default().push(ix);
    }
    let mut groups: Vec<AlertGroup> = buckets
        .into_iter()
        .map(|((_, key), ixs)| {
            let members: Vec<&Alert> = ixs.iter().map(|&i| &alerts[i]).collect();
            let first = members
                .iter()
                .min_by_key(|a| (a.raised_at(), a.id()))
                .expect("bucket is nonempty");
            let last_raise = members
                .iter()
                .map(|a| a.raised_at())
                .max()
                .expect("bucket is nonempty");
            AlertGroup {
                key,
                strategy: first.strategy(),
                representative: first.id(),
                count: members.len(),
                members: {
                    let mut ids: Vec<AlertId> = members.iter().map(|a| a.id()).collect();
                    ids.sort_unstable();
                    ids
                },
                window: TimeRange::new(
                    first.raised_at(),
                    last_raise.saturating_add(SimDuration::from_secs(1)),
                ),
                max_severity: members
                    .iter()
                    .map(|a| a.severity())
                    .max()
                    .expect("bucket is nonempty"),
            }
        })
        .collect();
    groups.sort_by_key(|g| (g.window.start(), g.representative));
    groups
}

/// The volume reduction achieved: `1 - groups/alerts` (0 for empty
/// input).
#[must_use]
pub fn reduction_ratio(input_count: usize, group_count: usize) -> f64 {
    if input_count == 0 {
        0.0
    } else {
        1.0 - group_count as f64 / input_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::SimTime;

    fn alert(id: u64, strategy: u64, title: &str, severity: Severity, t: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(strategy))
            .title(title)
            .severity(severity)
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    #[test]
    fn groups_duplicates_within_window() {
        let alerts = vec![
            alert(0, 1, "disk full", Severity::Major, 0),
            alert(1, 1, "disk full", Severity::Major, 60),
            alert(2, 1, "disk full", Severity::Critical, 120),
            alert(3, 2, "probe lost", Severity::Critical, 100),
        ];
        let groups = aggregate(&alerts, &AggregationConfig::default());
        assert_eq!(groups.len(), 2);
        let disk = groups.iter().find(|g| g.strategy == StrategyId(1)).unwrap();
        assert_eq!(disk.count, 3);
        assert_eq!(disk.representative, AlertId(0));
        assert_eq!(disk.max_severity, Severity::Critical);
    }

    #[test]
    fn count_preservation() {
        let alerts: Vec<Alert> = (0..50)
            .map(|i| alert(i, i % 5, "t", Severity::Warning, i * 97))
            .collect();
        let groups = aggregate(&alerts, &AggregationConfig::default());
        let total: usize = groups.iter().map(|g| g.count).sum();
        assert_eq!(total, alerts.len());
        // Every alert appears in exactly one group.
        let mut seen: Vec<AlertId> = groups.iter().flat_map(|g| g.members.clone()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), alerts.len());
    }

    #[test]
    fn window_boundary_splits_groups() {
        let config = AggregationConfig {
            window: SimDuration::from_mins(30),
            key: GroupKey::Strategy,
        };
        let alerts = vec![
            alert(0, 1, "x", Severity::Minor, 100),
            alert(1, 1, "x", Severity::Minor, 1_900), // same 30-min window [0, 1800)? No: 1900 is next
        ];
        let groups = aggregate(&alerts, &config);
        assert_eq!(groups.len(), 2, "tumbling boundary at 1800s must split");
    }

    #[test]
    fn template_key_merges_near_duplicates() {
        let alerts = vec![
            alert(0, 1, "disk usage of vm-1 over 90%", Severity::Minor, 0),
            alert(1, 2, "disk usage of vm-2 over 91%", Severity::Minor, 60),
            alert(2, 3, "memory leak detected", Severity::Minor, 90),
        ];
        let by_strategy = aggregate(&alerts, &AggregationConfig::default());
        assert_eq!(by_strategy.len(), 3);
        let by_template = aggregate(
            &alerts,
            &AggregationConfig {
                key: GroupKey::TitleTemplate,
                ..AggregationConfig::default()
            },
        );
        assert_eq!(by_template.len(), 2);
        let merged = by_template.iter().find(|g| g.count == 2).unwrap();
        assert!(merged.key.contains("<id>"));
    }

    #[test]
    fn reduction_ratio_math() {
        assert_eq!(reduction_ratio(0, 0), 0.0);
        assert_eq!(reduction_ratio(100, 100), 0.0);
        assert!((reduction_ratio(100, 10) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert!(aggregate(&[], &AggregationConfig::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let _ = aggregate(
            &[],
            &AggregationConfig {
                window: SimDuration::ZERO,
                key: GroupKey::Strategy,
            },
        );
    }

    #[test]
    fn groups_sorted_by_time() {
        let alerts = vec![
            alert(0, 1, "x", Severity::Minor, 5_000),
            alert(1, 2, "y", Severity::Minor, 100),
        ];
        let groups = aggregate(&alerts, &AggregationConfig::default());
        assert!(groups[0].window.start() <= groups[1].window.start());
    }
}
