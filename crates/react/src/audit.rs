//! Blocking-rule auditing.
//!
//! The paper's §IV pain point: "How to define the blocking rules and
//! when to invalidate these rules becomes a crucial problem … outdated
//! reactive measures is hard to detect." This module makes rule health
//! measurable: per-rule hit rates over daily windows, staleness (a rule
//! that stopped matching — its noise source was fixed), and harm (a rule
//! that suppressed alerts coinciding with incidents).

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, Incident, SimDuration};

use crate::blocking::AlertBlocker;

/// Configuration for [`audit_blocker`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// A rule with zero hits in the trailing `stale_after_days` of the
    /// audited period is reported stale.
    pub stale_after_days: u64,
    /// Lookahead when deciding whether a blocked alert indicated an
    /// incident (same early-warning semantics as the detectors).
    pub incident_lookahead: SimDuration,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            stale_after_days: 7,
            incident_lookahead: SimDuration::from_mins(30),
        }
    }
}

/// The health verdict for one blocking rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleAudit {
    /// The rule's name (from [`BlockRule::name`](crate::BlockRule)).
    pub rule: String,
    /// Total alerts this rule suppressed over the audited period.
    pub total_hits: usize,
    /// Hits per day-bucket of the audited period (index 0 = first day).
    pub daily_hits: Vec<usize>,
    /// No hits in the trailing window: the noise source is gone and the
    /// rule should be retired before it eats a real alert some day.
    pub stale: bool,
    /// Suppressed alerts that indicated an incident on their service —
    /// the rule is actively harmful if this is non-zero.
    pub suppressed_indicative: usize,
}

impl RuleAudit {
    /// Whether the rule should be surfaced for review (stale or harmful).
    #[must_use]
    pub fn needs_review(&self) -> bool {
        self.stale || self.suppressed_indicative > 0
    }
}

/// Audits every rule of `blocker` against an alert history (time-sorted)
/// and the incident record. Returns one [`RuleAudit`] per rule, in rule
/// order.
///
/// The harm check here is *time-overlap only* (an incident somewhere in
/// the system covered the suppressed alert's raise window) because the
/// alert alone does not identify its service. When the caller can map an
/// alert to its service, [`audit_blocker_with`] takes a precise
/// indicativeness predicate instead.
///
/// A rule created *during* the period naturally shows zero hits in its
/// pre-creation days; pass only the post-creation history for precise
/// staleness. An empty alert history marks every rule stale (nothing to
/// justify keeping it).
#[must_use]
pub fn audit_blocker(
    blocker: &AlertBlocker,
    alerts: &[Alert],
    incidents: &[Incident],
    config: &AuditConfig,
) -> Vec<RuleAudit> {
    audit_blocker_with(blocker, alerts, config, |alert| {
        incidents
            .iter()
            .any(|inc| inc.covers_or_follows(alert.raised_at(), config.incident_lookahead))
    })
}

/// [`audit_blocker`] with a caller-supplied indicativeness predicate —
/// typically "an incident on *this alert's service* covered it", built
/// from the strategy catalog.
#[must_use]
pub fn audit_blocker_with(
    blocker: &AlertBlocker,
    alerts: &[Alert],
    config: &AuditConfig,
    is_indicative: impl Fn(&Alert) -> bool,
) -> Vec<RuleAudit> {
    // Scan for the day range rather than trusting first/last order, so
    // unsorted input degrades gracefully instead of underflowing.
    let day_range = alerts.iter().map(|a| a.raised_at().day_bucket()).fold(
        None,
        |acc: Option<(u64, u64)>, d| match acc {
            None => Some((d, d)),
            Some((lo, hi)) => Some((lo.min(d), hi.max(d))),
        },
    );
    let (first_day, last_day) = match day_range {
        Some(range) => range,
        None => {
            return blocker
                .rules()
                .iter()
                .map(|rule| RuleAudit {
                    rule: rule.name.clone(),
                    total_hits: 0,
                    daily_hits: Vec::new(),
                    stale: true,
                    suppressed_indicative: 0,
                })
                .collect()
        }
    };
    let days = (last_day - first_day + 1) as usize;
    let mut audits: Vec<RuleAudit> = blocker
        .rules()
        .iter()
        .map(|rule| RuleAudit {
            rule: rule.name.clone(),
            total_hits: 0,
            daily_hits: vec![0; days],
            stale: false,
            suppressed_indicative: 0,
        })
        .collect();

    for alert in alerts {
        // First matching rule gets the credit, mirroring apply().
        let Some(ix) = blocker.rules().iter().position(|r| r.blocks(alert)) else {
            continue;
        };
        let audit = &mut audits[ix];
        audit.total_hits += 1;
        let day = (alert.raised_at().day_bucket() - first_day) as usize;
        audit.daily_hits[day] += 1;
        // Harm check: did the suppressed alert indicate an incident?
        if is_indicative(alert) {
            audit.suppressed_indicative += 1;
        }
    }

    let stale_window = config.stale_after_days.min(days as u64) as usize;
    for audit in &mut audits {
        let tail = &audit.daily_hits[days - stale_window..];
        audit.stale = tail.iter().all(|&h| h == 0);
    }
    audits
}

/// Convenience: the subset of audits that need review, harmful first,
/// then stale, each group by descending hits.
#[must_use]
pub fn review_queue(audits: &[RuleAudit]) -> Vec<&RuleAudit> {
    let mut queue: Vec<&RuleAudit> = audits.iter().filter(|a| a.needs_review()).collect();
    queue.sort_by_key(|a| {
        (
            std::cmp::Reverse(a.suppressed_indicative),
            std::cmp::Reverse(a.total_hits),
        )
    });
    queue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockRule;
    use alertops_model::{
        AlertId, IncidentId, ServiceId, Severity, SimTime, StrategyId, SECS_PER_DAY,
    };

    fn alert(id: u64, strategy: u64, day: u64, offset: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(strategy))
            .raised_at(SimTime::from_secs(day * SECS_PER_DAY + offset))
            .build()
    }

    fn blocker(strategies: &[u64]) -> AlertBlocker {
        strategies
            .iter()
            .map(|&s| BlockRule::for_strategy(format!("mute-{s}"), StrategyId(s)))
            .collect()
    }

    #[test]
    fn counts_hits_per_day() {
        let blocker = blocker(&[1]);
        let alerts = vec![
            alert(0, 1, 0, 100),
            alert(1, 1, 0, 200),
            alert(2, 1, 2, 100),
            alert(3, 9, 2, 200), // unmatched
        ];
        let audits = audit_blocker(&blocker, &alerts, &[], &AuditConfig::default());
        assert_eq!(audits.len(), 1);
        assert_eq!(audits[0].total_hits, 3);
        assert_eq!(audits[0].daily_hits, vec![2, 0, 1]);
        assert!(!audits[0].stale);
        assert_eq!(audits[0].suppressed_indicative, 0);
    }

    #[test]
    fn rule_with_quiet_tail_is_stale() {
        let blocker = blocker(&[1, 2]);
        // 10-day history: rule 1 hits early only; rule 2 hits daily.
        let mut alerts = vec![alert(0, 1, 0, 100), alert(1, 1, 1, 100)];
        for day in 0..10 {
            alerts.push(alert(100 + day, 2, day, 500));
        }
        alerts.sort_by_key(Alert::raised_at);
        let audits = audit_blocker(&blocker, &alerts, &[], &AuditConfig::default());
        assert!(audits[0].stale, "rule 1 stopped matching 8 days ago");
        assert!(!audits[1].stale);
        assert!(audits[0].needs_review());
        assert!(!audits[1].needs_review());
    }

    #[test]
    fn harmful_rule_is_flagged() {
        let blocker = blocker(&[1]);
        let alerts = vec![alert(0, 1, 0, 1_000)];
        let mut incident = Incident::new(
            IncidentId(0),
            ServiceId(0),
            Severity::Critical,
            SimTime::from_secs(500),
        );
        incident.mitigate(SimTime::from_secs(5_000));
        let audits = audit_blocker(&blocker, &alerts, &[incident], &AuditConfig::default());
        assert_eq!(audits[0].suppressed_indicative, 1);
        assert!(audits[0].needs_review());
    }

    #[test]
    fn empty_history_marks_everything_stale() {
        let blocker = blocker(&[1, 2, 3]);
        let audits = audit_blocker(&blocker, &[], &[], &AuditConfig::default());
        assert_eq!(audits.len(), 3);
        assert!(audits.iter().all(|a| a.stale && a.total_hits == 0));
    }

    #[test]
    fn review_queue_orders_harmful_before_stale() {
        let audits = vec![
            RuleAudit {
                rule: "stale-big".into(),
                total_hits: 50,
                daily_hits: vec![50, 0],
                stale: true,
                suppressed_indicative: 0,
            },
            RuleAudit {
                rule: "healthy".into(),
                total_hits: 10,
                daily_hits: vec![5, 5],
                stale: false,
                suppressed_indicative: 0,
            },
            RuleAudit {
                rule: "harmful".into(),
                total_hits: 5,
                daily_hits: vec![2, 3],
                stale: false,
                suppressed_indicative: 2,
            },
        ];
        let queue = review_queue(&audits);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue[0].rule, "harmful");
        assert_eq!(queue[1].rule, "stale-big");
    }

    #[test]
    fn unsorted_input_degrades_gracefully() {
        let blocker = blocker(&[1]);
        // Later day first: the day range must still be computed correctly.
        let alerts = vec![alert(0, 1, 5, 10), alert(1, 1, 1, 10)];
        let audits = audit_blocker(&blocker, &alerts, &[], &AuditConfig::default());
        assert_eq!(audits[0].total_hits, 2);
        assert_eq!(audits[0].daily_hits.len(), 5);
        assert_eq!(audits[0].daily_hits[0], 1); // day 1
        assert_eq!(audits[0].daily_hits[4], 1); // day 5
    }

    #[test]
    fn short_histories_use_available_days_for_staleness() {
        // 2-day history with hits on both days: not stale even though the
        // configured window is 7 days.
        let blocker = blocker(&[1]);
        let alerts = vec![alert(0, 1, 0, 100), alert(1, 1, 1, 100)];
        let audits = audit_blocker(&blocker, &alerts, &[], &AuditConfig::default());
        assert!(!audits[0].stale);
    }
}
