//! The reaction pipeline: block → aggregate → correlate.
//!
//! Composes R1–R3 in the order OCEs apply them during a flood and
//! reports the volume reduction at every stage — the practical
//! "effectiveness" OCEs rate in the paper's Fig. 2(c). (R4, emerging
//! alert detection, is an orthogonal *early-warning* channel rather than
//! a volume reducer; run it separately via
//! [`EmergingAlertDetector`](crate::EmergingAlertDetector).)

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, AlertId};

use crate::aggregation::{aggregate, AggregationConfig};
use crate::blocking::AlertBlocker;
use crate::correlation::AlertCorrelator;
use crate::metrics::ReactMetrics;

/// One stage's contribution to volume reduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Stage name ("input", "blocking", "aggregation", "correlation").
    pub stage: String,
    /// Items remaining after the stage.
    pub remaining: usize,
}

/// The end-to-end pipeline report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Volume after each stage, starting with the raw input.
    pub stages: Vec<StageStat>,
    /// The final triage items: one source alert per correlated cluster
    /// of aggregated representatives.
    pub triage: Vec<AlertId>,
    /// `1 - triage/input` (0 for empty input).
    pub reduction: f64,
}

impl PipelineReport {
    /// Items remaining after the named stage, if present.
    #[must_use]
    pub fn remaining_after(&self, stage: &str) -> Option<usize> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.remaining)
    }
}

/// The composed reaction pipeline.
#[derive(Debug, Default)]
pub struct ReactionPipeline {
    blocker: AlertBlocker,
    aggregation: AggregationConfig,
    correlator: AlertCorrelator,
    metrics: Option<ReactMetrics>,
}

impl ReactionPipeline {
    /// A pipeline with no blocking rules, default aggregation, and no
    /// correlation knowledge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the blocker (R1).
    #[must_use]
    pub fn with_blocker(mut self, blocker: AlertBlocker) -> Self {
        self.blocker = blocker;
        self
    }

    /// Sets the aggregation configuration (R2).
    #[must_use]
    pub fn with_aggregation(mut self, config: AggregationConfig) -> Self {
        self.aggregation = config;
        self
    }

    /// Sets the correlator (R3).
    #[must_use]
    pub fn with_correlator(mut self, correlator: AlertCorrelator) -> Self {
        self.correlator = correlator;
        self
    }

    /// Attaches metric handles: per-stage wall time and volume
    /// counters. Metrics are observer-only — [`run`](Self::run) returns
    /// the same report with or without them.
    #[must_use]
    pub fn with_metrics(mut self, metrics: ReactMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Runs the pipeline over a time-sorted alert stream.
    #[must_use]
    pub fn run(&self, alerts: &[Alert]) -> PipelineReport {
        let input = alerts.len();
        let mut stages = vec![StageStat {
            stage: "input".to_owned(),
            remaining: input,
        }];

        // R1 — blocking.
        let outcome = {
            let _span = self.metrics.as_ref().map(|m| m.stage_timer(0));
            self.blocker.apply(alerts)
        };
        let passed: Vec<Alert> = outcome.passed.iter().map(|&a| a.clone()).collect();
        stages.push(StageStat {
            stage: "blocking".to_owned(),
            remaining: passed.len(),
        });

        // R2 — aggregation.
        let groups = {
            let _span = self.metrics.as_ref().map(|m| m.stage_timer(1));
            aggregate(&passed, &self.aggregation)
        };
        stages.push(StageStat {
            stage: "aggregation".to_owned(),
            remaining: groups.len(),
        });

        // R3 — correlation over group representatives.
        let _span = self.metrics.as_ref().map(|m| m.stage_timer(2));
        let representatives: Vec<Alert> = {
            // One id→index map over the passed set instead of a linear
            // scan per group (was O(groups × passed)).
            let index_of: HashMap<AlertId, usize> = passed
                .iter()
                .enumerate()
                .map(|(ix, a)| (a.id(), ix))
                .collect();
            let mut reps: Vec<Alert> = groups
                .iter()
                .map(|g| {
                    let ix = *index_of
                        .get(&g.representative)
                        .expect("representative comes from the passed set");
                    passed[ix].clone()
                })
                .collect();
            reps.sort_by_key(|a| (a.raised_at(), a.id()));
            reps
        };
        let clusters = self.correlator.correlate(&representatives);
        drop(_span);
        stages.push(StageStat {
            stage: "correlation".to_owned(),
            remaining: clusters.len(),
        });
        if let Some(m) = &self.metrics {
            m.record_volumes(
                input as u64,
                (input - passed.len()) as u64,
                groups.len() as u64,
                clusters.len() as u64,
            );
        }

        let triage: Vec<AlertId> = clusters.iter().map(|c| c.source).collect();
        let reduction = if input == 0 {
            0.0
        } else {
            1.0 - triage.len() as f64 / input as f64
        };
        PipelineReport {
            stages,
            triage,
            reduction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockRule;
    use crate::correlation::StrategyDependencies;
    use alertops_model::{SimTime, StrategyId};

    fn alert(id: u64, strategy: u64, title: &str, t: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(strategy))
            .title(title)
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    /// A flood: 20 noisy alerts from strategy 9, 3 duplicates of
    /// strategy 1, and a derived alert of strategy 2.
    fn flood() -> Vec<Alert> {
        let mut alerts = Vec::new();
        for i in 0..20 {
            alerts.push(alert(i, 9, "haproxy process number warning", i * 30));
        }
        for i in 20..23 {
            alerts.push(alert(i, 1, "disk full", 100 + (i - 20) * 60));
        }
        alerts.push(alert(23, 2, "commit failed", 400));
        alerts.sort_by_key(Alert::raised_at);
        alerts
    }

    fn pipeline() -> ReactionPipeline {
        let blocker: AlertBlocker = [BlockRule::for_strategy("mute haproxy", StrategyId(9))]
            .into_iter()
            .collect();
        let deps: StrategyDependencies = [(StrategyId(1), StrategyId(2))].into_iter().collect();
        ReactionPipeline::new()
            .with_blocker(blocker)
            .with_correlator(AlertCorrelator::new().with_strategy_dependencies(deps))
    }

    #[test]
    fn stages_shrink_monotonically() {
        let report = pipeline().run(&flood());
        let volumes: Vec<usize> = report.stages.iter().map(|s| s.remaining).collect();
        for w in volumes.windows(2) {
            assert!(w[1] <= w[0], "stage increased volume: {volumes:?}");
        }
    }

    #[test]
    fn flood_collapses_to_one_triage_item() {
        let report = pipeline().run(&flood());
        // 24 input → block 20 → 4 remain → aggregate disk-full dupes →
        // 2 groups → correlation attaches commit-failed to disk-full →
        // 1 triage item.
        assert_eq!(report.remaining_after("input"), Some(24));
        assert_eq!(report.remaining_after("blocking"), Some(4));
        assert_eq!(report.remaining_after("aggregation"), Some(2));
        assert_eq!(report.remaining_after("correlation"), Some(1));
        assert_eq!(report.triage.len(), 1);
        assert!((report.reduction - (1.0 - 1.0 / 24.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_pipeline_on_empty_input() {
        let report = ReactionPipeline::new().run(&[]);
        assert_eq!(report.triage.len(), 0);
        assert_eq!(report.reduction, 0.0);
    }

    #[test]
    fn noop_pipeline_still_aggregates_duplicates() {
        let report = ReactionPipeline::new().run(&flood());
        // No blocking, no correlation knowledge: aggregation still folds
        // the 20 haproxy alerts within windows.
        let aggregated = report.remaining_after("aggregation").unwrap();
        assert!(aggregated < 24);
        assert_eq!(
            report.remaining_after("correlation"),
            Some(report.triage.len())
        );
    }

    #[test]
    fn triage_sources_exist_in_input() {
        let alerts = flood();
        let report = pipeline().run(&alerts);
        for id in &report.triage {
            assert!(alerts.iter().any(|a| a.id() == *id));
        }
    }
}
