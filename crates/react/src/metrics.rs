//! Reaction-pipeline metrics.
//!
//! [`ReactMetrics`] bundles pre-registered handles for the R1–R3
//! pipeline stages: a wall-time histogram per stage plus volume
//! counters. Attach it with
//! [`ReactionPipeline::with_metrics`](crate::ReactionPipeline::with_metrics);
//! the pipeline's report is identical with or without metrics attached.

use std::sync::Arc;

use alertops_obs::{Counter, Histogram, MetricsRegistry, Span};

/// The instrumented pipeline stages, in execution order.
pub(crate) const STAGES: [&str; 3] = ["blocking", "aggregation", "correlation"];

/// Cached metric handles for the reaction pipeline.
#[derive(Debug, Clone)]
pub struct ReactMetrics {
    /// Per-stage wall time, aligned with [`STAGES`].
    stage_micros: [Arc<Histogram>; 3],
    /// Alerts entering the pipeline.
    input: Arc<Counter>,
    /// Alerts removed by blocking (R1).
    blocked: Arc<Counter>,
    /// Aggregation groups produced (R2).
    groups: Arc<Counter>,
    /// Correlation clusters produced (R3) == triage items.
    clusters: Arc<Counter>,
}

impl ReactMetrics {
    /// Registers (or re-attaches to) the react metric families.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        let stage_micros = STAGES.map(|stage| {
            registry.histogram(
                "alertops_react_stage_micros",
                "Wall time of one reaction-pipeline stage.",
                &[("stage", stage)],
            )
        });
        Self {
            stage_micros,
            input: registry.counter(
                "alertops_react_input_total",
                "Alerts entering the reaction pipeline.",
                &[],
            ),
            blocked: registry.counter(
                "alertops_react_blocked_total",
                "Alerts removed by blocking rules (R1).",
                &[],
            ),
            groups: registry.counter(
                "alertops_react_groups_total",
                "Aggregation groups produced (R2).",
                &[],
            ),
            clusters: registry.counter(
                "alertops_react_clusters_total",
                "Correlation clusters, i.e. final triage items (R3).",
                &[],
            ),
        }
    }

    /// Starts a wall-time span for a stage (index into [`STAGES`]).
    pub(crate) fn stage_timer(&self, stage: usize) -> Span<'_> {
        self.stage_micros[stage].time()
    }

    pub(crate) fn record_volumes(&self, input: u64, blocked: u64, groups: u64, clusters: u64) {
        self.input.add(input);
        self.blocked.add(blocked);
        self.groups.add(groups);
        self.clusters.add(clusters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_stage_series_and_volumes() {
        let registry = MetricsRegistry::new();
        let metrics = ReactMetrics::register(&registry);
        for stage in 0..STAGES.len() {
            drop(metrics.stage_timer(stage));
        }
        metrics.record_volumes(24, 20, 2, 1);
        let text = registry.render();
        for stage in STAGES {
            assert!(
                text.contains(&format!("stage=\"{stage}\"")),
                "missing {stage} series"
            );
        }
        assert!(text.contains("alertops_react_input_total 24"));
        assert!(text.contains("alertops_react_blocked_total 20"));
        assert!(text.contains("alertops_react_clusters_total 1"));
        alertops_obs::lint_exposition(&text).unwrap();
    }
}
