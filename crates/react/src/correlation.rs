//! R3 — alert correlation analysis.
//!
//! "Two kinds of exogenous information are used to correlate alerts. The
//! first is the dependencies of alert strategies … They will associate
//! all the derived alerts with their source alerts and diagnose the
//! source alerts only. Another exogenous information is the topology of
//! cloud services" (§III-C). Both sources are supported: explicit
//! [`StrategyDependencies`] rules ("strategy A triggers strategy B") and
//! the microservice [`DependencyGraph`].

use std::collections::{BTreeMap, BTreeSet, HashMap};

use alertops_model::MicroserviceId;

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, AlertId, DependencyGraph, SimDuration, StrategyId};

/// Manually configured dependencies between alert strategies: an edge
/// `source → derived` means "an alert of `source` can trigger an alert
/// of `derived`".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategyDependencies {
    /// derived → sources that can trigger it.
    triggers: BTreeMap<StrategyId, BTreeSet<StrategyId>>,
}

impl StrategyDependencies {
    /// Creates an empty rule set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that `source` can trigger `derived`. Self-edges are
    /// ignored.
    pub fn add_trigger(&mut self, source: StrategyId, derived: StrategyId) {
        if source != derived {
            self.triggers.entry(derived).or_default().insert(source);
        }
    }

    /// Whether `source` is a declared trigger of `derived`.
    #[must_use]
    pub fn is_trigger(&self, source: StrategyId, derived: StrategyId) -> bool {
        self.triggers
            .get(&derived)
            .is_some_and(|s| s.contains(&source))
    }

    /// Number of declared edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.triggers.values().map(BTreeSet::len).sum()
    }

    /// Whether no edges are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }
}

impl FromIterator<(StrategyId, StrategyId)> for StrategyDependencies {
    /// Collects `(source, derived)` pairs.
    fn from_iter<I: IntoIterator<Item = (StrategyId, StrategyId)>>(iter: I) -> Self {
        let mut deps = Self::new();
        for (source, derived) in iter {
            deps.add_trigger(source, derived);
        }
        deps
    }
}

/// A correlated cluster: one source alert and the alerts derived from it
/// (directly or transitively).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelatedCluster {
    /// The source alert — "potentially the root cause of future service
    /// failures"; the only alert the OCE diagnoses.
    pub source: AlertId,
    /// Alerts associated to the source, in raise order.
    pub derived: Vec<AlertId>,
}

impl CorrelatedCluster {
    /// Total alerts in the cluster including the source.
    #[must_use]
    pub fn len(&self) -> usize {
        self.derived.len() + 1
    }

    /// Never empty: a cluster always has its source.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The correlation engine.
#[derive(Debug, Clone, Default)]
pub struct AlertCorrelator {
    strategy_deps: StrategyDependencies,
    topology: Option<DependencyGraph>,
    window: SimDuration,
}

impl AlertCorrelator {
    /// Creates a correlator with a 10-minute association window and no
    /// exogenous knowledge (every alert becomes its own cluster).
    #[must_use]
    pub fn new() -> Self {
        Self {
            strategy_deps: StrategyDependencies::new(),
            topology: None,
            window: SimDuration::from_mins(10),
        }
    }

    /// Sets the association window.
    #[must_use]
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Attaches strategy-dependency rules.
    #[must_use]
    pub fn with_strategy_dependencies(mut self, deps: StrategyDependencies) -> Self {
        self.strategy_deps = deps;
        self
    }

    /// Attaches the service topology.
    #[must_use]
    pub fn with_topology(mut self, graph: DependencyGraph) -> Self {
        self.topology = Some(graph);
        self
    }

    /// Whether alert `derived` can be attributed to alert `source`.
    fn is_derived_from(
        &self,
        source: &Alert,
        derived: &Alert,
        closures: &mut HashMap<MicroserviceId, BTreeSet<MicroserviceId>>,
    ) -> bool {
        if derived.raised_at() < source.raised_at()
            || derived.raised_at().duration_since(source.raised_at()) > self.window
        {
            return false;
        }
        if self
            .strategy_deps
            .is_trigger(source.strategy(), derived.strategy())
        {
            return true;
        }
        if let Some(graph) = &self.topology {
            // A failure in source's microservice propagates up to its
            // callers: derived's microservice must (transitively) call
            // source's. Closures are cached per microservice.
            if derived.microservice() != source.microservice()
                && closures
                    .entry(derived.microservice())
                    .or_insert_with(|| graph.dependency_closure(derived.microservice()))
                    .contains(&source.microservice())
            {
                return true;
            }
        }
        false
    }

    /// Correlates a time-sorted alert stream into clusters. Every alert
    /// lands in exactly one cluster; alerts with no source of their own
    /// become cluster sources.
    ///
    /// Attribution is greedy-to-earliest: each alert is attached to the
    /// earliest alert in the window that can explain it, and attribution
    /// chains collapse to the chain's source.
    #[must_use]
    pub fn correlate(&self, alerts: &[Alert]) -> Vec<CorrelatedCluster> {
        let n = alerts.len();
        // source_of[i] = index of the cluster source alert i belongs to.
        let mut source_of: Vec<usize> = (0..n).collect();
        let mut closures: HashMap<MicroserviceId, BTreeSet<MicroserviceId>> = HashMap::new();
        let mut lo = 0usize;
        for hi in 0..n {
            while alerts[hi]
                .raised_at()
                .duration_since(alerts[lo].raised_at())
                > self.window
            {
                lo += 1;
            }
            for earlier in lo..hi {
                if self.is_derived_from(&alerts[earlier], &alerts[hi], &mut closures) {
                    // Collapse to the chain's source.
                    source_of[hi] = source_of[earlier];
                    break; // earliest explanation wins
                }
            }
        }
        let mut clusters: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (ix, &src) in source_of.iter().enumerate() {
            clusters.entry(src).or_default().push(ix);
        }
        clusters
            .into_iter()
            .map(|(src, members)| CorrelatedCluster {
                source: alerts[src].id(),
                derived: members
                    .into_iter()
                    .filter(|&m| m != src)
                    .map(|m| alerts[m].id())
                    .collect(),
            })
            .collect()
    }

    /// Convenience: just the source alerts the OCE should diagnose.
    #[must_use]
    pub fn root_alerts(&self, alerts: &[Alert]) -> Vec<AlertId> {
        self.correlate(alerts)
            .into_iter()
            .map(|c| c.source)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, MicroserviceId, SimTime};

    fn alert(id: u64, strategy: u64, ms: u64, t: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(strategy))
            .microservice(MicroserviceId(ms))
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    #[test]
    fn no_knowledge_means_singleton_clusters() {
        let alerts = vec![alert(0, 1, 1, 0), alert(1, 2, 2, 60)];
        let clusters = AlertCorrelator::new().correlate(&alerts);
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().all(|c| c.derived.is_empty()));
    }

    #[test]
    fn strategy_rules_associate_derived_alerts() {
        let deps: StrategyDependencies = [(StrategyId(1), StrategyId(2))].into_iter().collect();
        let correlator = AlertCorrelator::new().with_strategy_dependencies(deps);
        let alerts = vec![alert(0, 1, 1, 0), alert(1, 2, 2, 120)];
        let clusters = correlator.correlate(&alerts);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].source, AlertId(0));
        assert_eq!(clusters[0].derived, vec![AlertId(1)]);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn topology_associates_dependent_microservices() {
        let graph: DependencyGraph = [
            (MicroserviceId(2), MicroserviceId(1)),
            (MicroserviceId(3), MicroserviceId(1)),
        ]
        .into_iter()
        .collect();
        let correlator = AlertCorrelator::new().with_topology(graph);
        // Table II: storage alert then two database alerts.
        let alerts = vec![
            alert(0, 10, 1, 0),
            alert(1, 20, 2, 120),
            alert(2, 21, 3, 120),
        ];
        let clusters = correlator.correlate(&alerts);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].source, AlertId(0));
        assert_eq!(clusters[0].derived.len(), 2);
        assert_eq!(correlator.root_alerts(&alerts), vec![AlertId(0)]);
    }

    #[test]
    fn window_limits_attribution() {
        let deps: StrategyDependencies = [(StrategyId(1), StrategyId(2))].into_iter().collect();
        let correlator = AlertCorrelator::new()
            .with_strategy_dependencies(deps)
            .with_window(SimDuration::from_mins(5));
        let alerts = vec![alert(0, 1, 1, 0), alert(1, 2, 2, 600)]; // 10 min later
        let clusters = correlator.correlate(&alerts);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn chains_collapse_to_the_source() {
        // 1 triggers 2, 2 triggers 3: all three collapse to the first.
        let deps: StrategyDependencies = [
            (StrategyId(1), StrategyId(2)),
            (StrategyId(2), StrategyId(3)),
        ]
        .into_iter()
        .collect();
        let correlator = AlertCorrelator::new().with_strategy_dependencies(deps);
        let alerts = vec![alert(0, 1, 1, 0), alert(1, 2, 2, 60), alert(2, 3, 3, 120)];
        let clusters = correlator.correlate(&alerts);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].source, AlertId(0));
        assert_eq!(clusters[0].derived, vec![AlertId(1), AlertId(2)]);
    }

    #[test]
    fn every_alert_in_exactly_one_cluster() {
        let deps: StrategyDependencies = [
            (StrategyId(1), StrategyId(2)),
            (StrategyId(1), StrategyId(3)),
        ]
        .into_iter()
        .collect();
        let correlator = AlertCorrelator::new().with_strategy_dependencies(deps);
        let alerts: Vec<Alert> = (0..20)
            .map(|i| alert(i, 1 + i % 4, i % 4, i * 30))
            .collect();
        let clusters = correlator.correlate(&alerts);
        let mut all: Vec<AlertId> = clusters
            .iter()
            .flat_map(|c| std::iter::once(c.source).chain(c.derived.iter().copied()))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), alerts.len());
    }

    #[test]
    fn derived_alerts_never_precede_their_source() {
        let deps: StrategyDependencies = [(StrategyId(2), StrategyId(1))].into_iter().collect();
        let correlator = AlertCorrelator::new().with_strategy_dependencies(deps);
        // Alert of strategy 1 (derived kind) occurs BEFORE its would-be
        // trigger: no association.
        let alerts = vec![alert(0, 1, 1, 0), alert(1, 2, 2, 60)];
        let clusters = correlator.correlate(&alerts);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn strategy_dependencies_api() {
        let mut deps = StrategyDependencies::new();
        assert!(deps.is_empty());
        deps.add_trigger(StrategyId(1), StrategyId(2));
        deps.add_trigger(StrategyId(1), StrategyId(2)); // dedup
        deps.add_trigger(StrategyId(3), StrategyId(3)); // self-edge ignored
        assert_eq!(deps.len(), 1);
        assert!(deps.is_trigger(StrategyId(1), StrategyId(2)));
        assert!(!deps.is_trigger(StrategyId(2), StrategyId(1)));
    }

    #[test]
    fn empty_stream() {
        assert!(AlertCorrelator::new().correlate(&[]).is_empty());
    }
}
