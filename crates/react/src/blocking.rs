//! R1 — alert blocking.
//!
//! "When OCEs find that transient alerts, toggling alerts, and repeating
//! alerts provide no information about service anomaly, they can treat
//! these alerts as noise and block them with alert blocking rules"
//! (§III-C). A [`BlockRule`] is a conjunction of criteria, optionally
//! limited to a time window (the paper notes rules must be re-examined
//! after service updates — windows make stale rules expire instead of
//! silently eating real alerts).

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, RegionId, Severity, StrategyId, TimeRange};

/// One matching criterion of a blocking rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BlockCriterion {
    /// Match alerts of this strategy.
    Strategy(StrategyId),
    /// Match alerts whose title contains this substring
    /// (case-insensitive).
    TitleContains(String),
    /// Match alerts at or below this severity.
    SeverityAtMost(Severity),
    /// Match alerts from this region.
    Region(RegionId),
}

impl BlockCriterion {
    /// Whether `alert` satisfies this criterion.
    #[must_use]
    pub fn matches(&self, alert: &Alert) -> bool {
        match self {
            BlockCriterion::Strategy(id) => alert.strategy() == *id,
            BlockCriterion::TitleContains(needle) => alert
                .title()
                .to_ascii_lowercase()
                .contains(&needle.to_ascii_lowercase()),
            BlockCriterion::SeverityAtMost(max) => alert.severity() <= *max,
            BlockCriterion::Region(region) => alert.location().region() == region,
        }
    }
}

/// A blocking rule: every criterion must match (conjunction), within the
/// optional activity window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockRule {
    /// Human-readable name (shown in audit trails).
    pub name: String,
    /// The conjunction of criteria. An empty conjunction matches nothing
    /// (a rule must say *something*).
    pub criteria: Vec<BlockCriterion>,
    /// If set, the rule only applies to alerts raised within the window.
    pub active_window: Option<TimeRange>,
}

impl BlockRule {
    /// A rule blocking everything from one strategy — the typical output
    /// of reviewing an A4/A5 finding.
    #[must_use]
    pub fn for_strategy(name: impl Into<String>, strategy: StrategyId) -> Self {
        Self {
            name: name.into(),
            criteria: vec![BlockCriterion::Strategy(strategy)],
            active_window: None,
        }
    }

    /// Restricts the rule to a time window (consuming builder-style).
    #[must_use]
    pub fn within(mut self, window: TimeRange) -> Self {
        self.active_window = Some(window);
        self
    }

    /// Whether this rule blocks `alert`.
    #[must_use]
    pub fn blocks(&self, alert: &Alert) -> bool {
        if self.criteria.is_empty() {
            return false;
        }
        if let Some(window) = &self.active_window {
            if !window.contains(alert.raised_at()) {
                return false;
            }
        }
        self.criteria.iter().all(|c| c.matches(alert))
    }
}

/// The result of applying a blocker to a stream: a partition of the
/// input.
#[derive(Debug, Clone)]
pub struct BlockOutcome<'a> {
    /// Alerts that passed through to the OCE.
    pub passed: Vec<&'a Alert>,
    /// Alerts suppressed by some rule.
    pub blocked: Vec<&'a Alert>,
    /// Per-rule hit counts, parallel to the blocker's rule list.
    pub rule_hits: Vec<usize>,
}

impl BlockOutcome<'_> {
    /// Fraction of input that was blocked (0 for empty input).
    #[must_use]
    pub fn reduction(&self) -> f64 {
        let total = self.passed.len() + self.blocked.len();
        if total == 0 {
            0.0
        } else {
            self.blocked.len() as f64 / total as f64
        }
    }
}

/// A rule-based alert blocker.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlertBlocker {
    rules: Vec<BlockRule>,
}

impl AlertBlocker {
    /// Creates a blocker with no rules (everything passes).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: BlockRule) {
        self.rules.push(rule);
    }

    /// The configured rules.
    #[must_use]
    pub fn rules(&self) -> &[BlockRule] {
        &self.rules
    }

    /// Partitions `alerts` into passed and blocked. The first matching
    /// rule is credited with the hit.
    #[must_use]
    pub fn apply<'a>(&self, alerts: &'a [Alert]) -> BlockOutcome<'a> {
        let mut passed = Vec::new();
        let mut blocked = Vec::new();
        let mut rule_hits = vec![0usize; self.rules.len()];
        for alert in alerts {
            match self.rules.iter().position(|r| r.blocks(alert)) {
                Some(ix) => {
                    rule_hits[ix] += 1;
                    blocked.push(alert);
                }
                None => passed.push(alert),
            }
        }
        BlockOutcome {
            passed,
            blocked,
            rule_hits,
        }
    }
}

impl FromIterator<BlockRule> for AlertBlocker {
    fn from_iter<I: IntoIterator<Item = BlockRule>>(iter: I) -> Self {
        Self {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, Location, SimTime};

    fn alert(
        id: u64,
        strategy: u64,
        title: &str,
        severity: Severity,
        region: &str,
        t: u64,
    ) -> Alert {
        Alert::builder(AlertId(id), StrategyId(strategy))
            .title(title)
            .severity(severity)
            .location(Location::new(region, "dc"))
            .raised_at(SimTime::from_secs(t))
            .build()
    }

    fn sample() -> Vec<Alert> {
        vec![
            alert(
                0,
                1,
                "haproxy process number warning",
                Severity::Warning,
                "r1",
                100,
            ),
            alert(
                1,
                2,
                "disk full on storage node",
                Severity::Critical,
                "r1",
                200,
            ),
            alert(
                2,
                1,
                "haproxy process number warning",
                Severity::Warning,
                "r2",
                300,
            ),
            alert(3, 3, "latency over threshold", Severity::Major, "r2", 400),
        ]
    }

    #[test]
    fn empty_blocker_passes_everything() {
        let alerts = sample();
        let outcome = AlertBlocker::new().apply(&alerts);
        assert_eq!(outcome.passed.len(), 4);
        assert!(outcome.blocked.is_empty());
        assert_eq!(outcome.reduction(), 0.0);
    }

    #[test]
    fn partition_is_exact() {
        let alerts = sample();
        let blocker: AlertBlocker = [BlockRule::for_strategy("mute haproxy", StrategyId(1))]
            .into_iter()
            .collect();
        let outcome = blocker.apply(&alerts);
        assert_eq!(outcome.passed.len() + outcome.blocked.len(), alerts.len());
        assert_eq!(outcome.blocked.len(), 2);
        assert_eq!(outcome.rule_hits, vec![2]);
        assert!((outcome.reduction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn title_criterion_is_case_insensitive() {
        let alerts = sample();
        let blocker: AlertBlocker = [BlockRule {
            name: "mute haproxy".into(),
            criteria: vec![BlockCriterion::TitleContains("HAPROXY".into())],
            active_window: None,
        }]
        .into_iter()
        .collect();
        assert_eq!(blocker.apply(&alerts).blocked.len(), 2);
    }

    #[test]
    fn severity_ceiling_spares_high_severities() {
        let alerts = sample();
        let blocker: AlertBlocker = [BlockRule {
            name: "mute low severities".into(),
            criteria: vec![BlockCriterion::SeverityAtMost(Severity::Minor)],
            active_window: None,
        }]
        .into_iter()
        .collect();
        let outcome = blocker.apply(&alerts);
        assert_eq!(outcome.blocked.len(), 2); // the two warnings
        assert!(outcome
            .passed
            .iter()
            .all(|a| a.severity() >= Severity::Major));
    }

    #[test]
    fn criteria_are_conjunctive() {
        let alerts = sample();
        let blocker: AlertBlocker = [BlockRule {
            name: "haproxy only in r1".into(),
            criteria: vec![
                BlockCriterion::Strategy(StrategyId(1)),
                BlockCriterion::Region(RegionId::new("r1")),
            ],
            active_window: None,
        }]
        .into_iter()
        .collect();
        let outcome = blocker.apply(&alerts);
        assert_eq!(outcome.blocked.len(), 1);
        assert_eq!(outcome.blocked[0].id(), AlertId(0));
    }

    #[test]
    fn window_limits_applicability() {
        let alerts = sample();
        let rule = BlockRule::for_strategy("temp mute", StrategyId(1)).within(TimeRange::new(
            SimTime::from_secs(0),
            SimTime::from_secs(150),
        ));
        let blocker: AlertBlocker = [rule].into_iter().collect();
        let outcome = blocker.apply(&alerts);
        assert_eq!(outcome.blocked.len(), 1); // only the t=100 haproxy alert
    }

    #[test]
    fn empty_conjunction_matches_nothing() {
        let alerts = sample();
        let blocker: AlertBlocker = [BlockRule {
            name: "vacuous".into(),
            criteria: Vec::new(),
            active_window: None,
        }]
        .into_iter()
        .collect();
        assert!(blocker.apply(&alerts).blocked.is_empty());
    }

    #[test]
    fn first_matching_rule_gets_credit() {
        let alerts = sample();
        let blocker: AlertBlocker = [
            BlockRule::for_strategy("first", StrategyId(1)),
            BlockRule {
                name: "second".into(),
                criteria: vec![BlockCriterion::SeverityAtMost(Severity::Warning)],
                active_window: None,
            },
        ]
        .into_iter()
        .collect();
        let outcome = blocker.apply(&alerts);
        assert_eq!(outcome.rule_hits, vec![2, 0]);
    }

    #[test]
    fn idempotent_refilter() {
        let alerts = sample();
        let blocker: AlertBlocker = [BlockRule::for_strategy("mute", StrategyId(1))]
            .into_iter()
            .collect();
        let once = blocker.apply(&alerts);
        let passed_owned: Vec<Alert> = once.passed.iter().map(|&a| a.clone()).collect();
        let twice = blocker.apply(&passed_owned);
        assert!(twice.blocked.is_empty());
        assert_eq!(twice.passed.len(), once.passed.len());
    }
}
