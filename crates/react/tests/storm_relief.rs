//! End-to-end: the reaction pipeline must deliver large volume reduction
//! on simulated storms without suppressing incident-relevant alerts —
//! the measurable counterpart of the paper's Fig. 2(c) effectiveness
//! question.

use alertops_model::{Severity, StrategyKind};
use alertops_react::blocking::{AlertBlocker, BlockRule};
use alertops_react::correlation::{AlertCorrelator, StrategyDependencies};
use alertops_react::{AggregationConfig, EmergingAlertDetector, EmergingConfig, ReactionPipeline};
use alertops_sim::scenarios;

/// Builds the pipeline an OCE team would configure from the catalog:
/// block the known-noisy strategies, aggregate, correlate by topology.
fn configured_pipeline(out: &alertops_sim::SimOutput) -> ReactionPipeline {
    let mut blocker = AlertBlocker::new();
    for strategy in out.catalog.strategies() {
        let profile = out.catalog.profile(strategy.id());
        if profile.chatty || profile.oversensitive {
            blocker.add_rule(BlockRule::for_strategy(
                format!("mute {}", strategy.id()),
                strategy.id(),
            ));
        }
    }
    // Strategy dependencies: probe-down of a callee triggers alerts of
    // callers; here we derive rules from the topology as the paper's
    // OCEs derive them from architecture documents.
    let graph = out.topology.dependency_graph();
    let mut deps = StrategyDependencies::new();
    for source in out.catalog.strategies() {
        if !matches!(source.kind(), StrategyKind::Probe(_)) {
            continue;
        }
        for derived in out.catalog.strategies() {
            if graph.depends_on(derived.microservice(), source.microservice()) {
                deps.add_trigger(source.id(), derived.id());
            }
        }
    }
    ReactionPipeline::new()
        .with_blocker(blocker)
        .with_aggregation(AggregationConfig::default())
        .with_correlator(
            AlertCorrelator::new()
                .with_strategy_dependencies(deps)
                .with_topology(graph),
        )
}

#[test]
fn pipeline_reduces_storm_volume_substantially() {
    let out = scenarios::mini_study(21).run();
    let report = configured_pipeline(&out).run(&out.alerts);
    assert!(
        report.reduction > 0.6,
        "pipeline reduced only {:.0}%",
        report.reduction * 100.0
    );
    // Monotone shrinkage.
    let volumes: Vec<usize> = report.stages.iter().map(|s| s.remaining).collect();
    for w in volumes.windows(2) {
        assert!(w[1] <= w[0]);
    }
}

#[test]
fn blocking_targets_only_noise_strategies() {
    let out = scenarios::mini_study(21).run();
    let mut blocker = AlertBlocker::new();
    for strategy in out.catalog.strategies() {
        let profile = out.catalog.profile(strategy.id());
        if profile.chatty || profile.oversensitive {
            blocker.add_rule(BlockRule::for_strategy("mute", strategy.id()));
        }
    }
    let outcome = blocker.apply(&out.alerts);
    assert!(!outcome.blocked.is_empty());
    // Safety: no alert from a clean or merely mis-titled strategy is
    // ever suppressed — blocking only eats the noise it was aimed at.
    for alert in &outcome.blocked {
        let profile = out.catalog.profile(alert.strategy());
        assert!(
            profile.chatty || profile.oversensitive,
            "blocked an alert of non-noisy {}",
            alert.strategy()
        );
    }
    // Every trustworthy (clean-strategy) major+ alert survives.
    let clean_major_total = out
        .alerts
        .iter()
        .filter(|a| out.catalog.profile(a.strategy()).is_clean() && a.severity() >= Severity::Major)
        .count();
    let clean_major_passed = outcome
        .passed
        .iter()
        .filter(|a| out.catalog.profile(a.strategy()).is_clean() && a.severity() >= Severity::Major)
        .count();
    assert_eq!(clean_major_passed, clean_major_total);
}

#[test]
fn emerging_detection_runs_over_study_stream() {
    let out = scenarios::mini_study(21).run();
    // Use a manageable slice (first simulated day).
    let day1: Vec<_> = out
        .alerts
        .iter()
        .filter(|a| a.raised_at().as_secs() < 24 * 3_600)
        .cloned()
        .collect();
    let mut detector = EmergingAlertDetector::new(EmergingConfig {
        num_topics: 5,
        passes_per_window: 8,
        ..EmergingConfig::default()
    });
    let reports = detector.run(&day1);
    assert!(!reports.is_empty());
    // Flagged ids must exist in the window's input.
    let all_ids: std::collections::BTreeSet<_> = day1.iter().map(|a| a.id()).collect();
    for report in &reports {
        for id in &report.emerging_alerts {
            assert!(all_ids.contains(id));
        }
    }
}
