//! Property-based tests over the reactions: blocking partitions,
//! aggregation preserves counts, correlation partitions.

use proptest::prelude::*;

use alertops_model::{
    Alert, AlertId, DependencyGraph, Location, MicroserviceId, Severity, SimDuration, SimTime,
    StrategyId,
};
use alertops_obs::MetricsRegistry;
use alertops_react::blocking::{AlertBlocker, BlockCriterion, BlockRule};
use alertops_react::correlation::AlertCorrelator;
use alertops_react::{
    aggregate, audit_blocker, propose_incidents, AggregationConfig, AuditConfig, EscalationConfig,
    ReactMetrics, ReactionPipeline,
};

fn arb_alerts(max: usize) -> impl Strategy<Value = Vec<Alert>> {
    prop::collection::vec((0u64..10, 0u64..10, 0u64..50_000, 0u8..4), 0..max).prop_map(|rows| {
        let mut alerts: Vec<Alert> = rows
            .into_iter()
            .enumerate()
            .map(|(i, (strategy, ms, t, sev))| {
                Alert::builder(AlertId(i as u64), StrategyId(strategy))
                    .title(format!("alert of strategy {strategy}"))
                    .severity(Severity::from_rank(sev).unwrap())
                    .microservice(MicroserviceId(ms))
                    .location(Location::new("r", "dc"))
                    .raised_at(SimTime::from_secs(t))
                    .build()
            })
            .collect();
        alerts.sort_by_key(|a| (a.raised_at(), a.id()));
        alerts
    })
}

fn arb_rules() -> impl Strategy<Value = Vec<BlockRule>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..10).prop_map(|s| BlockRule::for_strategy("mute", StrategyId(s))),
            (0u8..4).prop_map(|r| BlockRule {
                name: "sev".into(),
                criteria: vec![BlockCriterion::SeverityAtMost(
                    Severity::from_rank(r).unwrap()
                )],
                active_window: None,
            }),
        ],
        0..6,
    )
}

/// Deep sweep under `ALERTOPS_TEST_FULL=1`; a faster default keeps the
/// tier-1 wall clock flat.
fn cases(full: u32, quick: u32) -> u32 {
    if std::env::var("ALERTOPS_TEST_FULL").as_deref() == Ok("1") {
        full
    } else {
        quick
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64, 24)))]

    #[test]
    fn blocking_partitions_the_input(alerts in arb_alerts(150), rules in arb_rules()) {
        let blocker: AlertBlocker = rules.into_iter().collect();
        let outcome = blocker.apply(&alerts);
        prop_assert_eq!(outcome.passed.len() + outcome.blocked.len(), alerts.len());
        prop_assert_eq!(outcome.rule_hits.iter().sum::<usize>(), outcome.blocked.len());
        // Idempotent: re-filtering the passed set blocks nothing.
        let passed: Vec<Alert> = outcome.passed.iter().map(|&a| a.clone()).collect();
        prop_assert!(blocker.apply(&passed).blocked.is_empty());
    }

    #[test]
    fn blocking_partition_is_exact_on_ids(alerts in arb_alerts(150), rules in arb_rules()) {
        // DESIGN.md §7: blocked ∪ passed == input, as an *exact* id
        // partition, not just a count identity.
        let blocker: AlertBlocker = rules.into_iter().collect();
        let outcome = blocker.apply(&alerts);
        let mut ids: Vec<AlertId> = outcome
            .passed
            .iter()
            .map(|a| a.id())
            .chain(outcome.blocked.iter().map(|a| a.id()))
            .collect();
        ids.sort_unstable();
        let mut want: Vec<AlertId> = alerts.iter().map(Alert::id).collect();
        want.sort_unstable();
        prop_assert_eq!(ids, want);
    }

    #[test]
    fn pipeline_with_metrics_is_observer_only(
        alerts in arb_alerts(150),
        rules in arb_rules(),
    ) {
        // The alertops-obs guarantee: attaching ReactMetrics must never
        // change the pipeline report, only record its volumes.
        let blocker: AlertBlocker = rules.iter().cloned().collect();
        let baseline = ReactionPipeline::new().with_blocker(blocker).run(&alerts);

        let registry = MetricsRegistry::new();
        let blocker: AlertBlocker = rules.into_iter().collect();
        let instrumented = ReactionPipeline::new()
            .with_blocker(blocker)
            .with_metrics(ReactMetrics::register(&registry))
            .run(&alerts);
        prop_assert_eq!(&instrumented, &baseline);

        // The volume counters agree with the report's own accounting.
        let text = registry.render();
        prop_assert!(
            text.contains(&format!("alertops_react_input_total {}", alerts.len())),
            "{}",
            text
        );
        let after_blocking = instrumented
            .remaining_after("blocking")
            .expect("pipeline reports the blocking stage");
        prop_assert!(
            text.contains(&format!(
                "alertops_react_blocked_total {}",
                alerts.len() - after_blocking
            )),
            "{}",
            text
        );
        prop_assert!(alertops_obs::lint_exposition(&text).is_ok());
    }

    #[test]
    fn aggregation_preserves_every_alert_once(
        alerts in arb_alerts(150),
        window_mins in 1u64..120,
    ) {
        let config = AggregationConfig {
            window: SimDuration::from_mins(window_mins),
            ..AggregationConfig::default()
        };
        let groups = aggregate(&alerts, &config);
        let total: usize = groups.iter().map(|g| g.count).sum();
        prop_assert_eq!(total, alerts.len());
        let mut seen: Vec<AlertId> = groups.iter().flat_map(|g| g.members.clone()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), alerts.len());
        // Representative is a member, max severity is attained.
        for group in &groups {
            prop_assert!(group.members.contains(&group.representative));
            let max = group
                .members
                .iter()
                .map(|id| alerts.iter().find(|a| a.id() == *id).unwrap().severity())
                .max()
                .unwrap();
            prop_assert_eq!(max, group.max_severity);
        }
    }

    #[test]
    fn audit_accounting_is_exact(alerts in arb_alerts(150), rules in arb_rules()) {
        let blocker: AlertBlocker = rules.into_iter().collect();
        let audits = audit_blocker(&blocker, &alerts, &[], &AuditConfig::default());
        prop_assert_eq!(audits.len(), blocker.rules().len());
        // Total audited hits equals what apply() actually blocks.
        let blocked = blocker.apply(&alerts).blocked.len();
        let audited: usize = audits.iter().map(|a| a.total_hits).sum();
        prop_assert_eq!(audited, blocked);
        for audit in &audits {
            // Daily histogram sums to the total.
            let daily: usize = audit.daily_hits.iter().sum();
            prop_assert_eq!(daily, audit.total_hits);
            // Staleness is consistent with the trailing window.
            if !audit.daily_hits.is_empty() {
                let window = (AuditConfig::default().stale_after_days as usize)
                    .min(audit.daily_hits.len());
                let tail_hits: usize = audit.daily_hits
                    [audit.daily_hits.len() - window..]
                    .iter()
                    .sum();
                prop_assert_eq!(audit.stale, tail_hits == 0);
            }
        }
    }

    #[test]
    fn escalation_is_monotone_in_thresholds(
        alerts in arb_alerts(100),
        edges in prop::collection::vec((0u64..10, 0u64..10), 0..15),
        size_lo in 2usize..4,
        size_delta in 1usize..4,
    ) {
        let graph: DependencyGraph = edges
            .into_iter()
            .map(|(a, b)| (MicroserviceId(a), MicroserviceId(b)))
            .collect();
        let clusters = AlertCorrelator::new().with_topology(graph).correlate(&alerts);
        let loose = propose_incidents(
            &clusters,
            &alerts,
            &EscalationConfig { min_cluster_size: size_lo, severity_floor: Severity::Major },
        );
        let strict = propose_incidents(
            &clusters,
            &alerts,
            &EscalationConfig {
                min_cluster_size: size_lo + size_delta,
                severity_floor: Severity::Critical,
            },
        );
        // Tightening both thresholds can only remove proposals.
        prop_assert!(strict.len() <= loose.len());
        let loose_sources: std::collections::BTreeSet<_> =
            loose.iter().map(|p| p.source).collect();
        for proposal in &strict {
            prop_assert!(loose_sources.contains(&proposal.source));
        }
        // Every proposal's contract holds.
        for proposal in &loose {
            prop_assert!(proposal.alerts.contains(&proposal.source));
            let max = proposal
                .alerts
                .iter()
                .filter_map(|id| alerts.iter().find(|a| a.id() == *id))
                .map(|a| a.severity())
                .max()
                .unwrap();
            prop_assert_eq!(max, proposal.severity);
        }
    }

    #[test]
    fn correlation_partitions_and_sources_are_earliest(
        alerts in arb_alerts(120),
        edges in prop::collection::vec((0u64..10, 0u64..10), 0..20),
    ) {
        let graph: DependencyGraph = edges
            .into_iter()
            .map(|(a, b)| (MicroserviceId(a), MicroserviceId(b)))
            .collect();
        let correlator = AlertCorrelator::new().with_topology(graph);
        let clusters = correlator.correlate(&alerts);
        let mut all: Vec<AlertId> = clusters
            .iter()
            .flat_map(|c| std::iter::once(c.source).chain(c.derived.iter().copied()))
            .collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), alerts.len());
        // A cluster's source precedes (or ties) all its derived alerts.
        let time_of = |id: AlertId| {
            alerts.iter().find(|a| a.id() == id).unwrap().raised_at()
        };
        for cluster in &clusters {
            for d in &cluster.derived {
                prop_assert!(time_of(cluster.source) <= time_of(*d));
            }
        }
    }
}
