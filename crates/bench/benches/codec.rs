//! Criterion benches: the wire codec — what the binary frame format
//! buys over NDJSON, measured at the two places the representation
//! travels.
//!
//! * `codec` — per-alert encode and decode throughput of the full
//!   mini-study trace, NDJSON lines (serde text, the compatibility
//!   oracle) vs `alertops-wire` binary frames (varints, CRC32, interned
//!   string back-references). Decode feeds one contiguous byte stream
//!   through the respective streaming decoder, exactly as the ingress
//!   path does.
//! * `wal` — append + replay of the same trace through a real on-disk
//!   WAL in both segment formats (v1 hex-framed JSON lines vs v2 binary
//!   frames), window boundaries included — the journaling tax the
//!   cluster's 1-node row pays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use alertops_cluster::{replay, Wal, WalFormat};
use alertops_ingestd::codec::encode_alert;
use alertops_ingestd::FrameDecoder;
use alertops_sim::scenarios;
use alertops_wire::{WireDecoder, WireEncoder};

fn bench_codec(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let alerts = &out.alerts;

    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(alerts.len() as u64));

    group.bench_function("encode_ndjson", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for alert in alerts {
                bytes += encode_alert(alert).len() + 1;
            }
            black_box(bytes)
        });
    });
    group.bench_function("encode_binary", |b| {
        b.iter(|| {
            // One encoder per stream, as a connection would hold it —
            // later alerts hit the string table, not the literal path.
            let mut encoder = WireEncoder::new();
            let mut buf = Vec::new();
            for alert in alerts {
                encoder.encode_alert_into(alert, &mut buf);
            }
            black_box(buf.len())
        });
    });

    // Pre-encoded streams for the decode side.
    let mut ndjson = Vec::new();
    for alert in alerts {
        ndjson.extend_from_slice(encode_alert(alert).as_bytes());
        ndjson.push(b'\n');
    }
    let mut binary = Vec::new();
    let mut encoder = WireEncoder::new();
    for alert in alerts {
        encoder.encode_alert_into(alert, &mut binary);
    }

    group.bench_function("decode_ndjson", |b| {
        b.iter(|| {
            let mut decoder = FrameDecoder::new();
            let frames = decoder.feed(&ndjson);
            assert_eq!(frames.len(), alerts.len());
            black_box(frames)
        });
    });
    group.bench_function("decode_binary", |b| {
        b.iter(|| {
            let mut decoder = WireDecoder::new();
            let frames = decoder.feed(&binary);
            assert_eq!(frames.len(), alerts.len());
            black_box(frames)
        });
    });
    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let alerts = &out.alerts;
    let per_window = alerts.len().div_ceil(4).max(1);

    let mut group = c.benchmark_group("wal");
    group.sample_size(10);
    group.throughput(Throughput::Elements(alerts.len() as u64));
    for format in [WalFormat::V2Binary, WalFormat::V1Json] {
        let root = std::env::temp_dir().join(format!(
            "alertops-codec-bench-{}-{}",
            format.label(),
            std::process::id()
        ));
        group.bench_function(format!("append_{}", format.label()), |b| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&root);
                let wal = Wal::open_with_format(&root, 8, format).expect("wal opens");
                let mut window = 0u64;
                for (i, alert) in alerts.iter().enumerate() {
                    wal.append(alert).expect("append succeeds");
                    if (i + 1) % per_window == 0 {
                        wal.boundary(window).expect("boundary succeeds");
                        window += 1;
                    }
                }
                black_box(window)
            });
        });

        // One final log left by the append bench above, replayed as
        // recovery would.
        group.bench_function(format!("replay_{}", format.label()), |b| {
            b.iter(|| {
                let replayed = replay(&root).expect("replay succeeds");
                assert_eq!(replayed.torn_records, 0);
                black_box(replayed.recovered_alerts)
            });
        });
        let _ = std::fs::remove_dir_all(&root);
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_wal);
criterion_main!(benches);
