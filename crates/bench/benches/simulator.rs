//! Criterion benches: the simulation substrate itself — topology and
//! catalog generation, telemetry sampling, and scenario end-to-end cost.
//! These bound how large an experiment the harness can regenerate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alertops_model::{MetricKind, MicroserviceId, SimTime};
use alertops_sim::telemetry::Telemetry;
use alertops_sim::{
    scenarios, FaultPlan, StrategyCatalog, StrategyCatalogConfig, Topology, TopologyConfig,
};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("topology_generate_192ms", |b| {
        b.iter(|| black_box(Topology::generate(&TopologyConfig::default())));
    });
    group.bench_function("catalog_generate_2010", |b| {
        let topology = Topology::generate(&TopologyConfig::default());
        b.iter(|| {
            black_box(StrategyCatalog::generate(
                &topology,
                &StrategyCatalogConfig::default(),
            ))
        });
    });
    group.bench_function("telemetry_metric_10k_samples", |b| {
        let topology = Topology::generate(&TopologyConfig::default());
        let faults = FaultPlan::new();
        let telemetry = Telemetry::new(&topology, &faults, 1);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000u64 {
                acc += telemetry.metric(
                    MicroserviceId(i % 192),
                    MetricKind::CpuUtilization,
                    SimTime::from_secs(i * 60),
                );
            }
            black_box(acc)
        });
    });
    group.bench_function("scenario_quickstart_end_to_end", |b| {
        b.iter(|| black_box(scenarios::quickstart(7).run()));
    });
    group.bench_function("scenario_mini_study_end_to_end", |b| {
        b.iter(|| black_box(scenarios::mini_study(7).run()));
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
