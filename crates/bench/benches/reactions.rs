//! Criterion benches: throughput of the four reactions and the composed
//! pipeline. During a storm the reactions sit on the hot path between
//! the monitoring system and the paging system, so per-alert cost is the
//! number that matters.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use alertops_react::blocking::{AlertBlocker, BlockRule};
use alertops_react::correlation::AlertCorrelator;
use alertops_react::{aggregate, AggregationConfig, GroupKey, ReactionPipeline};
use alertops_sim::scenarios;

fn bench_reactions(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let n = out.alerts.len() as u64;
    let blocker: AlertBlocker = out
        .catalog
        .strategies()
        .iter()
        .filter(|s| {
            let p = out.catalog.profile(s.id());
            p.chatty || p.oversensitive
        })
        .map(|s| BlockRule::for_strategy("mute", s.id()))
        .collect();
    let graph = out.topology.dependency_graph();

    let mut group = c.benchmark_group("reactions");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n));
    group.bench_function("r1_blocking", |b| {
        b.iter(|| black_box(blocker.apply(&out.alerts)));
    });
    group.bench_function("r2_aggregation_by_strategy", |b| {
        b.iter(|| black_box(aggregate(&out.alerts, &AggregationConfig::default())));
    });
    group.bench_function("r2_aggregation_by_template", |b| {
        let config = AggregationConfig {
            key: GroupKey::TitleTemplate,
            ..AggregationConfig::default()
        };
        b.iter(|| black_box(aggregate(&out.alerts, &config)));
    });
    group.bench_function("r3_correlation_topology", |b| {
        let correlator = AlertCorrelator::new().with_topology(graph.clone());
        b.iter(|| black_box(correlator.correlate(&out.alerts)));
    });
    group.bench_function("pipeline_block_aggregate_correlate", |b| {
        let pipeline = ReactionPipeline::new()
            .with_blocker(blocker.clone())
            .with_correlator(AlertCorrelator::new().with_topology(graph.clone()));
        b.iter(|| black_box(pipeline.run(&out.alerts)));
    });
    group.finish();
}

criterion_group!(benches, bench_reactions);
criterion_main!(benches);
