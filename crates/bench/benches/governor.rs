//! Criterion benches: the end-to-end governance loop — the cost a
//! periodic `govern` pass adds per alert of history, and its stages in
//! isolation (lint, detect, QoA).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use alertops_core::{AlertGovernor, GovernorConfig};
use alertops_sim::scenarios;

fn bench_governor(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_sops(
            out.catalog
                .strategies()
                .iter()
                .filter_map(|s| out.catalog.sop(s.id()).cloned()),
        )
        .with_dependency_graph(out.topology.dependency_graph());

    let mut group = c.benchmark_group("governor");
    group.sample_size(10);
    group.throughput(Throughput::Elements(out.alerts.len() as u64));
    group.bench_function("lint_catalog", |b| {
        b.iter(|| black_box(governor.lint()));
    });
    group.bench_function("detect_all_anti_patterns", |b| {
        b.iter(|| black_box(governor.detect(&out.alerts, &out.incidents)));
    });
    group.bench_function("qoa_score_catalog", |b| {
        b.iter(|| black_box(governor.qoa(&out.alerts, &out.incidents)));
    });
    group.bench_function("govern_full_loop", |b| {
        b.iter(|| black_box(governor.govern(&out.alerts, &out.incidents)));
    });
    group.finish();
}

criterion_group!(benches, bench_governor);
criterion_main!(benches);
