//! Criterion benches: the emerging-alert (R4) channel end to end — the
//! per-window observe path (streaming tokenize → encode → sparse AO-LDA
//! → emergence scan) with and without the opt-in token budget, plus the
//! budget sampler on its own. `ci.sh emerging-perf` runs this group
//! before regenerating `BENCH_streaming.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alertops_model::{AlertId, SimTime};
use alertops_react::{
    apply_budget, EmergingAlertDetector, EmergingBudget, EmergingConfig, EmergingDoc,
};
use alertops_text::{BagOfWords, Tokenizer, Vocabulary};

const THEMES: [&str; 4] = [
    "disk usage of storage node over threshold block allocation failing",
    "cpu utilization high on compute worker load spike detected",
    "request latency of api gateway above limit timeouts rising",
    "network packet retransmission rate abnormal on edge router",
];

/// One wall-clock hour of alert-title documents cycling the themes.
fn window(hour: u64, len: usize) -> Vec<EmergingDoc> {
    (0..len)
        .map(|i| EmergingDoc {
            alert: AlertId(hour * len as u64 + i as u64),
            raised_at: SimTime::from_secs(hour * 3_600 + i as u64 * 40),
            text: THEMES[i % THEMES.len()].to_owned(),
        })
        .collect()
}

fn bench_emerging(c: &mut Criterion) {
    let windows: Vec<Vec<EmergingDoc>> = (0..6).map(|h| window(h, 64)).collect();
    // ~64 docs × ~8 kept tokens each ≈ 500 tokens/window; a 256 cap
    // engages the sampler on every window, like the bench harness row.
    // Expect the budgeted run to be *slower* here, not faster: these
    // windows are so regular that the unsampled fit converges in ~3
    // passes, while the sampled counts oscillate and keep more of the
    // 15-pass ceiling. The budget is a worst-case cost bound for storm
    // windows (cost ∝ cap × max passes, not tokens × max passes), and
    // this pair of rows makes its typical-window overhead visible.
    let budget = EmergingBudget::new(256, 7);

    let mut group = c.benchmark_group("emerging");
    group.sample_size(20);
    group.bench_function("observe_six_windows_64_docs", |b| {
        b.iter(|| {
            let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
            for w in &windows {
                black_box(detector.observe_docs(w));
            }
        });
    });
    group.bench_function("observe_six_windows_budget_256", |b| {
        b.iter(|| {
            let mut detector = EmergingAlertDetector::new(EmergingConfig {
                budget: Some(budget),
                ..EmergingConfig::default()
            });
            for w in &windows {
                black_box(detector.observe_docs(w));
            }
        });
    });
    group.bench_function("apply_budget_one_window", |b| {
        let tokenizer = Tokenizer::new().drop_numbers();
        let mut vocab = Vocabulary::new();
        let bows: Vec<BagOfWords> = windows[0]
            .iter()
            .map(|d| vocab.encode_and_update(&tokenizer.tokenize(&d.text)))
            .collect();
        b.iter(|| {
            let mut sampled = bows.clone();
            black_box(apply_budget(&mut sampled, &budget, 3))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_emerging);
criterion_main!(benches);
