//! Criterion benches: the topic-model substrate — online LDA minibatch
//! updates, inference, and a full AOLDA window — at alert-title corpus
//! scale (R4 runs hourly over each window's alerts).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alertops_text::{BagOfWords, Tokenizer, Vocabulary};
use alertops_topics::{AdaptiveOnlineLda, AoldaConfig, LdaConfig, OnlineLda};

/// A synthetic alert-title corpus: 200 docs, 3 underlying themes.
fn corpus() -> (Vocabulary, Vec<BagOfWords>) {
    let themes = [
        "disk usage of storage node over threshold block allocation failing",
        "cpu utilization high on compute worker load spike detected",
        "request latency of api gateway above limit timeouts rising",
    ];
    let tokenizer = Tokenizer::new();
    let mut vocab = Vocabulary::new();
    let docs = (0..200)
        .map(|i| vocab.encode_and_update(&tokenizer.tokenize(themes[i % 3])))
        .collect();
    (vocab, docs)
}

fn bench_topics(c: &mut Criterion) {
    let (vocab, docs) = corpus();
    let config = LdaConfig {
        num_topics: 6,
        vocab_size: vocab.len(),
        corpus_size: Some(docs.len()),
        ..LdaConfig::default()
    };

    let mut group = c.benchmark_group("topics");
    group.sample_size(20);
    group.bench_function("lda_update_batch_200_docs", |b| {
        b.iter(|| {
            let mut lda = OnlineLda::new(config.clone());
            black_box(lda.update_batch(&docs))
        });
    });
    group.bench_function("lda_infer_one_doc", |b| {
        let mut lda = OnlineLda::new(config.clone());
        for _ in 0..5 {
            lda.update_batch(&docs);
        }
        b.iter(|| black_box(lda.infer(&docs[0])));
    });
    group.bench_function("aolda_process_window", |b| {
        b.iter(|| {
            let mut aolda = AdaptiveOnlineLda::new(AoldaConfig {
                lda: config.clone(),
                passes_per_window: 5,
                ..AoldaConfig::default()
            });
            black_box(aolda.process_window(&docs).doc_count)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_topics);
criterion_main!(benches);
