//! Criterion benches: throughput of each anti-pattern detector and the
//! candidate-mining primitives over a fixed mini-study alert history
//! (~10k alerts, 480 strategies). Detectors must stay near-linear in the
//! alert count — the paper's setting is 4M+ alerts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alertops_detect::storm::detect_storms;
use alertops_detect::{
    candidates, AntiPatternReport, CascadingDetector, DetectionInput, Detector,
    ImproperRuleDetector, MisleadingSeverityDetector, RepeatingDetector, StormConfig,
    TransientTogglingDetector, UnclearTitleDetector,
};
use alertops_sim::scenarios;

fn bench_detectors(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let graph = out.topology.dependency_graph();
    let input = DetectionInput::new(out.catalog.strategies())
        .with_alerts(&out.alerts)
        .with_incidents(&out.incidents)
        .with_graph(&graph);

    let mut group = c.benchmark_group("detectors");
    group.sample_size(20);
    group.bench_function("a1_unclear_titles", |b| {
        let detector = UnclearTitleDetector::default();
        b.iter(|| black_box(detector.detect(&input)));
    });
    group.bench_function("a2_misleading_severity", |b| {
        let detector = MisleadingSeverityDetector::default();
        b.iter(|| black_box(detector.detect(&input)));
    });
    group.bench_function("a3_improper_rule", |b| {
        let detector = ImproperRuleDetector::default();
        b.iter(|| black_box(detector.detect(&input)));
    });
    group.bench_function("a4_transient_toggling", |b| {
        let detector = TransientTogglingDetector::default();
        b.iter(|| black_box(detector.detect(&input)));
    });
    group.bench_function("a5_repeating", |b| {
        let detector = RepeatingDetector::default();
        b.iter(|| black_box(detector.detect(&input)));
    });
    group.bench_function("a6_cascading_groups", |b| {
        let detector = CascadingDetector::default();
        b.iter(|| black_box(detector.detect_groups(&input)));
    });
    group.bench_function("full_report", |b| {
        b.iter(|| black_box(AntiPatternReport::run_default(&input)));
    });
    group.finish();

    let mut group = c.benchmark_group("mining");
    group.bench_function("storm_detection", |b| {
        b.iter(|| black_box(detect_storms(&out.alerts, &StormConfig::default())));
    });
    group.bench_function("individual_candidates_top30", |b| {
        b.iter(|| black_box(candidates::individual_candidates(&out.alerts, 0.3)));
    });
    group.bench_function("collective_candidates_200", |b| {
        b.iter(|| black_box(candidates::collective_candidates(&out.alerts, 200)));
    });
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
