//! Criterion benches: the sharded ingestion daemon — alerts/second
//! through route → window close → merge at 1, 4, and 8 shards, plus
//! the cost of supervised crash recovery (a chaos-injected worker
//! panic mid-window: restart, checkpoint rehydration, degraded merge)
//! against the fault-free baseline, plus the full observability layer
//! (stage histograms, span timers, frame counters) against a
//! metrics-free run — the observer-only claim says the delta should be
//! a few relaxed atomic adds per event, a few percent at most.
//!
//! Sockets are left out so the numbers isolate the daemon's own
//! pipeline (sharding, bounded queues, per-shard detection, the merge
//! barrier) from kernel TCP behaviour.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use alertops_chaos::silence_panics_containing;
use alertops_cluster::{AlertCluster, ClusterConfig, WalFormat};
use alertops_core::{AlertGovernor, GovernorConfig, StreamingConfig, StreamingGovernor};
use alertops_ingestd::{shard_catalog, Ingestd, IngestdConfig, CHAOS_PANIC_MSG};
use alertops_sim::scenarios;

fn bench_ingestd(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let strategies = out.catalog.strategies().to_vec();

    let mut group = c.benchmark_group("ingestd");
    group.sample_size(10);
    group.throughput(Throughput::Elements(out.alerts.len() as u64));
    for shards in [1usize, 4, 8] {
        let config = IngestdConfig {
            shards,
            queue_capacity: 8192,
            ..IngestdConfig::default()
        };
        let handle = Ingestd::spawn(&config, |shard, shards| {
            StreamingGovernor::new(
                AlertGovernor::new(
                    shard_catalog(&strategies, shards, shard),
                    GovernorConfig::default(),
                ),
                StreamingConfig::default(),
            )
        })
        .expect("daemon starts");
        group.bench_function(format!("route_and_close_{shards}_shards"), |b| {
            b.iter(|| {
                for alert in &out.alerts {
                    handle.route(alert.clone());
                }
                black_box(handle.flush().expect("flush yields a snapshot"))
            });
        });
        handle.shutdown();
    }
    group.finish();
}

/// Fault-free vs chaos-supervised: the same trace and window close at
/// 4 shards, with the supervised variant forcing one worker panic
/// mid-window per iteration — so the delta is exactly the price of
/// catch_unwind supervision, the restart, and checkpoint rehydration.
fn bench_chaos_supervision(c: &mut Criterion) {
    silence_panics_containing(CHAOS_PANIC_MSG);
    let out = scenarios::mini_study(2022).run();
    let strategies = out.catalog.strategies().to_vec();
    let shards = 4usize;

    let mut group = c.benchmark_group("ingestd_chaos");
    group.sample_size(10);
    group.throughput(Throughput::Elements(out.alerts.len() as u64));
    for (name, panics) in [("fault_free", 0usize), ("supervised_panic", 1)] {
        let config = IngestdConfig {
            shards,
            queue_capacity: 8192,
            ..IngestdConfig::default()
        };
        let handle = Ingestd::spawn(&config, |shard, shards| {
            StreamingGovernor::new(
                AlertGovernor::new(
                    shard_catalog(&strategies, shards, shard),
                    GovernorConfig::default(),
                ),
                StreamingConfig::default(),
            )
        })
        .expect("daemon starts");
        group.bench_function(format!("{name}_{shards}_shards"), |b| {
            b.iter(|| {
                let half = out.alerts.len() / 2;
                for alert in &out.alerts[..half] {
                    handle.route(alert.clone());
                }
                for _ in 0..panics {
                    handle.inject_panic(0, false);
                }
                for alert in &out.alerts[half..] {
                    handle.route(alert.clone());
                }
                black_box(handle.flush().expect("flush yields a snapshot"))
            });
        });
        handle.shutdown();
    }
    group.finish();
}

/// Metrics on vs off: the same trace and window close at 4 shards,
/// with the only difference being [`IngestdConfig::metrics`] — so the
/// delta is exactly the cost of the instrumentation (relaxed atomic
/// bumps, histogram bucket adds, `Instant::now` pairs per span).
fn bench_metrics_overhead(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let strategies = out.catalog.strategies().to_vec();
    let shards = 4usize;

    let mut group = c.benchmark_group("ingestd_metrics");
    group.sample_size(10);
    group.throughput(Throughput::Elements(out.alerts.len() as u64));
    for (name, metrics) in [("metrics_off", false), ("metrics_on", true)] {
        let config = IngestdConfig {
            shards,
            queue_capacity: 8192,
            metrics,
            ..IngestdConfig::default()
        };
        let handle = Ingestd::spawn(&config, |shard, shards| {
            StreamingGovernor::new(
                AlertGovernor::new(
                    shard_catalog(&strategies, shards, shard),
                    GovernorConfig::default(),
                ),
                StreamingConfig::default(),
            )
        })
        .expect("daemon starts");
        group.bench_function(format!("{name}_{shards}_shards"), |b| {
            b.iter(|| {
                for alert in &out.alerts {
                    handle.route(alert.clone());
                }
                black_box(handle.flush().expect("flush yields a snapshot"))
            });
        });
        handle.shutdown();
    }
    group.finish();
}

/// The cluster layer at 1, 2, and 4 nodes: range routing, per-node
/// write-ahead journaling (append + flush per alert, fsync per window
/// boundary), the per-node daemon pipeline, and the cross-node monoid
/// merge — so the 1-node row isolates the WAL tax over the bare daemon
/// above, and the multi-node rows show what the topology adds.
fn bench_cluster(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let catalog = out.catalog.strategies().to_vec();
    let mut trace = out.alerts.clone();
    trace.sort_by_key(|a| (a.raised_at(), a.id()));

    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for nodes in [1usize, 2, 4] {
        let root = std::env::temp_dir().join(format!(
            "alertops-cluster-bench-{nodes}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let config = ClusterConfig {
            nodes,
            node: IngestdConfig {
                shards: 2,
                queue_capacity: 8192,
                ..IngestdConfig::default()
            },
            wal_root: root.clone(),
            wal_format: WalFormat::default(),
        };
        let mut cluster = AlertCluster::spawn(
            config,
            catalog.clone(),
            Arc::new(|node_catalog: &[_]| {
                StreamingGovernor::new(
                    AlertGovernor::new(node_catalog.to_vec(), GovernorConfig::default()),
                    StreamingConfig::default(),
                )
            }),
        )
        .expect("cluster spawns");
        group.bench_function(format!("route_and_close_{nodes}_nodes"), |b| {
            b.iter(|| {
                for alert in &trace {
                    cluster.route(alert.clone()).expect("route succeeds");
                }
                black_box(cluster.close_window().expect("window closes"))
            });
        });
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ingestd,
    bench_chaos_supervision,
    bench_metrics_overhead,
    bench_cluster
);
criterion_main!(benches);
