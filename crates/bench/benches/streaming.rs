//! Criterion benches: per-window streaming ingest — the incremental
//! detection engine against the pre-refactor batch recompute, at two
//! rolling-history depths. The batch baseline scales with history; the
//! incremental engine's cost is O(window), so the gap widens with
//! `history_windows`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use alertops_bench::oracle::BatchRecomputeGovernor;
use alertops_core::{AlertGovernor, GovernorConfig, StreamingConfig, StreamingGovernor};
use alertops_model::{Alert, AlertStrategy};
use alertops_sim::scenarios;

const WINDOW_LEN: usize = 64;

fn bench_streaming(c: &mut Criterion) {
    let out = scenarios::mini_study(2022).run();
    let strategies: Vec<AlertStrategy> = out.catalog.strategies().to_vec();
    let mut trace = out.alerts;
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let windows: Vec<Vec<Alert>> = trace.chunks(WINDOW_LEN).map(<[Alert]>::to_vec).collect();

    let governor = || AlertGovernor::new(strategies.clone(), GovernorConfig::default());
    let config = |history_windows| StreamingConfig {
        history_windows,
        ..StreamingConfig::default()
    };

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for history_windows in [24usize, 96] {
        group.bench_function(format!("incremental_ingest_h{history_windows}"), |b| {
            b.iter(|| {
                let mut s = StreamingGovernor::new(governor(), config(history_windows));
                for w in &windows {
                    black_box(s.ingest(w, &[]));
                }
            });
        });
        group.bench_function(format!("batch_recompute_h{history_windows}"), |b| {
            b.iter(|| {
                let mut s = BatchRecomputeGovernor::new(governor(), config(history_windows));
                for w in &windows {
                    black_box(s.ingest(w, &[]));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
