//! Criterion benches: per-window streaming ingest — the incremental
//! detection engine against the pre-refactor batch recompute, at two
//! rolling-history depths — plus the per-window cost of the emerging
//! (AO-LDA) channel. The batch baseline scales with history; the
//! incremental engine's cost is O(window), so the gap widens with
//! `history_windows`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use alertops_bench::oracle::BatchRecomputeGovernor;
use alertops_core::{
    AlertGovernor, EmergingChannel, EmergingMode, GovernorConfig, StreamingConfig,
    StreamingGovernor,
};
use alertops_model::{Alert, AlertStrategy};
use alertops_react::EmergingConfig;
use alertops_sim::scenarios;

const WINDOW_LEN: usize = 64;

/// The shared trace: the mini-study simulation, time-sorted and cut
/// into fixed-length ingest windows.
fn trace_windows() -> (Vec<AlertStrategy>, Vec<Vec<Alert>>, usize) {
    let out = scenarios::mini_study(2022).run();
    let strategies: Vec<AlertStrategy> = out.catalog.strategies().to_vec();
    let mut trace = out.alerts;
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let len = trace.len();
    let windows: Vec<Vec<Alert>> = trace.chunks(WINDOW_LEN).map(<[Alert]>::to_vec).collect();
    (strategies, windows, len)
}

fn bench_streaming(c: &mut Criterion) {
    let (strategies, windows, alerts) = trace_windows();
    let governor = || AlertGovernor::new(strategies.clone(), GovernorConfig::default());
    let config = |history_windows| StreamingConfig {
        history_windows,
        ..StreamingConfig::default()
    };

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(alerts as u64));
    for history_windows in [24usize, 96] {
        group.bench_function(format!("incremental_ingest_h{history_windows}"), |b| {
            b.iter(|| {
                let mut s = StreamingGovernor::new(governor(), config(history_windows));
                for w in &windows {
                    black_box(s.ingest(w, &[]));
                }
            });
        });
        group.bench_function(format!("batch_recompute_h{history_windows}"), |b| {
            b.iter(|| {
                let mut s = BatchRecomputeGovernor::new(governor(), config(history_windows));
                for w in &windows {
                    black_box(s.ingest(w, &[]));
                }
            });
        });
    }
    group.finish();
}

/// Per-window AO-LDA latency: the same ingest loop with the emerging
/// channel off, forwarding documents only, and running the full local
/// AO-LDA pass. The off/local gap is what the channel costs a window.
fn bench_emerging(c: &mut Criterion) {
    let (strategies, windows, alerts) = trace_windows();
    let governor = || AlertGovernor::new(strategies.clone(), GovernorConfig::default());
    let config = |mode| StreamingConfig {
        emerging: EmergingChannel {
            mode,
            config: EmergingConfig::default(),
        },
        ..StreamingConfig::default()
    };

    let mut group = c.benchmark_group("emerging");
    group.sample_size(10);
    group.throughput(Throughput::Elements(alerts as u64));
    for (label, mode) in [
        ("ingest_emerging_off", EmergingMode::Off),
        ("ingest_emerging_forward", EmergingMode::Forward),
        ("ingest_emerging_local", EmergingMode::Local),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut s = StreamingGovernor::new(governor(), config(mode));
                for w in &windows {
                    black_box(s.ingest(w, &[]));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming, bench_emerging);
criterion_main!(benches);
