//! Shared plumbing for the figure-regeneration harnesses and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! DSN'22 paper and prints `paper → measured` rows; `experiments`
//! runs them all and emits the dataset recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use alertops_model::{Alert, StrategyId};

pub mod oracle;

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a `paper → measured` comparison row.
pub fn compare(label: &str, paper: &str, measured: &str) {
    println!("  {label:<44} paper: {paper:<22} measured: {measured}");
}

/// Counts alerts per strategy.
#[must_use]
pub fn per_strategy_counts(alerts: &[Alert]) -> HashMap<StrategyId, usize> {
    let mut counts = HashMap::new();
    for alert in alerts {
        *counts.entry(alert.strategy()).or_insert(0) += 1;
    }
    counts
}

/// Formats a fraction as a percentage string.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// A fixed-seed used across all harnesses so EXPERIMENTS.md is stable.
pub const HARNESS_SEED: u64 = 2022;
