//! Fig. 6 — incorporating human knowledge and machine learning to detect
//! anti-patterns of alerts: the three-stage mitigation loop (avoid →
//! react → automatically detect / QoA).
//!
//! The harness runs one governance pass over a simulated study and shows
//! each stage producing its artifact, then validates the "detect" stage
//! by scoring the QoA shortlist against the injected ground truth.
//!
//! Run with: `cargo run --release -p alertops-bench --bin fig6`

use alertops_bench::{compare, header, pct, HARNESS_SEED};
use alertops_core::prelude::*;
use alertops_core::{apply_fixes, suggest_fixes, RemediationConfig};
use alertops_sim::scenarios;
use std::collections::BTreeSet;

fn main() {
    let out = scenarios::mini_study(HARNESS_SEED).run();
    let fault_tolerant: BTreeSet<MicroserviceId> = out
        .topology
        .microservices()
        .iter()
        .filter(|ms| ms.fault_tolerant)
        .map(|ms| ms.id)
        .collect();
    let governor = AlertGovernor::new(
        out.catalog.strategies().to_vec(),
        GovernorConfig {
            guideline_context: GuidelineContext { fault_tolerant },
            ..GovernorConfig::default()
        },
    )
    .with_sops(
        out.catalog
            .strategies()
            .iter()
            .filter_map(|s| out.catalog.sop(s.id()).cloned()),
    )
    .with_dependency_graph(out.topology.dependency_graph());

    header("Fig. 6: the three-stage mitigation loop");
    let report = governor.govern(&out.alerts, &out.incidents);

    println!("\nStage 1 — AVOID (preventative guidelines at config time):");
    println!(
        "  {} violations across {} strategies",
        report.guideline_violations.len(),
        out.catalog.strategies().len()
    );

    println!("\nStage 2 — REACT (postmortem reactions on the live stream):");
    println!(
        "  {} blocking rules derived from A4/A5 findings",
        report.derived_blocking_rules
    );
    for stage in &report.pipeline.stages {
        println!("  after {:<12} {:>7} items", stage.stage, stage.remaining);
    }
    println!("  volume reduction {}", pct(report.pipeline.reduction));

    println!("\nStage 3 — DETECT (automatic anti-pattern detection / QoA):");
    print!("  {}", report.anti_patterns);
    println!("  cascade groups: {}", report.anti_patterns.cascades.len());

    println!("\nStage 3½ — REMEDIATE (the loop's feedback edge):");
    {
        let graph = out.topology.dependency_graph();
        let input = DetectionInput::new(out.catalog.strategies())
            .with_alerts(&out.alerts)
            .with_incidents(&out.incidents)
            .with_graph(&graph);
        let fixes = suggest_fixes(
            out.catalog.strategies(),
            &report.anti_patterns,
            &input,
            &RemediationConfig::default(),
        );
        let mechanical = fixes.iter().filter(|f| f.revised.is_some()).count();
        let advisories = fixes.len() - mechanical;
        println!(
            "  {} fixes proposed: {mechanical} mechanical (debounce/cooldown/severity), {advisories} human advisories (titles, targets)",
            fixes.len()
        );
        let fixed = apply_fixes(out.catalog.strategies(), &fixes);
        let changed = fixed
            .iter()
            .zip(out.catalog.strategies())
            .filter(|(a, b)| a != b)
            .count();
        println!("  {changed} strategies corrected in place");
    }

    header("loop validation: does automatic detection find the real offenders?");
    let shortlist = report.review_shortlist(60);
    let injected_in_shortlist = shortlist
        .iter()
        .filter(|q| out.catalog.profile(q.strategy).any())
        .count();
    let base_rate = out
        .catalog
        .strategies()
        .iter()
        .filter(|s| out.catalog.profile(s.id()).any())
        .count() as f64
        / out.catalog.strategies().len() as f64;
    compare(
        "injected offenders in worst-60 QoA shortlist",
        "enriched vs base rate",
        &format!(
            "{} vs base {}",
            pct(injected_in_shortlist as f64 / shortlist.len() as f64),
            pct(base_rate)
        ),
    );
    assert!(
        injected_in_shortlist as f64 / shortlist.len() as f64 > base_rate,
        "QoA shortlist is not enriched"
    );
    compare(
        "governance loop closes",
        "detected anti-patterns feed strategy fixes",
        &format!(
            "{} findings + {} guideline violations → review queue",
            report.anti_patterns.finding_count(),
            report.guideline_violations.len()
        ),
    );
}
