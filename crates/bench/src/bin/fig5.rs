//! Fig. 5 — the example Standard Operation Procedure for the alert
//! `nginx_cpu_usage_over_80`, rendered from the structured [`Sop`] type.
//!
//! Run with: `cargo run -p alertops-bench --bin fig5`

use alertops_bench::header;
use alertops_model::{Sop, StrategyId};

fn main() {
    header("Fig. 5: an example Standard Operation Procedure");
    let sop = Sop::builder("nginx_cpu_usage_over_80", StrategyId(12))
        .description("CPU usage of nginx instance is higher than 80%")
        .generation_rule(
            "Continuously check the CPU usage of nginx instance, generate the alert when \
             usage is higher than 80%.",
        )
        .potential_impact("Affects the forwarding of all requests.")
        .possible_cause("The workload is too high.")
        .possible_cause("A runaway worker process is spinning.")
        .step("execute command `top -bn1` in the instance")
        .step("compare worker count against the deployment manifest")
        .step("if the load is organic, scale out the nginx tier; otherwise restart the runaway worker")
        .build()
        .expect("the Fig. 5 SOP is structurally valid");
    println!("\n{sop}");
    println!("completeness score: {:.2}", sop.completeness());
    assert!((sop.completeness() - 1.0).abs() < f64::EPSILON);
}
