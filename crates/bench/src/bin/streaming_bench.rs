//! Regenerates `BENCH_streaming.json`: per-window ingest cost of the
//! incremental detection engine vs the pre-refactor batch recompute,
//! on the same simulated trace, at two history depths — plus the
//! per-window latency of the emerging (AO-LDA) channel.
//!
//! Before timing, every per-window delta of the two implementations is
//! compared as serialized JSON — the speedup is only reported for
//! provably identical output. The emerging rows likewise first prove
//! the governor's local pass identical to a standalone fit-free
//! detector fed the same id-sorted windows, and the QoA rows prove the
//! governor's local feedback loop identical to a standalone online
//! model fed the samples a Forward-mode governor emits.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use alertops_bench::oracle::BatchRecomputeGovernor;
use alertops_bench::{header, HARNESS_SEED};
use alertops_core::{
    AlertGovernor, EmergingChannel, EmergingMode, GovernorConfig, OnlineQoaModel, QoaChannel,
    QoaFeedbackConfig, QoaMode, StreamingConfig, StreamingGovernor,
};
use alertops_model::{Alert, AlertStrategy, QoaLabel};
use alertops_react::{EmergingAlertDetector, EmergingBudget, EmergingConfig, EmergingDoc};
use alertops_sim::{scenarios, FeedbackOracle, SimOutput};

const WINDOW_LEN: usize = 64;
const HISTORY_DEPTHS: [usize; 2] = [24, 96];
/// Token cap for the budgeted row — roughly half this trace's ~470
/// tokens per window, so the sampler genuinely engages every window.
/// The row is a cost *bound*, not a speedup: on mild windows like these
/// the sampled counts converge less smoothly (more passes survive the
/// relative-tolerance exit), so `local_budget` is expected to sit near —
/// sometimes above — plain `local`. The budget earns its keep on storm
/// windows, where per-pass cost grows with token count and the cap
/// holds it flat.
const BUDGET_CAP: usize = 256;

#[derive(Serialize)]
struct HistoryRow {
    history_windows: usize,
    batch_micros_per_window: f64,
    incremental_micros_per_window: f64,
    speedup: f64,
    outputs_identical: bool,
}

#[derive(Serialize)]
struct EmergingRow {
    mode: &'static str,
    micros_per_window: f64,
}

#[derive(Serialize)]
struct EmergingSummary {
    /// Added AO-LDA cost per window: local minus off.
    aolda_micros_per_window: f64,
    outputs_identical: bool,
    /// Two budget-capped runs with the same seed emit byte-identical
    /// per-window reports (the `local_budget` row's differential).
    budget_replayable: bool,
    results: Vec<EmergingRow>,
}

#[derive(Serialize)]
struct QoaRow {
    mode: &'static str,
    micros_per_window: f64,
}

#[derive(Serialize)]
struct QoaSummary {
    /// Added feedback-loop cost per window: local minus off.
    qoa_micros_per_window: f64,
    /// The governor's local loop matches a standalone online model fed
    /// the samples a Forward-mode governor emits — the same
    /// shard-to-coordinator contract the daemon differentials pin.
    outputs_identical: bool,
    results: Vec<QoaRow>,
}

#[derive(Serialize)]
struct Summary {
    seed: u64,
    windows: usize,
    window_len: usize,
    alerts: usize,
    results: Vec<HistoryRow>,
    emerging: EmergingSummary,
    qoa: QoaSummary,
}

fn config(history_windows: usize) -> StreamingConfig {
    StreamingConfig {
        history_windows,
        ..StreamingConfig::default()
    }
}

fn governor(strategies: &[AlertStrategy]) -> AlertGovernor {
    AlertGovernor::new(strategies.to_vec(), GovernorConfig::default())
}

fn emerging_config(mode: EmergingMode, budget: Option<EmergingBudget>) -> StreamingConfig {
    StreamingConfig {
        emerging: EmergingChannel {
            mode,
            config: EmergingConfig {
                budget,
                ..EmergingConfig::default()
            },
        },
        ..StreamingConfig::default()
    }
}

/// Times the ingest loop with the emerging channel off, forwarding, and
/// running AO-LDA locally; the off/local gap is the channel's
/// per-window latency. Differential first: the governor's local pass
/// must match a standalone fit-free detector fed the same id-sorted
/// document windows.
fn bench_emerging(strategies: &[AlertStrategy], windows: &[Vec<Alert>]) -> EmergingSummary {
    let mut local = StreamingGovernor::new(
        governor(strategies),
        emerging_config(EmergingMode::Local, None),
    );
    let mut detector = EmergingAlertDetector::new(EmergingConfig::default());
    let outputs_identical = windows.iter().all(|w| {
        let delta = local.ingest(w, &[]);
        let mut docs: Vec<EmergingDoc> = w.iter().map(EmergingDoc::from_alert).collect();
        docs.sort_by_key(|d| d.alert);
        let report = detector.observe_docs(&docs);
        serde_json::to_string(&delta.emerging).unwrap()
            == serde_json::to_string(&Some(report)).unwrap()
    });
    assert!(
        outputs_identical,
        "governor local pass diverged from the standalone detector"
    );

    // Second differential: the opt-in budget must be seed-replayable —
    // two capped governors with the same seed emit byte-identical
    // per-window reports, or the budgeted row is meaningless.
    let budget = Some(EmergingBudget::new(BUDGET_CAP, HARNESS_SEED));
    let budgeted_run = || -> Vec<String> {
        let mut s = StreamingGovernor::new(
            governor(strategies),
            emerging_config(EmergingMode::Local, budget),
        );
        windows
            .iter()
            .map(|w| serde_json::to_string(&s.ingest(w, &[]).emerging).unwrap())
            .collect()
    };
    let budget_replayable = budgeted_run() == budgeted_run();
    assert!(
        budget_replayable,
        "budget-capped runs with the same seed diverged"
    );

    let modes = [
        ("off", EmergingMode::Off, None),
        ("forward", EmergingMode::Forward, None),
        ("local", EmergingMode::Local, None),
        ("local_budget", EmergingMode::Local, budget),
    ];
    let mut per_window = Vec::new();
    let mut results = Vec::new();
    for (mode_name, mode, budget) in modes {
        let mut s = StreamingGovernor::new(governor(strategies), emerging_config(mode, budget));
        let start = Instant::now();
        for w in windows {
            black_box(s.ingest(w, &[]));
        }
        let micros = start.elapsed().as_micros() as f64 / windows.len() as f64;
        per_window.push(micros);
        results.push(EmergingRow {
            mode: mode_name,
            micros_per_window: micros,
        });
        println!("  per-window ingest, emerging={mode_name:<8} {micros:>7.0}µs");
    }
    let aolda_micros_per_window = (per_window[2] - per_window[0]).max(0.0);
    println!("  AO-LDA added latency: {aolda_micros_per_window:>7.0}µs per window");
    EmergingSummary {
        aolda_micros_per_window,
        outputs_identical,
        budget_replayable,
        results,
    }
}

fn qoa_config(mode: QoaMode) -> StreamingConfig {
    StreamingConfig {
        qoa: QoaChannel {
            mode,
            config: QoaFeedbackConfig::default(),
        },
        ..StreamingConfig::default()
    }
}

/// Times the ingest loop with the QoA feedback loop off, forwarding
/// samples, and updating the model locally; the off/local gap is the
/// loop's per-window latency. Differential first: the local loop must
/// match a standalone [`OnlineQoaModel`] fed the samples a
/// Forward-mode governor emits for the same windows and labels.
fn bench_qoa(out: &SimOutput, windows: &[Vec<Alert>]) -> QoaSummary {
    let strategies = out.catalog.strategies().to_vec();
    let oracle = FeedbackOracle::new(HARNESS_SEED, 0.0);
    let labels: Vec<Vec<QoaLabel>> = windows
        .iter()
        .enumerate()
        .map(|(seq, w)| oracle.label_window(seq as u64, &out.catalog, w, &out.incidents))
        .collect();

    let mut local = StreamingGovernor::new(governor(&strategies), qoa_config(QoaMode::Local));
    let mut forward = StreamingGovernor::new(governor(&strategies), qoa_config(QoaMode::Forward));
    let mut model = OnlineQoaModel::new(QoaFeedbackConfig::default());
    let outputs_identical = windows.iter().zip(&labels).all(|(w, labels)| {
        let local_report = local.ingest_labeled(w, &[], labels).qoa;
        let samples = forward.ingest(w, &[]).qoa_samples;
        let report = model.observe_window(&samples, labels);
        serde_json::to_string(&local_report).unwrap()
            == serde_json::to_string(&Some(report)).unwrap()
    });
    assert!(
        outputs_identical,
        "governor local QoA loop diverged from the standalone model"
    );

    let modes = [
        ("off", QoaMode::Off),
        ("forward", QoaMode::Forward),
        ("local", QoaMode::Local),
    ];
    let mut per_window = Vec::new();
    let mut results = Vec::new();
    for (mode_name, mode) in modes {
        let mut s = StreamingGovernor::new(governor(&strategies), qoa_config(mode));
        let start = Instant::now();
        for (w, labels) in windows.iter().zip(&labels) {
            black_box(s.ingest_labeled(w, &[], labels));
        }
        let micros = start.elapsed().as_micros() as f64 / windows.len() as f64;
        per_window.push(micros);
        results.push(QoaRow {
            mode: mode_name,
            micros_per_window: micros,
        });
        println!("  per-window ingest, qoa={mode_name:<8} {micros:>7.0}µs");
    }
    let qoa_micros_per_window = (per_window[2] - per_window[0]).max(0.0);
    println!("  QoA loop added latency: {qoa_micros_per_window:>7.0}µs per window");
    QoaSummary {
        qoa_micros_per_window,
        outputs_identical,
        results,
    }
}

fn main() {
    header("streaming ingest: incremental engine vs batch recompute");
    let out = scenarios::mini_study(HARNESS_SEED).run();
    let strategies = out.catalog.strategies().to_vec();
    let mut trace = out.alerts.clone();
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let windows: Vec<Vec<Alert>> = trace.chunks(WINDOW_LEN).map(<[Alert]>::to_vec).collect();

    let mut results = Vec::new();
    for history_windows in HISTORY_DEPTHS {
        // Differential first: identical deltas, or no benchmark.
        let mut incremental =
            StreamingGovernor::new(governor(&strategies), config(history_windows));
        let mut batch = BatchRecomputeGovernor::new(governor(&strategies), config(history_windows));
        let outputs_identical = windows.iter().all(|w| {
            let fast = incremental.ingest(w, &[]);
            let slow = batch.ingest(w, &[]);
            serde_json::to_string(&fast).unwrap() == serde_json::to_string(&slow).unwrap()
        });
        assert!(
            outputs_identical,
            "incremental and batch deltas diverged at history_windows={history_windows}"
        );

        let mut incremental =
            StreamingGovernor::new(governor(&strategies), config(history_windows));
        let start = Instant::now();
        for w in &windows {
            black_box(incremental.ingest(w, &[]));
        }
        let incremental_total = start.elapsed();

        let mut batch = BatchRecomputeGovernor::new(governor(&strategies), config(history_windows));
        let start = Instant::now();
        for w in &windows {
            black_box(batch.ingest(w, &[]));
        }
        let batch_total = start.elapsed();

        let per_window =
            |total: std::time::Duration| total.as_micros() as f64 / windows.len() as f64;
        let row = HistoryRow {
            history_windows,
            batch_micros_per_window: per_window(batch_total),
            incremental_micros_per_window: per_window(incremental_total),
            speedup: batch_total.as_secs_f64() / incremental_total.as_secs_f64(),
            outputs_identical,
        };
        println!(
            "  per-window ingest, history={:<3}  batch: {:>7.0}µs  incremental: {:>5.0}µs  ({:.1}× faster)",
            history_windows,
            row.batch_micros_per_window,
            row.incremental_micros_per_window,
            row.speedup
        );
        results.push(row);
    }

    let emerging = bench_emerging(&strategies, &windows);
    let qoa = bench_qoa(&out, &windows);
    let summary = Summary {
        seed: HARNESS_SEED,
        windows: windows.len(),
        window_len: WINDOW_LEN,
        alerts: trace.len(),
        results,
        emerging,
        qoa,
    };
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write("BENCH_streaming.json", format!("{json}\n"))
        .expect("write BENCH_streaming.json");
    println!("\nwrote BENCH_streaming.json");
}
