//! Regenerates `BENCH_streaming.json`: per-window ingest cost of the
//! incremental detection engine vs the pre-refactor batch recompute,
//! on the same simulated trace, at two history depths.
//!
//! Before timing, every per-window delta of the two implementations is
//! compared as serialized JSON — the speedup is only reported for
//! provably identical output.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use alertops_bench::oracle::BatchRecomputeGovernor;
use alertops_bench::{header, HARNESS_SEED};
use alertops_core::{AlertGovernor, GovernorConfig, StreamingConfig, StreamingGovernor};
use alertops_model::{Alert, AlertStrategy};
use alertops_sim::scenarios;

const WINDOW_LEN: usize = 64;
const HISTORY_DEPTHS: [usize; 2] = [24, 96];

#[derive(Serialize)]
struct HistoryRow {
    history_windows: usize,
    batch_micros_per_window: f64,
    incremental_micros_per_window: f64,
    speedup: f64,
    outputs_identical: bool,
}

#[derive(Serialize)]
struct Summary {
    seed: u64,
    windows: usize,
    window_len: usize,
    alerts: usize,
    results: Vec<HistoryRow>,
}

fn config(history_windows: usize) -> StreamingConfig {
    StreamingConfig {
        history_windows,
        ..StreamingConfig::default()
    }
}

fn governor(strategies: &[AlertStrategy]) -> AlertGovernor {
    AlertGovernor::new(strategies.to_vec(), GovernorConfig::default())
}

fn main() {
    header("streaming ingest: incremental engine vs batch recompute");
    let out = scenarios::mini_study(HARNESS_SEED).run();
    let strategies = out.catalog.strategies().to_vec();
    let mut trace = out.alerts;
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let windows: Vec<Vec<Alert>> = trace.chunks(WINDOW_LEN).map(<[Alert]>::to_vec).collect();

    let mut results = Vec::new();
    for history_windows in HISTORY_DEPTHS {
        // Differential first: identical deltas, or no benchmark.
        let mut incremental =
            StreamingGovernor::new(governor(&strategies), config(history_windows));
        let mut batch = BatchRecomputeGovernor::new(governor(&strategies), config(history_windows));
        let outputs_identical = windows.iter().all(|w| {
            let fast = incremental.ingest(w, &[]);
            let slow = batch.ingest(w, &[]);
            serde_json::to_string(&fast).unwrap() == serde_json::to_string(&slow).unwrap()
        });
        assert!(
            outputs_identical,
            "incremental and batch deltas diverged at history_windows={history_windows}"
        );

        let mut incremental =
            StreamingGovernor::new(governor(&strategies), config(history_windows));
        let start = Instant::now();
        for w in &windows {
            black_box(incremental.ingest(w, &[]));
        }
        let incremental_total = start.elapsed();

        let mut batch = BatchRecomputeGovernor::new(governor(&strategies), config(history_windows));
        let start = Instant::now();
        for w in &windows {
            black_box(batch.ingest(w, &[]));
        }
        let batch_total = start.elapsed();

        let per_window =
            |total: std::time::Duration| total.as_micros() as f64 / windows.len() as f64;
        let row = HistoryRow {
            history_windows,
            batch_micros_per_window: per_window(batch_total),
            incremental_micros_per_window: per_window(incremental_total),
            speedup: batch_total.as_secs_f64() / incremental_total.as_secs_f64(),
            outputs_identical,
        };
        println!(
            "  per-window ingest, history={:<3}  batch: {:>7.0}µs  incremental: {:>5.0}µs  ({:.1}× faster)",
            history_windows,
            row.batch_micros_per_window,
            row.incremental_micros_per_window,
            row.speedup
        );
        results.push(row);
    }

    let summary = Summary {
        seed: HARNESS_SEED,
        windows: windows.len(),
        window_len: WINDOW_LEN,
        alerts: trace.len(),
        results,
    };
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write("BENCH_streaming.json", format!("{json}\n"))
        .expect("write BENCH_streaming.json");
    println!("\nwrote BENCH_streaming.json");
}
