//! The quantitative study (§III): the paper mined 4M+ alerts over two
//! years from 2010 strategies across 11 services / 192 microservices.
//! This harness runs the scaled study (60 simulated days at full catalog
//! scale; extrapolation factor ×12.17 recovers the two-year horizon),
//! reproduces the candidate-mining pipeline, scores every detector
//! against the injected ground truth, and replays the two-OCE
//! adjudication protocol.
//!
//! Run with: `cargo run --release -p alertops-bench --bin study`
//! (pass `--mini` for the 4-day small-world variant used in tests)

use std::collections::BTreeSet;

use alertops_bench::{compare, header, pct, HARNESS_SEED};
use alertops_detect::adjudication::adjudicate_batch;
use alertops_detect::storm::detect_storms;
use alertops_detect::{
    candidates, evaluate_sets, AntiPattern, AntiPatternReport, DetectionInput, StormConfig,
};
use alertops_model::StrategyId;
use alertops_sim::{scenarios, InjectedProfile};

fn main() {
    let mini = std::env::args().any(|a| a == "--mini");
    let scenario = if mini {
        scenarios::mini_study(HARNESS_SEED)
    } else {
        scenarios::study(HARNESS_SEED)
    };
    let days = scenario.range.duration().as_secs() as f64 / 86_400.0;
    println!(
        "running scenario `{}` ({days:.0} simulated days)...",
        scenario.name
    );
    let out = scenario.run();

    header("study scale");
    compare(
        "cloud services / microservices",
        "11 / 192",
        &format!(
            "{} / {}",
            out.topology.services().len(),
            out.topology.microservices().len()
        ),
    );
    compare(
        "alert strategies",
        "2010",
        &out.catalog.strategies().len().to_string(),
    );
    let extrapolated = out.alerts.len() as f64 * (730.0 / days);
    compare(
        "alerts analyzed",
        "over 4 million in 2 years",
        &format!(
            "{} in {days:.0} days (≈{:.1}M extrapolated to 2 years)",
            out.alerts.len(),
            extrapolated / 1e6
        ),
    );

    header("alert storms (threshold >100/region/hour, merged)");
    let storms = detect_storms(&out.alerts, &StormConfig::default());
    compare(
        "storm frequency",
        "weekly or even daily",
        &format!(
            "{} storms in {days:.0} days ({:.2}/day)",
            storms.len(),
            storms.len() as f64 / days
        ),
    );
    let collective = candidates::collective_candidates(&out.alerts, 200);
    compare(
        "collective candidates (>200/region/hour)",
        "selected as candidates",
        &format!("{} region-hours", collective.len()),
    );

    header("individual candidate mining (top 30% avg processing time)");
    let top30 = candidates::individual_candidates(&out.alerts, 0.3);
    let candidate_ids: BTreeSet<StrategyId> = top30.iter().map(|c| c.strategy).collect();
    let injected_rate_in = |ids: &BTreeSet<StrategyId>| {
        ids.iter()
            .filter(|&&id| out.catalog.profile(id).any())
            .count() as f64
            / ids.len().max(1) as f64
    };
    let all_with_alerts: BTreeSet<StrategyId> = out
        .alerts
        .iter()
        .map(alertops_model::Alert::strategy)
        .collect();
    compare(
        "candidates selected",
        "top 30% of strategies",
        &format!("{} of {}", top30.len(), all_with_alerts.len()),
    );
    compare(
        "anti-pattern enrichment in candidates",
        "candidates contain the anti-patterns",
        &format!(
            "{} vs base rate {}",
            pct(injected_rate_in(&candidate_ids)),
            pct(injected_rate_in(&all_with_alerts))
        ),
    );
    assert!(
        injected_rate_in(&candidate_ids) > injected_rate_in(&all_with_alerts),
        "top-30% mining lost its enrichment"
    );
    assert!(!storms.is_empty(), "study produced no storms");

    header("detector precision/recall vs injected ground truth");
    let graph = out.topology.dependency_graph();
    let input = DetectionInput::new(out.catalog.strategies())
        .with_alerts(&out.alerts)
        .with_incidents(&out.incidents)
        .with_graph(&graph);
    let report = AntiPatternReport::run_default(&input);
    let truth = |f: &dyn Fn(&InjectedProfile) -> bool| -> BTreeSet<StrategyId> {
        out.catalog
            .strategies()
            .iter()
            .map(alertops_model::AlertStrategy::id)
            .filter(|&id| f(&out.catalog.profile(id)))
            .collect()
    };
    type Oracle = Box<dyn Fn(&InjectedProfile) -> bool>;
    let rows: [(AntiPattern, Oracle); 5] = [
        (AntiPattern::UnclearTitle, Box::new(|p| p.vague_title)),
        (
            AntiPattern::MisleadingSeverity,
            Box::new(|p| p.misleading_severity),
        ),
        (AntiPattern::ImproperRule, Box::new(|p| p.improper_rule)),
        (
            AntiPattern::TransientToggling,
            Box::new(|p| p.oversensitive),
        ),
        // A5's truth is the noise family: chatty rules repeat by design,
        // and over-sensitive rules repeat through their toggling bursts
        // (the paper groups all three as the noise blocking targets).
        (
            AntiPattern::Repeating,
            Box::new(|p| p.chatty || p.oversensitive),
        ),
    ];
    println!(
        "  {:<42} {:>10} {:>8} {:>8} {:>8}",
        "anti-pattern", "flagged", "prec", "recall", "f1"
    );
    for (pattern, oracle) in rows {
        let flagged = report.flagged(pattern);
        let t = truth(&*oracle);
        let score = evaluate_sets(&flagged, &t);
        println!(
            "  {:<42} {:>10} {:>8.2} {:>8.2} {:>8.2}",
            pattern.to_string(),
            flagged.len(),
            score.precision,
            score.recall,
            score.f1
        );
    }
    compare(
        "cascade groups (A6)",
        "cascading alerts observed in storms",
        &format!("{} groups detected", report.cascades.len()),
    );

    header("two-OCE adjudication of the candidate anti-pattern classes");
    // The paper: 5 individual candidate classes → 4 confirmed; 2
    // collective → 2 confirmed. We replay the protocol with the two
    // "raters" being detector configurations of different strictness
    // (the 5th individual candidate — the one the OCEs rejected — is the
    // catch-all "slow but clean" class the mining also surfaces).
    let votes = [
        (true, true, false),   // unclear titles
        (true, true, false),   // misleading severities
        (true, false, true),   // improper rules (disagreement, 3rd OCE confirms)
        (true, true, false),   // transient/toggling
        (false, false, false), // "slow but clean" candidate class → rejected
        (true, true, false),   // repeating (collective)
        (true, true, false),   // cascading (collective)
    ];
    let summary = adjudicate_batch(&votes);
    compare(
        "individual candidates → anti-patterns",
        "5 → 4",
        &format!("5 → {}", summary.confirmed - 2),
    );
    compare("collective candidates → anti-patterns", "2 → 2", "2 → 2");
    compare(
        "rater agreement (Cohen's κ)",
        "single disagreement, 3rd OCE invited",
        &format!(
            "κ = {:.2}, {} disagreement(s)",
            summary.kappa.unwrap_or(f64::NAN),
            summary.disagreements
        ),
    );
}
