//! Regenerates `BENCH_soak.json`: the sustained soak/load run — a
//! statistical scenario streamed over real TCP (NDJSON lines or
//! `alertops-wire` binary frames, per `--wire` /
//! `ALERTOPS_SOAK_WIRE`) into a live `alertops-ingestd`, observed from
//! the outside through the status socket's Prometheus exposition, and
//! gated on:
//!
//! * sustained throughput (≥ 1M alerts/hour wall-clock equivalent),
//! * peak RSS under the asserted ceiling,
//! * the conservation law (`ingested == delivered + dropped +
//!   quarantined`) over the whole run, and
//! * byte-identity of a sampled window prefix against in-process oracle
//!   re-runs at 1 and 4 shards.
//!
//! The JSON is written *before* the gates are asserted, so a violation
//! both fails this binary and leaves a greppable
//! `"outputs_identical": false` / `"ceiling_ok": false` in the report —
//! `scripts/ci.sh` checks for those independently.
//!
//! The default run is the CI-sized smoke soak (one simulated day,
//! seconds of wall time). Set `ALERTOPS_SOAK_FULL=1` for the full
//! three-day, 8000-strategy, multi-tenant soak.

use alertops_bench::{compare, header, HARNESS_SEED};
use alertops_load::{run_soak, SoakConfig};
use alertops_wire::WireFormat;

/// `--wire ndjson|binary` from argv, else `ALERTOPS_SOAK_WIRE`, else
/// the NDJSON default.
fn wire_format() -> WireFormat {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--wire" {
            let value = argv.next().expect("--wire takes a value");
            return value.parse().expect("--wire is ndjson|binary");
        }
    }
    std::env::var("ALERTOPS_SOAK_WIRE").map_or_else(
        |_| WireFormat::default(),
        |v| v.parse().expect("ALERTOPS_SOAK_WIRE is ndjson|binary"),
    )
}

fn main() {
    let full = std::env::var("ALERTOPS_SOAK_FULL").is_ok_and(|v| v == "1");
    let mut config = if full {
        SoakConfig::full(HARNESS_SEED)
    } else {
        SoakConfig::smoke(HARNESS_SEED)
    };
    config.wire = wire_format();
    header(&format!(
        "soak: {} over TCP ({} wire) into a live {}-shard ingestd",
        config.scenario.name,
        config.wire.label(),
        config.shards
    ));

    let report = run_soak(&config).expect("soak completes");

    compare(
        "sustained rate (alerts/hour equivalent)",
        ">= 1M/h",
        &format!(
            "{:.2}M/h ({:.0}/s over {} alerts, {} wire)",
            report.alerts_per_hour_equiv / 1e6,
            report.alerts_per_sec,
            report.alerts_sent,
            report.wire
        ),
    );
    compare(
        "window close latency (p50/p99/p999)",
        "-",
        &format!(
            "{}µs / {}µs / {}µs over {} windows",
            report.close_p50_micros,
            report.close_p99_micros,
            report.close_p999_micros,
            report.windows
        ),
    );
    compare(
        "peak RSS vs ceiling",
        &format!("<= {}MiB", report.rss_ceiling_bytes / (1024 * 1024)),
        &format!("{}MiB", report.peak_rss_bytes / (1024 * 1024)),
    );
    compare(
        "conservation + oracle identity",
        "hold",
        &format!(
            "conserved={} identical={} (prefix {} windows at {:?} shards), dropped={}",
            report.conservation_ok,
            report.outputs_identical,
            report.oracle_prefix_windows,
            report.oracle_shard_counts,
            report.dropped
        ),
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_soak.json", format!("{json}\n")).expect("write BENCH_soak.json");
    println!("\nwrote BENCH_soak.json");

    report
        .check_gates(config.min_alerts_per_hour)
        .expect("soak gates hold");
}
