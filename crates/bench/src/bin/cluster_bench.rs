//! Regenerates `BENCH_cluster.json`: end-to-end throughput of the
//! `alertops-cluster` topology at 1, 2, and 4 nodes over the same
//! simulated trace (range routing, per-node write-ahead journaling,
//! per-node daemon pipelines, cross-node monoid merge, one fsync per
//! node per window boundary), plus the latency distribution of live
//! range handoffs performed mid-stream.
//!
//! Before timing, the node counts are proven equivalent: every window
//! of the 2- and 4-node runs must match the 1-node run on the
//! partition-exact fields — the throughput table only compares runs
//! with identical output.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use alertops_bench::{header, HARNESS_SEED};
use alertops_cluster::{AlertCluster, ClusterConfig, GovernorFactory, WalFormat};
use alertops_core::{
    AlertGovernor, GovernanceSnapshot, GovernorConfig, StreamingConfig, StreamingGovernor,
};
use alertops_ingestd::IngestdConfig;
use alertops_model::{Alert, AlertStrategy};
use alertops_sim::scenarios;

const WINDOW_LEN: usize = 256;
const SHARDS_PER_NODE: usize = 2;
const HANDOFFS: usize = 8;

#[derive(Serialize)]
struct NodeRow {
    nodes: usize,
    alerts_per_sec: f64,
    micros_per_window: f64,
    outputs_identical: bool,
}

#[derive(Serialize)]
struct WalFormatRow {
    wal_format: &'static str,
    alerts_per_sec: f64,
    micros_per_window: f64,
    outputs_identical: bool,
}

#[derive(Serialize)]
struct HandoffStats {
    handoffs: usize,
    moved_alerts: u64,
    min_micros: u64,
    mean_micros: f64,
    max_micros: u64,
}

#[derive(Serialize)]
struct Summary {
    seed: u64,
    alerts: usize,
    windows: usize,
    window_len: usize,
    shards_per_node: usize,
    results: Vec<NodeRow>,
    /// 1-node journaling tax by WAL segment format: the binary (v2)
    /// codec against the pre-v2 JSON framing over the same stream.
    wal_formats: Vec<WalFormatRow>,
    handoff: HandoffStats,
}

fn factory() -> GovernorFactory {
    Arc::new(|catalog: &[AlertStrategy]| {
        StreamingGovernor::new(
            AlertGovernor::new(catalog.to_vec(), GovernorConfig::default()),
            StreamingConfig::default(),
        )
    })
}

fn wal_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "alertops-cluster-bench-{tag}-{}",
        std::process::id()
    ))
}

fn spawn(
    nodes: usize,
    tag: &str,
    catalog: &[AlertStrategy],
    wal_format: WalFormat,
) -> (AlertCluster, PathBuf) {
    let root = wal_root(tag);
    let _ = std::fs::remove_dir_all(&root);
    let config = ClusterConfig {
        nodes,
        node: IngestdConfig {
            shards: SHARDS_PER_NODE,
            queue_capacity: 8192,
            ..IngestdConfig::default()
        },
        wal_root: root.clone(),
        wal_format,
    };
    let cluster = AlertCluster::spawn(config, catalog.to_vec(), factory()).expect("cluster spawns");
    (cluster, root)
}

/// The fields node count is exact for (triage correlates within a
/// shard; nothing in this run degrades, but strip both for symmetry
/// with the test suite's comparisons).
fn comparable(snapshot: &GovernanceSnapshot) -> String {
    let stripped = GovernanceSnapshot {
        triage: Vec::new(),
        degraded: Vec::new(),
        ..snapshot.clone()
    };
    serde_json::to_string(&stripped).expect("snapshot serializes")
}

fn run(
    nodes: usize,
    tag: &str,
    catalog: &[AlertStrategy],
    windows: &[Vec<Alert>],
    wal_format: WalFormat,
) -> Vec<String> {
    let (mut cluster, root) = spawn(nodes, tag, catalog, wal_format);
    let mut outputs = Vec::with_capacity(windows.len());
    for window in windows {
        for alert in window {
            cluster.route(alert.clone()).expect("route succeeds");
        }
        outputs.push(comparable(&cluster.close_window().expect("window closes")));
    }
    assert!(cluster.counters().is_conserved());
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    outputs
}

/// Times one full 1-node run (route → journal → close every window)
/// and returns the throughput row for `wal_format`.
fn time_wal_format(
    catalog: &[AlertStrategy],
    windows: &[Vec<Alert>],
    alerts: usize,
    baseline: &[String],
    wal_format: WalFormat,
) -> WalFormatRow {
    let tag = format!("wal-{}", wal_format.label());
    let outputs_identical = run(1, &tag, catalog, windows, wal_format) == baseline;
    assert!(
        outputs_identical,
        "{} WAL output diverged from the baseline",
        wal_format.label()
    );
    let (mut cluster, root) = spawn(1, &format!("{tag}-time"), catalog, wal_format);
    let start = Instant::now();
    for window in windows {
        for alert in window {
            cluster.route(alert.clone()).expect("route succeeds");
        }
        std::hint::black_box(cluster.close_window().expect("window closes"));
    }
    let elapsed = start.elapsed();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    WalFormatRow {
        wal_format: wal_format.label(),
        alerts_per_sec: alerts as f64 / elapsed.as_secs_f64(),
        micros_per_window: elapsed.as_micros() as f64 / windows.len() as f64,
        outputs_identical,
    }
}

fn main() {
    header("cluster: route → journal → merge → publish at 1/2/4 nodes");
    let out = scenarios::mini_study(HARNESS_SEED).run();
    let catalog = out.catalog.strategies().to_vec();
    let mut trace = out.alerts;
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let windows: Vec<Vec<Alert>> = trace.chunks(WINDOW_LEN).map(<[Alert]>::to_vec).collect();

    // Differential first: identical output across node counts, or no
    // benchmark.
    let baseline = run(1, "oracle-1", &catalog, &windows, WalFormat::default());
    let mut results = Vec::new();
    for nodes in [1usize, 2, 4] {
        let outputs_identical = run(
            nodes,
            &format!("check-{nodes}"),
            &catalog,
            &windows,
            WalFormat::default(),
        ) == baseline;
        assert!(
            outputs_identical,
            "{nodes}-node output diverged from the 1-node baseline"
        );

        let (mut cluster, root) = spawn(
            nodes,
            &format!("time-{nodes}"),
            &catalog,
            WalFormat::default(),
        );
        let start = Instant::now();
        for window in &windows {
            for alert in window {
                cluster.route(alert.clone()).expect("route succeeds");
            }
            std::hint::black_box(cluster.close_window().expect("window closes"));
        }
        let elapsed = start.elapsed();
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&root);

        let row = NodeRow {
            nodes,
            alerts_per_sec: trace.len() as f64 / elapsed.as_secs_f64(),
            micros_per_window: elapsed.as_micros() as f64 / windows.len() as f64,
            outputs_identical,
        };
        println!(
            "  {} node(s): {:>9.0} alerts/s, {:>7.0}µs per window",
            row.nodes, row.alerts_per_sec, row.micros_per_window
        );
        results.push(row);
    }

    // Journaling tax by WAL format: the same 1-node run with binary
    // (default) and JSON segments.
    let mut wal_formats = Vec::new();
    for wal_format in [WalFormat::V2Binary, WalFormat::V1Json] {
        let row = time_wal_format(&catalog, &windows, trace.len(), &baseline, wal_format);
        println!(
            "  1 node, {:>9} WAL: {:>9.0} alerts/s, {:>7.0}µs per window",
            row.wal_format, row.alerts_per_sec, row.micros_per_window
        );
        wal_formats.push(row);
    }

    // Live handoff latency: a 4-node cluster mid-stream, repeatedly
    // moving the lowest strategy range to the next node — each handoff
    // seals both ends, ships the range's history as one binary frame,
    // and respawns.
    let (mut cluster, root) = spawn(4, "handoff", &catalog, WalFormat::default());
    let mut reports = Vec::with_capacity(HANDOFFS);
    for (index, window) in windows.iter().enumerate() {
        for alert in window {
            cluster.route(alert.clone()).expect("route succeeds");
        }
        cluster.close_window().expect("window closes");
        if index >= windows.len().saturating_sub(HANDOFFS) {
            let (range, from) = cluster.range_map().spans()[0];
            let to = (from + 1) % 4;
            reports.push(cluster.handoff(range, to).expect("handoff completes"));
        }
    }
    assert!(cluster.counters().is_conserved());
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    let micros: Vec<u64> = reports.iter().map(|r| r.micros).collect();
    let handoff = HandoffStats {
        handoffs: reports.len(),
        moved_alerts: reports.iter().map(|r| r.moved_alerts).sum(),
        min_micros: micros.iter().copied().min().unwrap_or(0),
        mean_micros: micros.iter().sum::<u64>() as f64 / micros.len().max(1) as f64,
        max_micros: micros.iter().copied().max().unwrap_or(0),
    };
    println!(
        "  handoff latency over {} live handoffs ({} alerts moved): min {}µs  mean {:.0}µs  max {}µs",
        handoff.handoffs,
        handoff.moved_alerts,
        handoff.min_micros,
        handoff.mean_micros,
        handoff.max_micros
    );

    let summary = Summary {
        seed: HARNESS_SEED,
        alerts: trace.len(),
        windows: windows.len(),
        window_len: WINDOW_LEN,
        shards_per_node: SHARDS_PER_NODE,
        results,
        wal_formats,
        handoff,
    };
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write("BENCH_cluster.json", format!("{json}\n")).expect("write BENCH_cluster.json");
    println!("\nwrote BENCH_cluster.json");
}
