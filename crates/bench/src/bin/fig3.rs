//! Fig. 3 — repeating alerts in an alert storm.
//!
//! The paper's representative storm: 07:00–11:59, 2751 alerts from 200
//! effective strategies, with the WARNING-level "haproxy process number
//! warning" taking ≈30% of each hour's alerts. The harness runs the
//! `storm_fig3` scenario, detects the storm (>100/region/hour, merged),
//! and prints the per-hour stacked counts for the top-2 strategies vs
//! "Others" — the exact series of the figure.
//!
//! Run with: `cargo run --release -p alertops-bench --bin fig3`

use std::collections::HashMap;

use alertops_bench::{compare, header, pct, HARNESS_SEED};
use alertops_detect::storm::detect_storms;
use alertops_detect::{DetectionInput, Detector, RepeatingDetector, StormConfig};
use alertops_model::StrategyId;
use alertops_sim::scenarios;

fn main() {
    let out = scenarios::storm_fig3(HARNESS_SEED).run();

    header("Fig. 3: repeating alerts in an alert storm");
    let storms = detect_storms(&out.alerts, &StormConfig::default());
    println!("detected {} storm(s):", storms.len());
    for s in &storms {
        println!(
            "  {} in {}: {} alerts over {} hour(s), peak {}/hour",
            s.window,
            s.region,
            s.total_alerts,
            s.duration_hours(),
            s.peak_hourly
        );
    }
    let storm = storms
        .iter()
        .max_by_key(|s| s.total_alerts)
        .expect("scenario produces a storm");

    // Storm-window alerts (all regions — the paper counts the storm's
    // full window).
    let storm_alerts: Vec<&alertops_model::Alert> = out
        .alerts
        .iter()
        .filter(|a| storm.hours.contains(&a.hour_bucket()))
        .collect();

    // Per-strategy totals to find the top-2.
    let mut per_strategy: HashMap<StrategyId, usize> = HashMap::new();
    for a in &storm_alerts {
        *per_strategy.entry(a.strategy()).or_insert(0) += 1;
    }
    let mut ranked: Vec<(StrategyId, usize)> = per_strategy.iter().map(|(&s, &c)| (s, c)).collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let top2: Vec<StrategyId> = ranked.iter().take(2).map(|&(s, _)| s).collect();
    let name = |id: StrategyId| {
        out.catalog
            .strategy(id)
            .map_or_else(|| id.to_string(), |s| s.title_template().to_owned())
    };

    println!("\nper-hour stacked counts (the figure's series):");
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>8}",
        "hour", "top-1", "top-2", "Others", "total"
    );
    for &hour in &storm.hours {
        let hour_alerts: Vec<_> = storm_alerts
            .iter()
            .filter(|a| a.hour_bucket() == hour)
            .collect();
        let count_of = |id: StrategyId| hour_alerts.iter().filter(|a| a.strategy() == id).count();
        let t1 = count_of(top2[0]);
        let t2 = top2.get(1).map_or(0, |&id| count_of(id));
        println!(
            "{:<8} {:>10} {:>10} {:>8} {:>8}",
            format!("{:02}:00", hour % 24),
            t1,
            t2,
            hour_alerts.len() - t1 - t2,
            hour_alerts.len()
        );
    }

    header("shape checks");
    compare(
        "storm total alerts",
        "2751 (07:00–11:59)",
        &storm.total_alerts.to_string(),
    );
    let effective_strategies = per_strategy.len();
    compare(
        "effective strategies in storm",
        "200",
        &effective_strategies.to_string(),
    );
    let top1_share = ranked[0].1 as f64 / storm_alerts.len() as f64;
    compare(
        "dominant strategy share",
        "≈30% each hour (haproxy, WARNING)",
        &format!("{} ({})", pct(top1_share), name(top2[0])),
    );
    let top1_severity = out
        .catalog
        .strategy(top2[0])
        .map(|s| s.severity().to_string())
        .unwrap_or_default();
    compare(
        "dominant strategy severity",
        "WARNING (lowest)",
        &top1_severity,
    );

    // The A5 detector must flag the dominant strategy.
    let input = DetectionInput::new(out.catalog.strategies()).with_alerts(&out.alerts);
    let findings = RepeatingDetector::default().detect(&input);
    let flagged = findings.iter().any(|f| f.strategy == top2[0]);
    compare(
        "A5 flags the dominant repeater",
        "repeating alerts anti-pattern",
        if flagged { "flagged" } else { "NOT FLAGGED" },
    );
    assert!(flagged, "dominant repeater not flagged by A5");
}
