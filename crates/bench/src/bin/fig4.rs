//! Fig. 4 — answers to Q1 "Overall Helpfulness" regarding OCEs' working
//! experience: all OCEs with more than three years of experience rate
//! SOPs as of limited help (they are 71.4% of all "Limited" answers).
//!
//! Run with: `cargo run -p alertops-bench --bin fig4`

use alertops_bench::{compare, header, pct};
use alertops_survey::{fig4, render_bar, Helpfulness, SurveyDataset};

fn main() {
    let survey = SurveyDataset::paper();
    header("Fig. 4: Q1 'Overall Helpfulness' by working experience");
    let rows = fig4(&survey);
    for row in &rows {
        println!("{}", render_bar(row, 30));
    }

    header("shape checks");
    let seniors = &rows[0]; // ">3 years"
    let senior_limited = seniors
        .segments
        .iter()
        .find(|(l, _)| l == "Limited")
        .map_or(0, |&(_, c)| c);
    compare(
        "all >3yr OCEs say Limited",
        "10 of 10",
        &format!("{senior_limited} of {}", seniors.total()),
    );
    let limited_total: usize = rows
        .iter()
        .flat_map(|r| &r.segments)
        .filter(|(l, _)| l == "Limited")
        .map(|&(_, c)| c)
        .sum();
    compare(
        "seniors' share of Limited answers",
        "71.4%",
        &pct(senior_limited as f64 / limited_total as f64),
    );
    let helpful_total: usize = rows
        .iter()
        .flat_map(|r| &r.segments)
        .filter(|(l, _)| l == "Helpful")
        .map(|&(_, c)| c)
        .sum();
    compare(
        "Q1 helpful / limited totals",
        "4 / 14",
        &format!("{helpful_total} / {limited_total}"),
    );
    assert_eq!(senior_limited, 10);
    assert_eq!(limited_total, 14);
    let _ = Helpfulness::ALL; // keep the survey vocabulary in scope
}
