//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. A4 thresholds (intermittent-interruption, oscillation);
//! 2. the storm threshold (100/region/hour) and hour merging;
//! 3. the R2 aggregation window;
//! 4. adaptive vs non-adaptive online LDA for emerging detection;
//! 5. the QoA evidence-confidence floor (`QoaScorer::min_evidence`).
//!
//! Run with: `cargo run --release -p alertops-bench --bin ablations`

use alertops_bench::{header, pct, HARNESS_SEED};
use alertops_detect::storm::detect_storms;
use alertops_detect::{
    evaluate_sets, DetectionInput, Detector, StormConfig, TransientTogglingDetector,
};
use alertops_model::{Alert, SimDuration, StrategyId};
use alertops_qoa::QoaScorer;
use alertops_react::{aggregate, AggregationConfig, EmergingAlertDetector, EmergingConfig};
use alertops_sim::scenarios;
use std::collections::{BTreeSet, HashMap};

fn main() {
    let out = scenarios::mini_study(HARNESS_SEED).run();
    let truth: BTreeSet<StrategyId> = out
        .catalog
        .strategies()
        .iter()
        .map(alertops_model::AlertStrategy::id)
        .filter(|&id| out.catalog.profile(id).oversensitive)
        .collect();

    header("ablation 1: A4 intermittent-interruption threshold");
    println!(
        "  {:<12} {:>8} {:>8} {:>8} {:>8}",
        "threshold", "flagged", "prec", "recall", "f1"
    );
    for mins in [1, 2, 5, 10, 30] {
        let detector = TransientTogglingDetector {
            intermittent_threshold: SimDuration::from_mins(mins),
            ..TransientTogglingDetector::default()
        };
        let input = DetectionInput::new(out.catalog.strategies()).with_alerts(&out.alerts);
        let flagged: BTreeSet<StrategyId> = detector
            .detect(&input)
            .into_iter()
            .map(|f| f.strategy)
            .collect();
        let score = evaluate_sets(&flagged, &truth);
        println!(
            "  {:<12} {:>8} {:>8.2} {:>8.2} {:>8.2}",
            format!("{mins} min"),
            flagged.len(),
            score.precision,
            score.recall,
            score.f1
        );
    }
    println!("  → the paper-style 5 min threshold sits at the f1 plateau.");

    header("ablation 2: storm threshold (alerts/region/hour)");
    println!(
        "  {:<12} {:>8} {:>14} {:>12}",
        "threshold", "storms", "storm hours", "max len"
    );
    for threshold in [25, 50, 100, 200, 400] {
        let storms = detect_storms(
            &out.alerts,
            &StormConfig {
                hourly_threshold: threshold,
            },
        );
        let hours: usize = storms.iter().map(|s| s.duration_hours()).sum();
        let max_len = storms.iter().map(|s| s.duration_hours()).max().unwrap_or(0);
        println!(
            "  {:<12} {:>8} {:>14} {:>12}",
            threshold,
            storms.len(),
            hours,
            max_len
        );
    }
    println!("  → below ~50 the detector drowns in background; 100 isolates the injected storms.");

    header("ablation 3: R2 aggregation window");
    println!("  {:<12} {:>10} {:>12}", "window", "groups", "reduction");
    for mins in [5, 15, 30, 60, 180] {
        let groups = aggregate(
            &out.alerts,
            &AggregationConfig {
                window: SimDuration::from_mins(mins),
                ..AggregationConfig::default()
            },
        );
        println!(
            "  {:<12} {:>10} {:>12}",
            format!("{mins} min"),
            groups.len(),
            pct(alertops_react::reduction_ratio(
                out.alerts.len(),
                groups.len()
            ))
        );
    }
    println!("  → reduction saturates near the default 30 min; beyond that groups span unrelated episodes.");

    header("ablation 4: adaptive vs non-adaptive online LDA (R4)");
    let day1: Vec<_> = out
        .alerts
        .iter()
        .filter(|a| a.raised_at().as_secs() < 86_400)
        .cloned()
        .collect();
    println!(
        "  {:<24} {:>16} {:>16}",
        "variant", "emerging topics", "emerging alerts"
    );
    for (label, adaptation) in [("adaptive (AOLDA)", 0.5), ("non-adaptive", 0.0)] {
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            num_topics: 5,
            passes_per_window: 8,
            adaptation_weight: adaptation,
            ..EmergingConfig::default()
        });
        let reports = detector.run(&day1);
        let topics: usize = reports.iter().map(|r| r.emerging_topics).sum();
        let alerts: usize = reports.iter().map(|r| r.emerging_alerts.len()).sum();
        println!("  {label:<24} {topics:>16} {alerts:>16}");
    }
    println!(
        "  → without adaptation, topics re-randomize every window and routine themes\n\
        are re-flagged as new; the adaptive prior keeps stable themes anchored."
    );

    header("ablation 5: QoA evidence-confidence floor (min_evidence)");
    // How enriched with injected offenders is the worst-60 QoA shortlist
    // as the behavioural-evidence floor varies? min_evidence = 1 trusts a
    // single alert's evidence outright; higher floors blend low-volume
    // strategies toward neutral.
    let mut by_strategy: HashMap<StrategyId, Vec<&Alert>> = HashMap::new();
    for alert in &out.alerts {
        by_strategy.entry(alert.strategy()).or_default().push(alert);
    }
    println!(
        "  {:<14} {:>22} {:>12}",
        "min_evidence", "offenders in worst-60", "enrichment"
    );
    let base_rate = out
        .catalog
        .strategies()
        .iter()
        .filter(|s| out.catalog.profile(s.id()).any())
        .count() as f64
        / out.catalog.strategies().len() as f64;
    for min_evidence in [1usize, 5, 10, 20] {
        let scorer = QoaScorer::new().with_min_evidence(min_evidence);
        let mut reports: Vec<(StrategyId, f64)> = out
            .catalog
            .strategies()
            .iter()
            .map(|strategy| {
                let alerts = by_strategy
                    .get(&strategy.id())
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                let r = scorer.score(
                    strategy,
                    out.catalog.sop(strategy.id()),
                    alerts,
                    &out.incidents,
                );
                (strategy.id(), r.scores.overall())
            })
            .collect();
        reports.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let offenders = reports
            .iter()
            .take(60)
            .filter(|(id, _)| out.catalog.profile(*id).any())
            .count();
        println!(
            "  {:<14} {:>19}/60 {:>11.1}x",
            min_evidence,
            offenders,
            (offenders as f64 / 60.0) / base_rate
        );
    }
    println!(
        "  → trusting single-alert evidence floods the shortlist with quiet clean\n\
        strategies; the floor of 10 maximizes offender concentration."
    );
}
