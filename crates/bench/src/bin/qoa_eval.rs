//! §IV — automatic QoA evaluation, made measurable: can a model trained
//! on (noisy) OCE labels learn indicativeness / precision / handleability
//! well enough to shortlist anti-pattern strategies automatically?
//!
//! Sweeps labelling noise 0–30% and ablates the feature set (text-only
//! vs full behavioural features), reporting held-out AUC per criterion.
//!
//! Run with: `cargo run --release -p alertops-bench --bin qoa_eval`

use std::collections::HashMap;

use alertops_bench::{header, HARNESS_SEED};
use alertops_model::{Alert, StrategyId};
use alertops_qoa::{auc, flip_labels, Criterion, LogisticRegression, QoaModel, TrainConfig};
use alertops_sim::scenarios;

struct Dataset {
    features: Vec<Vec<f64>>,
    labels: HashMap<Criterion, Vec<bool>>,
}

fn build(out: &alertops_sim::SimOutput) -> Dataset {
    let mut by_strategy: HashMap<StrategyId, Vec<&Alert>> = HashMap::new();
    for alert in &out.alerts {
        by_strategy.entry(alert.strategy()).or_default().push(alert);
    }
    let model = QoaModel::new();
    let mut features = Vec::new();
    let mut handleable = Vec::new();
    let mut indicative = Vec::new();
    let mut precise = Vec::new();
    for strategy in out.catalog.strategies() {
        let alerts = by_strategy
            .get(&strategy.id())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        features.push(model.features(
            strategy,
            out.catalog.sop(strategy.id()),
            alerts,
            &out.incidents,
        ));
        let p = out.catalog.profile(strategy.id());
        let sop_ok = out
            .catalog
            .sop(strategy.id())
            .is_some_and(|s| s.completeness() > 0.8);
        handleable.push(!p.vague_title && sop_ok);
        indicative.push(!p.improper_rule && !p.oversensitive && !p.chatty);
        precise.push(!p.misleading_severity);
    }
    let mut labels = HashMap::new();
    labels.insert(Criterion::Handleability, handleable);
    labels.insert(Criterion::Indicativeness, indicative);
    labels.insert(Criterion::Precision, precise);
    Dataset { features, labels }
}

fn holdout_auc(
    features: &[Vec<f64>],
    labels: &[bool],
    noise: f64,
    feature_mask: Option<&[usize]>,
) -> Option<f64> {
    let masked: Vec<Vec<f64>> = match feature_mask {
        None => features.to_vec(),
        Some(keep) => features
            .iter()
            .map(|row| keep.iter().map(|&i| row[i]).collect())
            .collect(),
    };
    // Even/odd interleave: strategy ids correlate with rule kind (the
    // catalog deals slots round-robin), so a contiguous split would put
    // different kinds in train and test.
    let train_ix: Vec<usize> = (0..masked.len()).filter(|i| i % 2 == 0).collect();
    let test_ix: Vec<usize> = (0..masked.len()).filter(|i| i % 2 == 1).collect();
    let train_x: Vec<Vec<f64>> = train_ix.iter().map(|&i| masked[i].clone()).collect();
    let train_y: Vec<bool> = train_ix.iter().map(|&i| labels[i]).collect();
    let noisy = flip_labels(&train_y, noise, 77);
    let mut model = LogisticRegression::new(masked[0].len());
    model.fit(&train_x, &noisy, &TrainConfig::default());
    let scores: Vec<f64> = test_ix
        .iter()
        .map(|&i| model.predict_proba(&masked[i]))
        .collect();
    let test_y: Vec<bool> = test_ix.iter().map(|&i| labels[i]).collect();
    auc(&scores, &test_y)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let out = if full {
        scenarios::study(HARNESS_SEED).run()
    } else {
        scenarios::mini_study(HARNESS_SEED).run()
    };
    let data = build(&out);
    println!(
        "{} strategies, {} features, labels from injected ground truth",
        data.features.len(),
        data.features[0].len()
    );

    header("held-out AUC vs OCE labelling noise");
    println!(
        "  {:<18} {:>8} {:>8} {:>8} {:>8}",
        "criterion", "0%", "10%", "20%", "30%"
    );
    for criterion in Criterion::ALL {
        let labels = &data.labels[&criterion];
        let mut row = format!("  {:<18}", format!("{criterion:?}"));
        for noise in [0.0, 0.1, 0.2, 0.3] {
            let a = holdout_auc(&data.features, labels, noise, None)
                .map_or_else(|| "  n/a".to_owned(), |a| format!("{a:>8.3}"));
            row.push_str(&a);
        }
        println!("{row}");
    }

    header("feature ablation (10% noise): text-only vs full features");
    // Text/static features: title informativeness, SOP completeness,
    // severity rank, kind flags (indices 0..5); behavioural: 5..11.
    let text_only: Vec<usize> = (0..5).collect();
    let behaviour_only: Vec<usize> = (5..11).collect();
    println!(
        "  {:<18} {:>10} {:>12} {:>8}",
        "criterion", "text-only", "behavioural", "full"
    );
    for criterion in Criterion::ALL {
        let labels = &data.labels[&criterion];
        let fmt = |mask: Option<&[usize]>| {
            holdout_auc(&data.features, labels, 0.1, mask)
                .map_or_else(|| "n/a".to_owned(), |a| format!("{a:.3}"))
        };
        println!(
            "  {:<18} {:>10} {:>12} {:>8}",
            format!("{criterion:?}"),
            fmt(Some(&text_only)),
            fmt(Some(&behaviour_only)),
            fmt(None),
        );
    }
    println!(
        "\nreading: handleability is mostly textual (title/SOP) and\n\
         indicativeness needs the behavioural evidence — matching the\n\
         paper's split between presentation and impact criteria.\n\
         Precision is the hardest criterion: with little alert history\n\
         the evidence cannot separate a mis-set severity from a quiet\n\
         rule (AUC ≈ 0.5 on 4 days, ≈ 0.67 with --full 60 days) —\n\
         consistent with the paper's note that severity settings\n\
         'heavily depend on domain knowledge'."
    );
}
