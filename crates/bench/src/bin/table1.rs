//! Table I — the terminology adopted in the paper, mapped to the types
//! of this reproduction.
//!
//! Run with: `cargo run -p alertops-bench --bin table1`

fn main() {
    alertops_bench::header("Table I: terminology → alertops types");
    let rows = [
        (
            "Anomaly",
            "A deviation from the normal state of the cloud system, which will possibly trigger an alert.",
            "alertops_sim::FaultEvent",
        ),
        (
            "Alert",
            "A notification sent to On-Call Engineers (OCEs), of the form defined by the alert strategy, of a specific anomaly of the cloud system.",
            "alertops_model::Alert",
        ),
        (
            "Incident",
            "Any unplanned interruption or performance degradation of a service or product, which can lead to service shortages at all service levels.",
            "alertops_model::Incident",
        ),
        (
            "Alert Strategy",
            "The policy of alert generation, including when to generate an alert, what attributes and descriptions an alert should have, and to whom the alert should be sent.",
            "alertops_model::AlertStrategy",
        ),
        (
            "SOP",
            "A predefined Standard Operating Procedure to inspect the state of the cloud system and mitigate the system abnormality upon receiving an alert.",
            "alertops_model::Sop",
        ),
        (
            "Alert Governance",
            "The unified management of alert strategies and SOPs.",
            "alertops_core::AlertGovernor",
        ),
    ];
    for (term, definition, ty) in rows {
        println!("\n{term}  →  {ty}");
        println!("  {definition}");
    }
}
