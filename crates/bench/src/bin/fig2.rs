//! Fig. 2 — the survey about the current practice of mitigating alert
//! anti-patterns: (a) impact of each anti-pattern, (b) SOP helpfulness,
//! (c) effectiveness of the four reactions. Panel (c) is additionally
//! cross-checked against *measured* effectiveness on the simulator.
//!
//! Run with: `cargo run --release -p alertops-bench --bin fig2`

use alertops_bench::{compare, header, pct, HARNESS_SEED};
use alertops_react::blocking::{AlertBlocker, BlockRule};
use alertops_react::correlation::AlertCorrelator;
use alertops_react::{aggregate, AggregationConfig, EmergingAlertDetector, EmergingConfig};
use alertops_sim::scenarios;
use alertops_survey::{
    fig2a, fig2b, fig2c, render_bar, Helpfulness, Impact, Question, SurveyDataset,
};

fn main() {
    let survey = SurveyDataset::paper();

    header("Fig. 2(a): impact of anti-patterns on alert diagnosis (18 OCEs)");
    for row in fig2a(&survey) {
        println!("{}", render_bar(&row, 36));
    }
    let answers =
        |item| alertops_survey::Distribution::from_answers(survey.impact_answers(item).into_iter());
    compare(
        "A1 agreement / high-impact share",
        "100% agree, 61.1% high",
        &format!(
            "{} agree, {} high",
            pct(answers(alertops_survey::AntiPatternQ::A1UnclearTitle).share_where(Impact::agrees)),
            pct(answers(alertops_survey::AntiPatternQ::A1UnclearTitle).share(Impact::High)),
        ),
    );
    compare(
        "A2 agreement",
        "88.9%",
        &pct(answers(alertops_survey::AntiPatternQ::A2MisleadingSeverity)
            .share_where(Impact::agrees)),
    );
    compare(
        "A3 high-impact share",
        "72.2%",
        &pct(answers(alertops_survey::AntiPatternQ::A3ImproperRule).share(Impact::High)),
    );
    compare(
        "A4 agreement",
        "94.4%",
        &pct(
            answers(alertops_survey::AntiPatternQ::A4TransientToggling).share_where(Impact::agrees)
        ),
    );
    compare(
        "A5 agreement",
        "94.4%",
        &pct(answers(alertops_survey::AntiPatternQ::A5Repeating).share_where(Impact::agrees)),
    );
    compare(
        "A6 agreement",
        "100%",
        &pct(answers(alertops_survey::AntiPatternQ::A6Cascading).share_where(Impact::agrees)),
    );

    header("Fig. 2(b): how helpful are the predefined SOPs?");
    for row in fig2b(&survey) {
        println!("{}", render_bar(&row, 36));
    }
    let q1 = survey.helpfulness_distribution(Question::SopOverall);
    compare(
        "Q1 helpful / limited",
        "22.2% / 77.8%",
        &format!(
            "{} / {}",
            pct(q1.share(Helpfulness::Helpful)),
            pct(q1.share(Helpfulness::Limited))
        ),
    );
    let q2 = survey.helpfulness_distribution(Question::SopIndividual);
    let q3 = survey.helpfulness_distribution(Question::SopCollective);
    compare(
        "SOPs less helpful for collective (Q3 < Q2)",
        "much less helpful",
        &format!(
            "helpful {} vs {}",
            pct(q3.share(Helpfulness::Helpful)),
            pct(q2.share(Helpfulness::Helpful))
        ),
    );

    header("Fig. 2(c): effectiveness of current reactions");
    for row in fig2c(&survey) {
        println!("{}", render_bar(&row, 36));
    }

    // Cross-check: measured effectiveness of each reaction on the
    // simulated study (volume reduction / early-warning yield).
    header("Fig. 2(c) cross-check: measured reaction effectiveness");
    let out = scenarios::mini_study(HARNESS_SEED).run();
    let noisy: Vec<BlockRule> = out
        .catalog
        .strategies()
        .iter()
        .filter(|s| {
            let p = out.catalog.profile(s.id());
            p.chatty || p.oversensitive
        })
        .map(|s| BlockRule::for_strategy("mute", s.id()))
        .collect();
    let blocker: AlertBlocker = noisy.into_iter().collect();
    let blocked = blocker.apply(&out.alerts);
    compare(
        "R1 alert blocking (volume removed)",
        "relatively high",
        &pct(blocked.reduction()),
    );
    let groups = aggregate(&out.alerts, &AggregationConfig::default());
    compare(
        "R2 alert aggregation (dedup reduction)",
        "relatively high",
        &pct(alertops_react::reduction_ratio(
            out.alerts.len(),
            groups.len(),
        )),
    );
    let correlator = AlertCorrelator::new().with_topology(out.topology.dependency_graph());
    let clusters = correlator.correlate(&out.alerts);
    compare(
        "R3 correlation (alerts per diagnosed source)",
        "relatively high",
        &format!(
            "{:.2} alerts/cluster",
            out.alerts.len() as f64 / clusters.len().max(1) as f64
        ),
    );
    let day1: Vec<_> = out
        .alerts
        .iter()
        .filter(|a| a.raised_at().as_secs() < 86_400)
        .cloned()
        .collect();
    let mut emerging = EmergingAlertDetector::new(EmergingConfig {
        num_topics: 5,
        passes_per_window: 8,
        ..EmergingConfig::default()
    });
    let reports = emerging.run(&day1);
    let flagged: usize = reports.iter().map(|r| r.emerging_alerts.len()).sum();
    compare(
        "R4 emerging detection (early flags, day 1)",
        "relatively high",
        &format!("{flagged} alerts flagged across {} windows", reports.len()),
    );
}
