//! Table II — sample reliability alerts: a Block Storage "disk full"
//! failure at 06:36 cascading into Database "failed to commit changes"
//! alerts two minutes later, in Region X / DC 1.
//!
//! The harness runs the `cascade_table2` scenario (a 06:36 cascade from
//! the widest-blast-radius foundation microservice at full paper scale),
//! prints the cascade's alerts in the paper's table format, and verifies
//! the A6 detector recovers the group with the storage alert as root.
//!
//! Run with: `cargo run --release -p alertops-bench --bin table2`

use alertops_bench::{compare, header, HARNESS_SEED};
use alertops_detect::{CascadingDetector, DetectionInput};
use alertops_model::SimDuration;
use alertops_sim::scenarios;

fn main() {
    let out = scenarios::cascade_table2(HARNESS_SEED).run();
    header("Table II: sample cascading reliability alerts");

    // The cascade fires at 06:36; run A6 detection over the surrounding
    // half hour and render the detected group as the paper's table.
    let window = alertops_model::TimeRange::new(
        alertops_model::SimTime::from_secs(6 * 3600 + 30 * 60),
        alertops_model::SimTime::from_secs(7 * 3600),
    );
    let windowed: Vec<alertops_model::Alert> = out
        .alerts
        .iter()
        .filter(|a| window.contains(a.raised_at()))
        .cloned()
        .collect();
    let graph = out.topology.dependency_graph();
    let input = DetectionInput::new(out.catalog.strategies())
        .with_alerts(&windowed)
        .with_graph(&graph);
    let detector = CascadingDetector {
        window: SimDuration::from_mins(5),
        ..CascadingDetector::default()
    };
    let groups = detector.detect_groups(&input);
    let containing = groups
        .iter()
        .max_by_key(|g| g.len())
        .expect("the injected cascade is detected");
    let cascade_alerts: Vec<&alertops_model::Alert> = containing
        .members
        .iter()
        .filter_map(|id| windowed.iter().find(|a| a.id() == *id))
        .collect();

    println!(
        "\n{:<4} {:<9} {:<12} {:<18} {:<58} {:<9} Location",
        "No.", "Severity", "Time", "Service", "Alert Title", "Duration"
    );
    for (i, alert) in cascade_alerts.iter().take(12).enumerate() {
        let duration = alert
            .duration()
            .map_or_else(|| "active".to_owned(), |d| d.to_string());
        println!(
            "{:<4} {:<9} {:<12} {:<18} {:<58} {:<9} {}",
            i + 1,
            alert.severity().to_string(),
            alert.raised_at().to_string(),
            alert.service_name(),
            alert.title().chars().take(56).collect::<String>(),
            duration,
            alert.location(),
        );
    }
    let root_alert = windowed
        .iter()
        .find(|a| a.id() == containing.root)
        .expect("root is in the stream");

    header("shape checks");
    compare(
        "cascade pattern",
        "storage fault → dependent service alerts",
        &format!(
            "root on {} with {} derived alerts",
            root_alert.service_name(),
            containing.derived().len()
        ),
    );
    compare(
        "derived alerts trail the root",
        "alerts 2&3 occurred right after alert 1",
        &format!(
            "root at {}, group spans {}",
            root_alert.raised_at(),
            containing.window
        ),
    );
    compare(
        "root service is depended upon",
        "Database relies on Block Storage",
        &format!(
            "{} dependents of root microservice in group",
            containing.len() - 1
        ),
    );
    assert!(containing.len() >= 3, "cascade group too small");
}
