//! The pre-refactor streaming governor, preserved as a baseline.
//!
//! Before the incremental detection engine, every ingested window
//! re-ran full detection over the flattened rolling history — O(history)
//! per window. [`BatchRecomputeGovernor`] keeps that implementation
//! alive so the `streaming` bench and the `streaming_bench` harness can
//! measure the refactor's speedup against the real thing, and so the
//! equivalence suites have an executable oracle to diff against.

use std::collections::{BTreeSet, VecDeque};

use alertops_core::{AlertGovernor, StreamingConfig, WindowDelta};
use alertops_detect::storm::{region_hour_histogram, storms_from_histogram};
use alertops_detect::{AntiPattern, StrategyFinding};
use alertops_model::{Alert, Incident, IncidentStatus, RegionId, StrategyId};

/// Streaming governance by brute force: owned windows, flatten + sort +
/// batch re-detection on every ingest. Semantically identical to
/// [`alertops_core::StreamingGovernor`] (the equivalence suites hold
/// the two byte-identical), but O(history) per window.
pub struct BatchRecomputeGovernor {
    governor: AlertGovernor,
    config: StreamingConfig,
    history: VecDeque<Vec<Alert>>,
    incidents: Vec<Incident>,
    previous_flags: BTreeSet<(AntiPattern, StrategyId)>,
    windows_ingested: u64,
}

impl BatchRecomputeGovernor {
    /// Wraps a governor for brute-force streaming use.
    #[must_use]
    pub fn new(governor: AlertGovernor, config: StreamingConfig) -> Self {
        Self {
            governor,
            config,
            history: VecDeque::new(),
            incidents: Vec::new(),
            previous_flags: BTreeSet::new(),
            windows_ingested: 0,
        }
    }

    /// Ingests one window the pre-refactor way: push it onto the owned
    /// history, flatten and sort everything retained, and re-detect
    /// from scratch.
    pub fn ingest(&mut self, window: &[Alert], incidents: &[Incident]) -> WindowDelta {
        self.history.push_back(window.to_vec());
        while self.history.len() > self.config.history_windows {
            self.history.pop_front();
        }
        self.incidents.extend(incidents.iter().cloned());

        let mut scope: Vec<Alert> = self.history.iter().flatten().cloned().collect();
        scope.sort_by_key(|a| (a.raised_at(), a.id()));

        match scope.first().map(Alert::raised_at) {
            Some(oldest) => self.incidents.retain(|inc| {
                inc.is_open()
                    || match inc.status() {
                        IncidentStatus::Mitigated { at } => at >= oldest,
                        IncidentStatus::Open => true,
                    }
            }),
            None => self.incidents.retain(Incident::is_open),
        }

        let report = self.governor.detect(&scope, &self.incidents);
        let current_flags: BTreeSet<(AntiPattern, StrategyId)> = report
            .findings
            .iter()
            .flat_map(|(&pattern, findings)| findings.iter().map(move |f| (pattern, f.strategy)))
            .collect();
        let new_findings: Vec<StrategyFinding> = report
            .findings
            .values()
            .flatten()
            .filter(|f| !self.previous_flags.contains(&(f.pattern, f.strategy)))
            .cloned()
            .collect();
        let resolved: Vec<(AntiPattern, StrategyId)> = self
            .previous_flags
            .difference(&current_flags)
            .copied()
            .collect();

        let histogram = region_hour_histogram(&scope);
        let region_hours: Vec<(RegionId, u64, usize)> = histogram
            .iter()
            .map(|(key, count)| (key.0.clone(), key.1, *count))
            .collect();
        let window_hours: Vec<u64> = window
            .iter()
            .map(Alert::hour_bucket)
            .collect::<BTreeSet<u64>>()
            .into_iter()
            .collect();
        let storm_active = storms_from_histogram(histogram, &self.config.storm)
            .iter()
            .any(|s| {
                s.hours
                    .iter()
                    .any(|h| window_hours.binary_search(h).is_ok())
            });

        let blocker = self.governor.derive_blocker(&report);
        let pipeline = self.governor.react(window, blocker);

        self.previous_flags = current_flags;
        let delta = WindowDelta {
            window_index: self.windows_ingested,
            alert_count: window.len(),
            new_findings,
            resolved,
            storm_active,
            region_hours,
            window_hours,
            triage: pipeline.triage,
            emerging_docs: Vec::new(),
            emerging: None,
            qoa_samples: Vec::new(),
            escalated: Vec::new(),
            qoa: None,
        };
        self.windows_ingested += 1;
        delta
    }
}
