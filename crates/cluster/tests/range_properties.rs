//! Property tests for [`RangeMap`] routing edge cases: empty node
//! ranges (more nodes than strategies), single-strategy ranges, ids
//! sitting exactly on the `partition_point` seams between spans, and
//! ids above the top catalog id. Routing must stay total, stable, and
//! gapless through all of them — an unroutable or double-owned
//! strategy id would silently break the cluster's merge-is-exact
//! argument.

use alertops_cluster::{node_catalog, RangeMap, StrategyRange};
use alertops_model::{AlertStrategy, LogRule, SimDuration, StrategyId, StrategyKind};
use proptest::prelude::*;

fn strategy(id: u64) -> AlertStrategy {
    AlertStrategy::builder(StrategyId(id))
        .title_template("Instance x is abnormal")
        .kind(StrategyKind::Log(LogRule {
            keyword: "E".into(),
            min_count: 1,
            window: SimDuration::from_mins(5),
        }))
        .build()
        .expect("test strategy is well-formed")
}

fn catalog_of(ids: &[u64]) -> Vec<AlertStrategy> {
    ids.iter().copied().map(strategy).collect()
}

/// Spans must tile `[0, u64::MAX]` with no gap, no overlap, ascending.
fn assert_tiles_the_id_space(map: &RangeMap) {
    let spans = map.spans();
    assert!(!spans.is_empty());
    assert_eq!(spans[0].0.start, 0, "first span must start at 0");
    for pair in spans.windows(2) {
        assert_eq!(
            pair[0].0.end.saturating_add(1),
            pair[1].0.start,
            "spans must be gapless and non-overlapping: {pair:?}"
        );
    }
    assert_eq!(
        spans.last().expect("non-empty").0.end,
        u64::MAX,
        "last span must reach the top of the id space"
    );
}

/// Scaled-down case counts by default; `ALERTOPS_TEST_FULL=1` restores
/// the deep run.
fn cases(full: u32) -> u32 {
    if std::env::var("ALERTOPS_TEST_FULL").as_deref() == Ok("1") {
        full
    } else {
        full / 4
    }
}

#[test]
fn empty_node_ranges_still_route_every_id() {
    // More nodes than distinct strategies: some nodes own nothing.
    for (ids, nodes) in [
        (vec![5u64], 4usize),
        (vec![0, 1], 5),
        (vec![100, 200, 300], 8),
    ] {
        let catalog = catalog_of(&ids);
        let map = RangeMap::partition(&catalog, nodes);
        assert_tiles_the_id_space(&map);
        // Every catalog id routes, and each routed node actually holds
        // that strategy in its node catalog.
        for id in &ids {
            let node = map.node_of(StrategyId(*id));
            assert!(node < nodes);
            assert!(
                node_catalog(&catalog, &map, node)
                    .iter()
                    .any(|s| s.id().0 == *id),
                "id {id} routed to node {node} but is not in its catalog"
            );
        }
        // Nodes with no span own no strategies and stay out of routing.
        let owning: Vec<usize> = map.spans().iter().map(|(_, n)| *n).collect();
        for node in 0..nodes {
            if !owning.contains(&node) {
                assert!(node_catalog(&catalog, &map, node).is_empty());
            }
        }
    }
}

#[test]
fn single_strategy_ranges_route_exactly_their_id() {
    let catalog = catalog_of(&[10, 20, 30, 40]);
    let mut map = RangeMap::partition(&catalog, 2);
    // Carve a single-id range out of the middle and hand it over.
    let sliver = StrategyRange::new(20, 20);
    map.reassign(sliver, 1);
    assert_tiles_the_id_space(&map);
    assert_eq!(map.node_of(StrategyId(20)), 1);
    // Its immediate neighbours keep their pre-reassign owner.
    let map_before = RangeMap::partition(&catalog, 2);
    for id in [19u64, 21] {
        assert_eq!(
            map.node_of(StrategyId(id)),
            map_before.node_of(StrategyId(id)),
            "id {id} must not move with the sliver"
        );
    }
}

#[test]
fn ids_above_the_top_range_route_to_the_last_owner() {
    let catalog = catalog_of(&[1, 2, 3]);
    let map = RangeMap::partition(&catalog, 2);
    let top_owner = map.spans().last().expect("non-empty").1;
    assert_eq!(map.node_of(StrategyId(u64::MAX)), top_owner);
    assert_eq!(map.node_of(StrategyId(u64::MAX - 1)), top_owner);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    /// Totality + seam exactness over random catalogs and node counts:
    /// every span boundary id (start, end, and the ids one off either
    /// side) routes to the span that claims it.
    #[test]
    fn partition_point_seams_are_exact(
        ids in proptest::collection::vec(0u64..5_000, 1..80),
        nodes in 1usize..9,
    ) {
        let mut ids = ids;
        ids.sort_unstable();
        ids.dedup();
        let catalog = catalog_of(&ids);
        let map = RangeMap::partition(&catalog, nodes);
        assert_tiles_the_id_space(&map);
        for &(range, node) in map.spans() {
            // Exactly on the seam, both ends.
            prop_assert_eq!(map.node_of(StrategyId(range.start)), node);
            prop_assert_eq!(map.node_of(StrategyId(range.end)), node);
            // One inside each end (may coincide with the seams for a
            // single-id range; still must stay in-span).
            let mid = range.start + (range.end - range.start) / 2;
            prop_assert_eq!(map.node_of(StrategyId(mid)), node);
        }
    }

    /// `node_of` is a partition: each catalog strategy lands on exactly
    /// one node, and the union of node catalogs is the catalog.
    #[test]
    fn node_catalogs_partition_the_catalog(
        ids in proptest::collection::vec(0u64..100_000, 1..120),
        nodes in 1usize..7,
    ) {
        let mut ids = ids;
        ids.sort_unstable();
        ids.dedup();
        let catalog = catalog_of(&ids);
        let map = RangeMap::partition(&catalog, nodes);
        let mut seen = 0usize;
        for node in 0..nodes {
            let owned = node_catalog(&catalog, &map, node);
            for s in &owned {
                prop_assert_eq!(map.node_of(s.id()), node);
            }
            seen += owned.len();
        }
        prop_assert_eq!(seen, catalog.len(), "strategies double-owned or lost");
    }

    /// Reassigning a random range preserves tiling and moves exactly
    /// the ids inside the range.
    #[test]
    fn reassign_preserves_tiling_at_every_seam(
        ids in proptest::collection::vec(0u64..2_000, 2..60),
        nodes in 2usize..6,
        lo in 0u64..2_000,
        span in 0u64..500,
        to_pick in 0usize..6,
    ) {
        let mut ids = ids;
        ids.sort_unstable();
        ids.dedup();
        let catalog = catalog_of(&ids);
        let mut map = RangeMap::partition(&catalog, nodes);
        let before: Vec<usize> = ids.iter().map(|&i| map.node_of(StrategyId(i))).collect();
        let to = to_pick % nodes;
        let range = StrategyRange::new(lo, lo.saturating_add(span));
        map.reassign(range, to);
        assert_tiles_the_id_space(&map);
        for (i, &id) in ids.iter().enumerate() {
            let expect = if range.contains(StrategyId(id)) { to } else { before[i] };
            prop_assert_eq!(map.node_of(StrategyId(id)), expect, "id {}", id);
        }
    }
}
