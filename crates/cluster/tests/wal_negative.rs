//! Negative-path WAL replay: corruption that is *not* the clean torn
//! tail the happy-path suite already covers. Replay must quarantine and
//! count each anomaly deterministically — never panic, never parse
//! garbage, never silently drop a countable record:
//!
//! * a CRC mismatch in the middle of a sealed segment (bit rot, not a
//!   crash) discards the rest of that segment only;
//! * a zero-length frame (valid header, empty payload) is counted as
//!   torn, not parsed as an empty record;
//! * a duplicate window sequence number is counted and merged, not
//!   replayed as two windows.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::PathBuf;

use alertops_cluster::{crc32, replay, Wal, WalRecord};
use alertops_model::{Alert, AlertId, SimTime, StrategyId};

fn alert(id: u64) -> Alert {
    Alert::builder(AlertId(id), StrategyId(id % 5))
        .raised_at(SimTime::from_secs(id * 60))
        .build()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alertops-wal-negative-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Frames a record exactly as the WAL writer does (the wire format is
/// public contract: `<len:08x> <crc32:08x> <json>`).
fn frame(record: &WalRecord) -> String {
    let json = serde_json::to_string(record).expect("record serializes");
    format!("{:08x} {:08x} {json}", json.len(), crc32(json.as_bytes()))
}

/// Writes a raw segment file from pre-framed lines.
fn write_segment(dir: &PathBuf, index: u64, lines: &[String]) {
    fs::create_dir_all(dir).expect("create wal dir");
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(dir.join(format!("seg-{index:010}.wal")))
        .expect("create segment");
    for line in lines {
        writeln!(file, "{line}").expect("write record");
    }
}

/// Bit rot in the middle of a *sealed* segment: the corrupt record and
/// everything after it in that segment (including its boundary) are
/// discarded and counted; the segments before and after replay intact.
#[test]
fn crc_mismatch_mid_segment_quarantines_only_that_segment() {
    let dir = temp_dir("crc-mid");
    let wal = Wal::open(&dir, 8).expect("wal opens");
    for id in 0..3 {
        wal.append(&alert(id)).expect("append");
    }
    wal.boundary(0).expect("boundary");
    for id in 3..5 {
        wal.append(&alert(id)).expect("append");
    }
    wal.boundary(1).expect("boundary");
    wal.append(&alert(5)).expect("append");
    drop(wal);

    // Flip one payload byte of the SECOND record of segment 0 — a
    // mid-segment corruption, not a torn tail.
    let seg0 = dir.join(format!("seg-{:010}.wal", 0));
    let bytes = fs::read(&seg0).expect("read segment");
    let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    let second_start = lines[0].len() + 1;
    let mut corrupted = bytes.clone();
    let target = second_start + lines[1].len() - 1; // last payload byte
    corrupted[target] ^= 0x01;
    fs::write(&seg0, corrupted).expect("write corrupted segment");

    let replayed = replay(&dir).expect("replay never errors on corruption");
    assert_eq!(replayed.torn_records, 1, "exactly the flipped record");
    // Window 0's boundary died with its segment; the surviving leading
    // record flows into the next sealed window. Nothing readable is
    // lost, nothing corrupt is parsed.
    assert_eq!(replayed.windows.len(), 1);
    assert_eq!(replayed.windows[0].0, 1);
    assert_eq!(
        replayed.windows[0].1,
        vec![alert(0), alert(3), alert(4)],
        "segment-0 survivor plus the intact window-1 records"
    );
    assert_eq!(replayed.tail, vec![alert(5)], "open segment is untouched");
    assert_eq!(replayed.duplicate_boundaries, 0);
    assert_eq!(replayed.recovered_alerts, 4);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A zero-length frame has a self-consistent header (`len 0`, the CRC
/// of the empty string) but no payload to parse. It must be counted as
/// torn — an empty JSON document is not a record — and end trust in its
/// segment deterministically.
#[test]
fn zero_length_frame_is_torn_not_parsed() {
    let dir = temp_dir("zero-len");
    write_segment(
        &dir,
        0,
        &[
            frame(&WalRecord::Alert(alert(1))),
            format!("{:08x} {:08x} ", 0, crc32(b"")), // zero-length frame
            frame(&WalRecord::Alert(alert(2))),       // untrusted from here on
        ],
    );
    write_segment(
        &dir,
        1,
        &[
            frame(&WalRecord::Alert(alert(3))),
            frame(&WalRecord::Boundary { window: 0 }),
        ],
    );

    let replayed = replay(&dir).expect("replay never errors");
    assert_eq!(replayed.torn_records, 1, "the zero-length frame");
    assert_eq!(replayed.windows.len(), 1);
    assert_eq!(
        replayed.windows[0].1,
        vec![alert(1), alert(3)],
        "pre-corruption record survives; post-corruption record does not"
    );
    assert!(replayed.tail.is_empty());
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A header too short to frame anything (fewer than 18 bytes) is the
/// same class: torn, counted, no panic.
#[test]
fn truncated_header_is_torn_not_parsed() {
    let dir = temp_dir("short-header");
    write_segment(
        &dir,
        0,
        &[frame(&WalRecord::Alert(alert(9))), "00000000".to_owned()],
    );
    let replayed = replay(&dir).expect("replay never errors");
    assert_eq!(replayed.torn_records, 1);
    assert_eq!(replayed.tail, vec![alert(9)]);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// The same window sequence sealed twice (a re-append bug or a
/// replay-then-crash restart): replay keeps one window, merges the
/// alerts in log order, and counts the anomaly — it must never present
/// the same window seq twice to the governor.
#[test]
fn duplicate_window_seq_is_counted_and_merged() {
    let dir = temp_dir("dup-seq");
    write_segment(
        &dir,
        0,
        &[
            frame(&WalRecord::Alert(alert(1))),
            frame(&WalRecord::Boundary { window: 7 }),
        ],
    );
    write_segment(
        &dir,
        1,
        &[
            frame(&WalRecord::Alert(alert(2))),
            frame(&WalRecord::Boundary { window: 7 }), // duplicate seq
        ],
    );
    write_segment(&dir, 2, &[frame(&WalRecord::Alert(alert(3)))]);

    let replayed = replay(&dir).expect("replay never errors");
    assert_eq!(replayed.duplicate_boundaries, 1);
    assert_eq!(replayed.torn_records, 0);
    assert_eq!(
        replayed.windows,
        vec![(7, vec![alert(1), alert(2)])],
        "one window, every alert, log order"
    );
    assert_eq!(replayed.tail, vec![alert(3)]);
    assert_eq!(replayed.recovered_alerts, 3);

    // Deterministic: a second replay of the same log is identical.
    assert_eq!(replay(&dir).expect("replay"), replayed);
    fs::remove_dir_all(&dir).expect("cleanup");
}
