//! Negative-path WAL replay: corruption that is *not* the clean torn
//! tail the happy-path suite already covers. Replay must quarantine and
//! count each anomaly deterministically — never panic, never parse
//! garbage, never silently drop a countable record:
//!
//! * a CRC mismatch in the middle of a sealed segment (bit rot, not a
//!   crash) discards the rest of that segment only — in both the v1
//!   text and v2 binary segment formats;
//! * a zero-length frame (valid header, empty payload) is counted as
//!   torn, not parsed as an empty record;
//! * a frame kind that is valid on the ingress wire but meaningless in
//!   a journal (a `Flush`) ends trust in its v2 segment;
//! * a duplicate window sequence number is counted and merged, not
//!   replayed as two windows.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::PathBuf;

use alertops_cluster::{crc32, replay, Wal, WalFormat, WalRecord};
use alertops_model::{Alert, AlertId, SimTime, StrategyId};
use alertops_wire::{Frame, WireEncoder, WAL_MAGIC, WAL_VERSION};

fn alert(id: u64) -> Alert {
    Alert::builder(AlertId(id), StrategyId(id % 5))
        .raised_at(SimTime::from_secs(id * 60))
        .build()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alertops-wal-negative-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Frames a record exactly as the WAL writer does (the wire format is
/// public contract: `<len:08x> <crc32:08x> <json>`).
fn frame(record: &WalRecord) -> String {
    let json = serde_json::to_string(record).expect("record serializes");
    format!("{:08x} {:08x} {json}", json.len(), crc32(json.as_bytes()))
}

/// Writes a raw segment file from pre-framed lines.
fn write_segment(dir: &PathBuf, index: u64, lines: &[String]) {
    fs::create_dir_all(dir).expect("create wal dir");
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(dir.join(format!("seg-{index:010}.wal")))
        .expect("create segment");
    for line in lines {
        writeln!(file, "{line}").expect("write record");
    }
}

/// Bit rot in the middle of a *sealed* segment: the corrupt record and
/// everything after it in that segment (including its boundary) are
/// discarded and counted; the segments before and after replay intact.
#[test]
fn crc_mismatch_mid_segment_quarantines_only_that_segment() {
    let dir = temp_dir("crc-mid");
    // The line-oriented corruption below splits on newlines, so this
    // test pins the v1 text format explicitly.
    let wal = Wal::open_with_format(&dir, 8, WalFormat::V1Json).expect("wal opens");
    for id in 0..3 {
        wal.append(&alert(id)).expect("append");
    }
    wal.boundary(0).expect("boundary");
    for id in 3..5 {
        wal.append(&alert(id)).expect("append");
    }
    wal.boundary(1).expect("boundary");
    wal.append(&alert(5)).expect("append");
    drop(wal);

    // Flip one payload byte of the SECOND record of segment 0 — a
    // mid-segment corruption, not a torn tail.
    let seg0 = dir.join(format!("seg-{:010}.wal", 0));
    let bytes = fs::read(&seg0).expect("read segment");
    let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    let second_start = lines[0].len() + 1;
    let mut corrupted = bytes.clone();
    let target = second_start + lines[1].len() - 1; // last payload byte
    corrupted[target] ^= 0x01;
    fs::write(&seg0, corrupted).expect("write corrupted segment");

    let replayed = replay(&dir).expect("replay never errors on corruption");
    assert_eq!(replayed.torn_records, 1, "exactly the flipped record");
    // Window 0's boundary died with its segment; the surviving leading
    // record flows into the next sealed window. Nothing readable is
    // lost, nothing corrupt is parsed.
    assert_eq!(replayed.windows.len(), 1);
    assert_eq!(replayed.windows[0].0, 1);
    assert_eq!(
        replayed.windows[0].1,
        vec![alert(0), alert(3), alert(4)],
        "segment-0 survivor plus the intact window-1 records"
    );
    assert_eq!(replayed.tail, vec![alert(5)], "open segment is untouched");
    assert_eq!(replayed.duplicate_boundaries, 0);
    assert_eq!(replayed.recovered_alerts, 4);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A zero-length frame has a self-consistent header (`len 0`, the CRC
/// of the empty string) but no payload to parse. It must be counted as
/// torn — an empty JSON document is not a record — and end trust in its
/// segment deterministically.
#[test]
fn zero_length_frame_is_torn_not_parsed() {
    let dir = temp_dir("zero-len");
    write_segment(
        &dir,
        0,
        &[
            frame(&WalRecord::Alert(alert(1))),
            format!("{:08x} {:08x} ", 0, crc32(b"")), // zero-length frame
            frame(&WalRecord::Alert(alert(2))),       // untrusted from here on
        ],
    );
    write_segment(
        &dir,
        1,
        &[
            frame(&WalRecord::Alert(alert(3))),
            frame(&WalRecord::Boundary { window: 0 }),
        ],
    );

    let replayed = replay(&dir).expect("replay never errors");
    assert_eq!(replayed.torn_records, 1, "the zero-length frame");
    assert_eq!(replayed.windows.len(), 1);
    assert_eq!(
        replayed.windows[0].1,
        vec![alert(1), alert(3)],
        "pre-corruption record survives; post-corruption record does not"
    );
    assert!(replayed.tail.is_empty());
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A header too short to frame anything (fewer than 18 bytes) is the
/// same class: torn, counted, no panic.
#[test]
fn truncated_header_is_torn_not_parsed() {
    let dir = temp_dir("short-header");
    write_segment(
        &dir,
        0,
        &[frame(&WalRecord::Alert(alert(9))), "00000000".to_owned()],
    );
    let replayed = replay(&dir).expect("replay never errors");
    assert_eq!(replayed.torn_records, 1);
    assert_eq!(replayed.tail, vec![alert(9)]);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// The same window sequence sealed twice (a re-append bug or a
/// replay-then-crash restart): replay keeps one window, merges the
/// alerts in log order, and counts the anomaly — it must never present
/// the same window seq twice to the governor.
#[test]
fn duplicate_window_seq_is_counted_and_merged() {
    let dir = temp_dir("dup-seq");
    write_segment(
        &dir,
        0,
        &[
            frame(&WalRecord::Alert(alert(1))),
            frame(&WalRecord::Boundary { window: 7 }),
        ],
    );
    write_segment(
        &dir,
        1,
        &[
            frame(&WalRecord::Alert(alert(2))),
            frame(&WalRecord::Boundary { window: 7 }), // duplicate seq
        ],
    );
    write_segment(&dir, 2, &[frame(&WalRecord::Alert(alert(3)))]);

    let replayed = replay(&dir).expect("replay never errors");
    assert_eq!(replayed.duplicate_boundaries, 1);
    assert_eq!(replayed.torn_records, 0);
    assert_eq!(
        replayed.windows,
        vec![(7, vec![alert(1), alert(2)])],
        "one window, every alert, log order"
    );
    assert_eq!(replayed.tail, vec![alert(3)]);
    assert_eq!(replayed.recovered_alerts, 3);

    // Deterministic: a second replay of the same log is identical.
    assert_eq!(replay(&dir).expect("replay"), replayed);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Writes a raw v2 binary segment from pre-encoded frame bytes.
fn write_v2_segment(dir: &PathBuf, index: u64, frames: &[Vec<u8>]) {
    fs::create_dir_all(dir).expect("create wal dir");
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(dir.join(format!("seg-{index:010}.wal")))
        .expect("create segment");
    file.write_all(&WAL_MAGIC).expect("write magic");
    file.write_all(&[WAL_VERSION]).expect("write version");
    for frame in frames {
        file.write_all(frame).expect("write frame");
    }
}

/// Encodes a run of frames with one segment-scoped encoder (string
/// table shared, as a real segment's would be), returning per-frame
/// byte runs so tests can corrupt one frame surgically.
fn encode_v2_frames(frames: &[Frame]) -> Vec<Vec<u8>> {
    let mut encoder = WireEncoder::new();
    frames
        .iter()
        .map(|frame| {
            let mut buf = Vec::new();
            encoder.encode_into(frame, &mut buf);
            buf
        })
        .collect()
}

/// Bit rot mid-segment in the v2 binary format: the CRC catches the
/// flip, the rest of that segment is untrusted (binary streams cannot
/// resync), and neighbouring segments replay intact — the same
/// blast-radius contract the v1 test above pins.
#[test]
fn crc_mismatch_mid_v2_segment_quarantines_the_rest() {
    let dir = temp_dir("crc-mid-v2");
    let mut seg0 = encode_v2_frames(&[
        Frame::Alert(Box::new(alert(1))),
        Frame::Alert(Box::new(alert(2))),
        Frame::Alert(Box::new(alert(3))),
    ]);
    // Flip one payload byte of the SECOND frame (last byte is payload:
    // the frame tail is body bytes, not header).
    let last = seg0[1].len() - 1;
    seg0[1][last] ^= 0x01;
    write_v2_segment(&dir, 0, &seg0);
    write_v2_segment(
        &dir,
        1,
        &encode_v2_frames(&[
            Frame::Alert(Box::new(alert(4))),
            Frame::Boundary { window: 0 },
        ]),
    );

    let replayed = replay(&dir).expect("replay never errors on corruption");
    assert_eq!(
        replayed.torn_records, 1,
        "one torn count for the corrupt frame and its untrusted tail"
    );
    assert_eq!(replayed.windows.len(), 1);
    assert_eq!(
        replayed.windows[0].1,
        vec![alert(1), alert(4)],
        "segment-0 survivor plus the intact segment-1 record"
    );
    assert!(replayed.tail.is_empty());
    assert_eq!(replayed.recovered_alerts, 2);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A frame kind that is valid wire traffic but meaningless in a
/// journal — here a `Flush` — ends trust in its v2 segment: whatever
/// wrote it was not this WAL's writer, so nothing after it is safe to
/// believe either.
#[test]
fn non_journal_frame_kind_is_torn_not_replayed() {
    let dir = temp_dir("flush-in-wal");
    write_v2_segment(
        &dir,
        0,
        &encode_v2_frames(&[
            Frame::Alert(Box::new(alert(1))),
            Frame::Flush,
            Frame::Alert(Box::new(alert(2))),
        ]),
    );

    let replayed = replay(&dir).expect("replay never errors");
    assert_eq!(replayed.torn_records, 1, "the stray flush frame");
    assert_eq!(replayed.tail, vec![alert(1)]);
    assert_eq!(replayed.recovered_alerts, 1);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A v1 incarnation followed by a v2 one (the upgrade path): replay
/// stitches both into one history, and corruption inside the v2 part
/// never bleeds back into the v1 windows.
#[test]
fn v1_then_corrupt_v2_replays_the_v1_history_intact() {
    let dir = temp_dir("v1-then-v2");
    write_segment(
        &dir,
        0,
        &[
            frame(&WalRecord::Alert(alert(1))),
            frame(&WalRecord::Boundary { window: 0 }),
        ],
    );
    let mut seg1 = encode_v2_frames(&[
        Frame::Alert(Box::new(alert(2))),
        Frame::Boundary { window: 1 },
    ]);
    let last = seg1[0].len() - 1;
    seg1[0][last] ^= 0x40;
    write_v2_segment(&dir, 1, &seg1);

    let replayed = replay(&dir).expect("replay never errors");
    assert_eq!(replayed.torn_records, 1);
    assert_eq!(
        replayed.windows,
        vec![(0, vec![alert(1)])],
        "the v1 window survives; the corrupt v2 segment contributes nothing"
    );
    assert_eq!(replayed.recovered_alerts, 1);
    fs::remove_dir_all(&dir).expect("cleanup");
}
