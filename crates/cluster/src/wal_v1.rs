//! WAL wire format **v1**: length+CRC-framed NDJSON lines.
//!
//! This is the segment layout the log spoke before the binary codec
//! (`alertops-wire`) existed — one record per line:
//!
//! ```text
//! <len:08x> <crc32:08x> <json>\n
//! ```
//!
//! where `len` is the byte length of `<json>` and `crc32` its IEEE
//! CRC-32. It lives on for two reasons: **replay compatibility**
//! (segments written by a pre-v2 incarnation must keep replaying
//! byte-identically — [`crate::wal::replay`] sniffs the format per
//! segment and routes v1 segments here) and **benchmarking** (a
//! [`crate::Wal`] opened with [`crate::WalFormat::V1Json`] appends in
//! this format, which is how `cluster_bench` measures the journaling
//! tax the binary format removes).
//!
//! This module is the only place on the WAL/handoff path allowed to
//! re-serialize records through `serde_json` — the determinism audit
//! enforces that boundary.

use alertops_wire::crc32;

use crate::wal::WalRecord;

/// Frames one record as its v1 wire line (without trailing newline).
pub(crate) fn frame(record: &WalRecord) -> String {
    let json = serde_json::to_string(record).expect("WAL records always serialize");
    format!("{:08x} {:08x} {json}", json.len(), crc32(json.as_bytes()))
}

/// Parses one v1 wire line back into a record. `None` means the line
/// is torn or corrupt (bad framing, length mismatch, CRC mismatch, or
/// invalid JSON).
pub(crate) fn unframe(line: &[u8]) -> Option<WalRecord> {
    // "llllllll cccccccc j..." — header is fixed-width ASCII.
    if line.len() < 18 || line[8] != b' ' || line[17] != b' ' {
        return None;
    }
    let header = std::str::from_utf8(&line[..17]).ok()?;
    let len = usize::from_str_radix(&header[..8], 16).ok()?;
    let crc = u32::from_str_radix(&header[9..17], 16).ok()?;
    let json = &line[18..];
    if json.len() != len || crc32(json) != crc {
        return None;
    }
    serde_json::from_str(std::str::from_utf8(json).ok()?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{Alert, AlertId, SimTime, StrategyId};

    fn alert(id: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(id % 5))
            .raised_at(SimTime::from_secs(id * 60))
            .build()
    }

    #[test]
    fn frames_roundtrip_and_reject_corruption() {
        let record = WalRecord::Alert(alert(7));
        let line = frame(&record);
        assert_eq!(unframe(line.as_bytes()), Some(record));
        // Flip one payload byte: CRC must catch it.
        let mut bad = line.clone().into_bytes();
        let last = bad.len() - 1;
        bad[last] ^= 0x20;
        assert_eq!(unframe(&bad), None);
        // Truncate: length must catch it.
        assert_eq!(unframe(&line.as_bytes()[..line.len() - 1]), None);
    }

    #[test]
    fn v1_lines_never_start_with_the_v2_magic() {
        let line = frame(&WalRecord::Boundary { window: 3 });
        assert!(!line.as_bytes().starts_with(&alertops_wire::WAL_MAGIC));
        assert!(line.as_bytes()[..8].iter().all(u8::is_ascii_hexdigit));
    }
}
