//! Contiguous strategy-id ranges and the cluster routing table.
//!
//! A cluster partitions the `StrategyId` space into contiguous ranges,
//! one owner node per range — the node-level analogue of the daemon's
//! per-shard hash partition, but *contiguous* so a range can be handed
//! from one node to another as a single seal-and-ship unit. Routing by
//! strategy preserves the merge-is-exact property one level up: all
//! evidence for a strategy lives on exactly one node, so per-strategy
//! findings merge losslessly and region-hour histograms sum key-wise.

use alertops_model::{AlertStrategy, StrategyId};
use serde::{Deserialize, Serialize};

/// An inclusive range of strategy ids, `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategyRange {
    /// First id in the range.
    pub start: u64,
    /// Last id in the range (inclusive, so the full id space is
    /// representable).
    pub end: u64,
}

impl StrategyRange {
    /// A range holding exactly the ids `start..=end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "range start {start} exceeds end {end}");
        Self { start, end }
    }

    /// Whether `id` falls inside this range.
    #[must_use]
    pub fn contains(&self, id: StrategyId) -> bool {
        (self.start..=self.end).contains(&id.0)
    }
}

/// The routing table: sorted, non-overlapping spans covering the whole
/// id space, each owned by one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeMap {
    /// `(range, node)`, ascending by `range.start`, gapless from 0 to
    /// `u64::MAX`.
    spans: Vec<(StrategyRange, usize)>,
    nodes: usize,
}

impl RangeMap {
    /// Partitions the catalog's strategies into `nodes` contiguous
    /// ranges of roughly equal strategy count, then pads the first and
    /// last range so the map covers the entire id space (an alert for
    /// an id between catalog ids routes with its neighbours; there are
    /// no unroutable ids).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn partition(catalog: &[AlertStrategy], nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        let mut ids: Vec<u64> = catalog.iter().map(|s| s.id().0).collect();
        ids.sort_unstable();
        ids.dedup();

        // Cut points: the id where each of the 1..nodes later groups
        // begins. With fewer distinct ids than nodes the tail nodes
        // own empty ranges, carved as single-id slivers just below
        // their successor's span.
        let per_node = ids.len().div_ceil(nodes.max(1)).max(1);
        let mut spans = Vec::with_capacity(nodes);
        let mut start = 0u64;
        for node in 0..nodes {
            let end = if node + 1 == nodes {
                u64::MAX
            } else {
                match ids.get((node + 1) * per_node) {
                    // The next group's first id starts the next span.
                    Some(&next_first) if next_first > start => next_first - 1,
                    _ => start.saturating_sub(1), // empty tail node
                }
            };
            if end < start {
                // Degenerate (more nodes than ids): give the node an
                // empty claim by skipping it; route() never selects it.
                continue;
            }
            spans.push((StrategyRange::new(start, end), node));
            start = end.saturating_add(1);
            if end == u64::MAX {
                break;
            }
        }
        // Guarantee total coverage even in degenerate layouts.
        if let Some((last, node)) = spans.last().copied() {
            if last.end != u64::MAX {
                spans.push((StrategyRange::new(last.end + 1, u64::MAX), node));
            }
        }
        let mut map = Self { spans, nodes };
        map.normalize();
        map
    }

    /// The node owning `id`. Total: every id has an owner.
    #[must_use]
    pub fn node_of(&self, id: StrategyId) -> usize {
        let i = self
            .spans
            .partition_point(|(range, _)| range.end < id.0)
            .min(self.spans.len() - 1);
        self.spans[i].1
    }

    /// Number of nodes this map routes across.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The ranges currently owned by `node`, ascending.
    #[must_use]
    pub fn ranges_of(&self, node: usize) -> Vec<StrategyRange> {
        self.spans
            .iter()
            .filter(|(_, n)| *n == node)
            .map(|(r, _)| *r)
            .collect()
    }

    /// The spans as `(range, node)` pairs, ascending by start.
    #[must_use]
    pub fn spans(&self) -> &[(StrategyRange, usize)] {
        &self.spans
    }

    /// Reassigns `range` to `to`, splitting any spans it cuts through.
    /// This is the routing-table half of a handoff; the caller moves
    /// the corresponding governor state separately.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid node index.
    pub fn reassign(&mut self, range: StrategyRange, to: usize) {
        assert!(
            to < self.nodes,
            "node {to} outside cluster of {}",
            self.nodes
        );
        let mut next = Vec::with_capacity(self.spans.len() + 2);
        for &(span, node) in &self.spans {
            if span.end < range.start || span.start > range.end {
                next.push((span, node));
                continue;
            }
            if span.start < range.start {
                next.push((StrategyRange::new(span.start, range.start - 1), node));
            }
            next.push((
                StrategyRange::new(span.start.max(range.start), span.end.min(range.end)),
                to,
            ));
            if span.end > range.end {
                next.push((StrategyRange::new(range.end + 1, span.end), node));
            }
        }
        next.sort_by_key(|(r, _)| r.start);
        self.spans = next;
        self.normalize();
    }

    /// Coalesces adjacent spans with the same owner.
    fn normalize(&mut self) {
        let mut merged: Vec<(StrategyRange, usize)> = Vec::with_capacity(self.spans.len());
        for &(span, node) in &self.spans {
            match merged.last_mut() {
                Some((last, last_node))
                    if *last_node == node && last.end.saturating_add(1) == span.start =>
                {
                    last.end = span.end;
                }
                _ => merged.push((span, node)),
            }
        }
        self.spans = merged;
    }
}

/// The strategies of `catalog` that `map` routes to `node` — what the
/// node's daemon builds its shard governors over.
#[must_use]
pub fn node_catalog(catalog: &[AlertStrategy], map: &RangeMap, node: usize) -> Vec<AlertStrategy> {
    catalog
        .iter()
        .filter(|s| map.node_of(s.id()) == node)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{LogRule, SimDuration, StrategyKind};

    fn strategy(id: u64) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(id))
            .title_template("Instance x is abnormal")
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(5),
            }))
            .build()
            .unwrap()
    }

    fn catalog(n: u64) -> Vec<AlertStrategy> {
        (0..n).map(strategy).collect()
    }

    #[test]
    fn partition_covers_every_id_and_balances() {
        let catalog = catalog(100);
        for nodes in [1usize, 2, 3, 4, 7] {
            let map = RangeMap::partition(&catalog, nodes);
            let mut counts = vec![0usize; nodes];
            for s in &catalog {
                counts[map.node_of(s.id())] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), 100);
            for (node, &count) in counts.iter().enumerate() {
                assert!(
                    count >= 100 / nodes / 2,
                    "{nodes} nodes: node {node} starved: {counts:?}"
                );
            }
            // Ids outside the catalog still route somewhere.
            let _ = map.node_of(StrategyId(u64::MAX));
            let _ = map.node_of(StrategyId(0));
        }
    }

    #[test]
    fn ranges_are_contiguous_per_node() {
        let map = RangeMap::partition(&catalog(64), 4);
        for node in 0..4 {
            assert_eq!(map.ranges_of(node).len(), 1, "fresh partition: one range");
        }
        // Spans tile the space without gap or overlap.
        let mut expected_start = 0u64;
        for (range, _) in map.spans() {
            assert_eq!(range.start, expected_start);
            expected_start = range.end.saturating_add(1);
        }
        assert_eq!(map.spans().last().unwrap().0.end, u64::MAX);
    }

    #[test]
    fn reassign_moves_exactly_the_range() {
        let catalog = catalog(40);
        let mut map = RangeMap::partition(&catalog, 2);
        let before: Vec<usize> = catalog.iter().map(|s| map.node_of(s.id())).collect();
        let moved = StrategyRange::new(5, 9);
        map.reassign(moved, 1);
        for s in &catalog {
            let expect = if moved.contains(s.id()) {
                1
            } else {
                before[usize::try_from(s.id().0).unwrap()]
            };
            assert_eq!(map.node_of(s.id()), expect, "id {}", s.id().0);
        }
        // Still gapless.
        let mut expected_start = 0u64;
        for (range, _) in map.spans() {
            assert_eq!(range.start, expected_start);
            expected_start = range.end.saturating_add(1);
        }
    }

    #[test]
    fn more_nodes_than_strategies_is_survivable() {
        let map = RangeMap::partition(&catalog(2), 5);
        for id in 0..2u64 {
            assert!(map.node_of(StrategyId(id)) < 5);
        }
    }
}
