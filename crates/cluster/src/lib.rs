//! `alertops-cluster`: a multi-node `ingestd` cluster with durable
//! write-ahead logs and live range rebalancing.
//!
//! The DSN'22 governance loop scaled from batch
//! ([`alertops_core::AlertGovernor`]) to incremental
//! ([`alertops_core::StreamingGovernor`]) to a sharded daemon
//! ([`alertops_ingestd`]); this crate takes the last step to a
//! *topology*. N daemon nodes each own a contiguous
//! [`alertops_model::StrategyId`] range ([`RangeMap`]); a cluster
//! coordinator ([`AlertCluster`]) routes alerts by range, collects one
//! [`alertops_core::WindowDelta`] per node at window close, and merges
//! them through the same commutative monoid the daemon uses across
//! shards — so a 4-node cluster, a 1-node cluster, and the batch
//! governor publish **byte-identical** snapshots over the same stream.
//!
//! Three mechanisms make the topology survivable:
//!
//! - **Write-ahead log** ([`wal`]): every accepted alert is journaled
//!   to its owner's length+CRC-framed log (binary `alertops-wire`
//!   frames by default, the pre-v2 NDJSON layout still replayable)
//!   before it is routed; window boundaries seal segments with an
//!   `fsync`. A killed node loses its memory, never its log.
//! - **Rejoin replay** ([`AlertCluster::rejoin`],
//!   [`AlertCluster::spawn`]): sealed windows rebuild the rolling
//!   detection history, the in-flight tail comes back as pending work,
//!   and a whole-cluster restart re-ingests the recovered stream
//!   end-to-end — lossless with no live peer.
//! - **Range handoff** ([`AlertCluster::handoff`]): a source node
//!   seals, ships the moving range's slice of its checkpoint as a
//!   [`HandoffShipment`] (an `alertops-wire` binary frame on the
//!   wire), and both ends respawn mid-stream without dropping or
//!   double-counting a window.
//!
//! Everything is accounted: the cluster-level conservation law
//! `ingested == delivered + dropped + quarantined + in_flight`
//! ([`ClusterCounters::is_conserved`]) holds at every quiescent point,
//! nodes dead or alive, and the whole topology is observable as
//! `alertops_cluster_*` Prometheus series ([`ClusterMetrics`]).
//! Fault schedules come from `alertops-chaos` (node kills, rejoins,
//! WAL truncation) and the scenario matrix lives in
//! `tests/cluster.rs` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster;
pub mod journal;
pub mod range;
pub mod wal;
pub(crate) mod wal_v1;

mod metrics;

pub use cluster::{
    AlertCluster, ClusterConfig, ClusterCounters, GovernorFactory, HandoffReport, HandoffShipment,
};
pub use journal::WalJournal;
pub use metrics::ClusterMetrics;
pub use range::{node_catalog, RangeMap, StrategyRange};
pub use wal::{crc32, replay, Wal, WalDepth, WalFormat, WalRecord, WalReplay};
