//! Bridges the daemon's write-ahead hook onto a [`Wal`].
//!
//! A cluster journals at its own layer (it owns the window sequence),
//! but a *standalone* daemon — `alertops ingestd --wal DIR` — attaches
//! this adapter so every accepted alert hits the log before any queue
//! and every coordinator close seals a segment. The daemon never reads
//! the log back; on restart the CLI replays it and re-routes the
//! recovered stream through normal ingestion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alertops_ingestd::WindowJournal;
use alertops_model::Alert;

use crate::wal::Wal;

/// [`WindowJournal`] over a [`Wal`]. I/O errors cannot propagate
/// through the hook (routing must not fail on a sick disk), so they
/// are counted instead; callers alarm on
/// [`write_errors`](Self::write_errors) going nonzero — at that point
/// the log is no longer a complete record and replay is best-effort.
#[derive(Debug)]
pub struct WalJournal {
    wal: Arc<Wal>,
    write_errors: AtomicU64,
}

impl WalJournal {
    /// Wraps `wal` as a daemon journal.
    #[must_use]
    pub fn new(wal: Arc<Wal>) -> Self {
        Self {
            wal,
            write_errors: AtomicU64::new(0),
        }
    }

    /// The underlying log.
    #[must_use]
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Appends or seals that failed on I/O since startup.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl WindowJournal for WalJournal {
    fn record(&self, alert: &Alert) {
        if self.wal.append(alert).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn window_closed(&self, seq: u64) {
        if self.wal.boundary(seq).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal;
    use alertops_model::{AlertId, SimTime, StrategyId};

    #[test]
    fn daemon_hook_writes_the_same_log_format() {
        let dir = std::env::temp_dir().join(format!("alertops-waljournal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = WalJournal::new(Arc::new(Wal::open(&dir, 4).unwrap()));
        let alert = Alert::builder(AlertId(1), StrategyId(0))
            .raised_at(SimTime::from_secs(60))
            .build();
        journal.record(&alert);
        journal.window_closed(0);
        journal.record(&alert);
        assert_eq!(journal.write_errors(), 0);

        let replayed = wal::replay(&dir).unwrap();
        assert_eq!(replayed.windows, vec![(0, vec![alert.clone()])]);
        assert_eq!(replayed.tail, vec![alert]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
