//! The durable write-ahead log: length+CRC-framed NDJSON segments.
//!
//! One log per node, one directory per log, one segment file per
//! window. Every record is a single line:
//!
//! ```text
//! <len:08x> <crc32:08x> <json>\n
//! ```
//!
//! where `len` is the byte length of `<json>` and `crc32` its IEEE
//! CRC-32 — so a torn tail (crash mid-write) or flipped bytes are
//! detected, never silently parsed. Records are either an
//! [`Alert`](alertops_model::Alert) (appended *before* the alert is
//! routed anywhere — write-ahead) or a window `boundary` carrying the
//! cluster's window sequence number. A boundary seals the current
//! segment: the writer flushes, `fsync`s, rotates to a fresh segment,
//! and prunes sealed segments beyond the rolling history the governor
//! retains. The segment cadence makes replay trivial and pruning a
//! file unlink.
//!
//! Durability model: appends are flushed to the OS on every record, so
//! a **process** crash (`kill -9` included) loses nothing; the
//! `fsync` on window boundaries is what bounds loss on a **power**
//! failure to the in-flight window. Replay stops trusting a segment at
//! the first framing/CRC failure and reports what it discarded —
//! callers account those alerts as dropped rather than resurrecting
//! guesses.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use alertops_model::Alert;
use serde::{Deserialize, Serialize};

/// One journaled record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WalRecord {
    /// An accepted alert, written before it was routed.
    Alert(Alert),
    /// The window with this cluster sequence number closed; seals the
    /// segment it ends.
    Boundary {
        /// The cluster coordinator's window sequence number.
        window: u64,
    },
}

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) — the ubiquitous
/// zlib/PNG variant, implemented here because the workspace is
/// std-only.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames one record as its wire line (without trailing newline).
fn frame(record: &WalRecord) -> String {
    let json = serde_json::to_string(record).expect("WAL records always serialize");
    format!("{:08x} {:08x} {json}", json.len(), crc32(json.as_bytes()))
}

/// Parses one wire line back into a record. `None` means the line is
/// torn or corrupt (bad framing, length mismatch, CRC mismatch, or
/// invalid JSON).
fn unframe(line: &[u8]) -> Option<WalRecord> {
    // "llllllll cccccccc j..." — header is fixed-width ASCII.
    if line.len() < 18 || line[8] != b' ' || line[17] != b' ' {
        return None;
    }
    let header = std::str::from_utf8(&line[..17]).ok()?;
    let len = usize::from_str_radix(&header[..8], 16).ok()?;
    let crc = u32::from_str_radix(&header[9..17], 16).ok()?;
    let json = &line[18..];
    if json.len() != len || crc32(json) != crc {
        return None;
    }
    serde_json::from_str(std::str::from_utf8(json).ok()?).ok()
}

/// Mutable writer state behind the [`Wal`]'s lock.
#[derive(Debug)]
struct WalState {
    writer: BufWriter<File>,
    /// Index of the open segment file.
    segment: u64,
    /// Records appended to the open segment so far.
    pending_records: u64,
    /// Sealed segments currently on disk.
    sealed: Vec<u64>,
}

/// Point-in-time depth of a log, for gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalDepth {
    /// Sealed window segments retained on disk.
    pub sealed_segments: u64,
    /// Records in the open (in-flight window) segment.
    pub pending_records: u64,
}

/// A node's write-ahead log. Appends are serialized by an internal
/// lock; the cluster calls from its single driver thread, the
/// standalone daemon from its router/coordinator threads.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    retain: usize,
    state: Mutex<WalState>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:010}.wal"))
}

/// Lists the segment indices present in `dir`, ascending.
fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let name = entry?.file_name();
                let name = name.to_string_lossy();
                if let Some(stem) = name
                    .strip_prefix("seg-")
                    .and_then(|s| s.strip_suffix(".wal"))
                {
                    if let Ok(index) = stem.parse::<u64>() {
                        indices.push(index);
                    }
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    indices.sort_unstable();
    Ok(indices)
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, retaining at most
    /// `retain` sealed window segments. Existing segments are left in
    /// place and a fresh open segment is started after them — replay
    /// first ([`replay`]), then open, then re-append what the replay
    /// handed back, is the restart protocol (see
    /// `AlertCluster`).
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let existing = segment_indices(&dir)?;
        let segment = existing.last().map_or(0, |last| last + 1);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&dir, segment))?;
        Ok(Self {
            dir,
            retain,
            state: Mutex::new(WalState {
                writer: BufWriter::new(file),
                segment,
                pending_records: 0,
                sealed: existing,
            }),
        })
    }

    /// Removes every segment file in `dir` (the consume step of
    /// replay-and-rewrite).
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through.
    pub fn wipe(dir: &Path) -> io::Result<()> {
        for index in segment_indices(dir)? {
            fs::remove_file(segment_path(dir, index))?;
        }
        Ok(())
    }

    /// The directory this log writes to.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one alert record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through; the record must be considered
    /// unjournaled if this fails.
    pub fn append(&self, alert: &Alert) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        writeln!(state.writer, "{}", frame(&WalRecord::Alert(alert.clone())))?;
        state.writer.flush()?;
        state.pending_records += 1;
        Ok(())
    }

    /// Seals the in-flight window: appends the boundary record,
    /// flushes, `fsync`s, rotates to a fresh segment, and prunes
    /// sealed segments beyond the retained history.
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through.
    pub fn boundary(&self, window: u64) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        writeln!(state.writer, "{}", frame(&WalRecord::Boundary { window }))?;
        state.writer.flush()?;
        state.writer.get_ref().sync_data()?;

        let sealed = state.segment;
        let next = sealed + 1;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.dir, next))?;
        state.writer = BufWriter::new(file);
        state.segment = next;
        state.pending_records = 0;
        state.sealed.push(sealed);
        while state.sealed.len() > self.retain {
            let oldest = state.sealed.remove(0);
            fs::remove_file(segment_path(&self.dir, oldest))?;
        }
        Ok(())
    }

    /// Current depth, for the cluster's WAL gauges.
    #[must_use]
    pub fn depth(&self) -> WalDepth {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        WalDepth {
            sealed_segments: state.sealed.len() as u64,
            pending_records: state.pending_records,
        }
    }
}

/// What [`replay`] recovered from a log directory.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// The sealed windows in order: `(window sequence, alerts)`.
    pub windows: Vec<(u64, Vec<Alert>)>,
    /// Alerts journaled after the last boundary — the in-flight window
    /// at crash time.
    pub tail: Vec<Alert>,
    /// Lines that failed framing/CRC/JSON validation. Each one also
    /// discards the rest of its segment (everything after a torn
    /// record is untrustworthy).
    pub torn_records: u64,
    /// Boundary records whose window sequence was already sealed
    /// earlier in the log (a re-append bug or a replayed-then-crashed
    /// restart). Their alerts are merged into the first occurrence —
    /// counted, never dropped, never duplicated as windows.
    pub duplicate_boundaries: u64,
    /// Total alerts recovered (windows plus tail).
    pub recovered_alerts: u64,
}

/// Reads every segment in `dir` and reconstructs the journaled
/// windows. Tolerant by design: a missing directory is an empty log; a
/// torn or corrupt record ends trust in its segment (counted, the rest
/// of that segment skipped) but later segments are still read.
///
/// # Errors
///
/// Filesystem errors other than a missing directory pass through.
pub fn replay(dir: &Path) -> io::Result<WalReplay> {
    let mut windows: Vec<(u64, Vec<Alert>)> = Vec::new();
    let mut current: Vec<Alert> = Vec::new();
    let mut torn_records = 0u64;
    let mut duplicate_boundaries = 0u64;
    for index in segment_indices(dir)? {
        let bytes = fs::read(segment_path(dir, index))?;
        for line in bytes.split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            match unframe(line) {
                Some(WalRecord::Alert(alert)) => current.push(alert),
                Some(WalRecord::Boundary { window }) => {
                    let alerts = std::mem::take(&mut current);
                    if let Some((_, existing)) = windows.iter_mut().find(|(w, _)| *w == window) {
                        // A window seq sealed twice: keep one window,
                        // keep every alert, count the anomaly.
                        duplicate_boundaries += 1;
                        existing.extend(alerts);
                    } else {
                        windows.push((window, alerts));
                    }
                }
                None => {
                    torn_records += 1;
                    break; // rest of this segment is untrustworthy
                }
            }
        }
    }
    let recovered_alerts =
        windows.iter().map(|(_, w)| w.len() as u64).sum::<u64>() + current.len() as u64;
    Ok(WalReplay {
        windows,
        tail: current,
        torn_records,
        duplicate_boundaries,
        recovered_alerts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, SimTime, StrategyId};

    fn alert(id: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(id % 5))
            .raised_at(SimTime::from_secs(id * 60))
            .build()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alertops-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_and_reject_corruption() {
        let record = WalRecord::Alert(alert(7));
        let line = frame(&record);
        assert_eq!(unframe(line.as_bytes()), Some(record));
        // Flip one payload byte: CRC must catch it.
        let mut bad = line.clone().into_bytes();
        let last = bad.len() - 1;
        bad[last] ^= 0x20;
        assert_eq!(unframe(&bad), None);
        // Truncate: length must catch it.
        assert_eq!(unframe(&line.as_bytes()[..line.len() - 1]), None);
    }

    #[test]
    fn append_boundary_replay_roundtrips() {
        let dir = temp_dir("roundtrip");
        let wal = Wal::open(&dir, 8).unwrap();
        for id in 0..4 {
            wal.append(&alert(id)).unwrap();
        }
        wal.boundary(0).unwrap();
        for id in 4..6 {
            wal.append(&alert(id)).unwrap();
        }
        wal.boundary(1).unwrap();
        wal.append(&alert(6)).unwrap();
        assert_eq!(wal.depth().sealed_segments, 2);
        assert_eq!(wal.depth().pending_records, 1);

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.windows.len(), 2);
        assert_eq!(replayed.windows[0].0, 0);
        assert_eq!(replayed.windows[0].1.len(), 4);
        assert_eq!(replayed.windows[1].0, 1);
        assert_eq!(replayed.windows[1].1, vec![alert(4), alert(5)]);
        assert_eq!(replayed.tail, vec![alert(6)]);
        assert_eq!(replayed.torn_records, 0);
        assert_eq!(replayed.recovered_alerts, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_the_rolling_history() {
        let dir = temp_dir("prune");
        let wal = Wal::open(&dir, 2).unwrap();
        for window in 0..5u64 {
            wal.append(&alert(window * 10)).unwrap();
            wal.boundary(window).unwrap();
        }
        assert_eq!(wal.depth().sealed_segments, 2);
        let replayed = replay(&dir).unwrap();
        let indices: Vec<u64> = replayed.windows.iter().map(|(w, _)| *w).collect();
        assert_eq!(indices, vec![3, 4], "only the retained windows remain");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_not_parsed() {
        let dir = temp_dir("torn");
        let wal = Wal::open(&dir, 8).unwrap();
        wal.append(&alert(1)).unwrap();
        wal.boundary(0).unwrap();
        wal.append(&alert(2)).unwrap();
        wal.append(&alert(3)).unwrap();
        drop(wal);
        // Simulate a crash mid-write: chop bytes off the open segment.
        let open = segment_path(&dir, 1);
        let len = fs::metadata(&open).unwrap().len();
        let file = OpenOptions::new().write(true).open(&open).unwrap();
        file.set_len(len - 9).unwrap();

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.windows.len(), 1, "sealed window survives");
        assert_eq!(replayed.tail, vec![alert(2)], "intact tail record survives");
        assert_eq!(replayed.torn_records, 1, "the chopped record is counted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_after_existing_segments() {
        let dir = temp_dir("reopen");
        {
            let wal = Wal::open(&dir, 8).unwrap();
            wal.append(&alert(1)).unwrap();
            wal.boundary(0).unwrap();
        }
        let wal = Wal::open(&dir, 8).unwrap();
        wal.append(&alert(2)).unwrap();
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.windows.len(), 1);
        assert_eq!(replayed.tail, vec![alert(2)]);
        drop(wal);
        Wal::wipe(&dir).unwrap();
        assert_eq!(replay(&dir).unwrap().recovered_alerts, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
