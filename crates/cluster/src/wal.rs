//! The durable write-ahead log: length+CRC-framed segments, binary by
//! default.
//!
//! One log per node, one directory per log, one segment file per
//! window. Two segment layouts exist ([`WalFormat`]):
//!
//! * **v2 (binary, the default)** — the segment starts with the magic
//!   header `AOWL` + version byte `0x02`
//!   ([`alertops_wire::WAL_MAGIC`], [`alertops_wire::WAL_VERSION`])
//!   and then speaks the `alertops-wire` frame codec: every record is
//!   a `[len varint][crc32][payload]` frame (an alert, or the window
//!   boundary that seals the segment), with the segment's own string
//!   table turning repeated titles/services/locations into varint
//!   back-references. The table resets at every rotation, so each
//!   segment is self-contained and pruning stays a file unlink.
//! * **v1 (NDJSON)** — one `<len:08x> <crc32:08x> <json>` line per
//!   record (see [`crate::wal_v1`]). Kept for replay compatibility
//!   and as the benchmark baseline; opt in with
//!   [`Wal::open_with_format`].
//!
//! [`replay`] sniffs the format **per segment** (the v2 magic has a
//! non-hex byte where a v1 length field has hex digits, so the two can
//! never be confused), which is what lets a log written by a
//! pre-binary incarnation — or a mixed log from an upgrade
//! mid-history — replay byte-identically.
//!
//! Durability model: appends are flushed to the OS on every record, so
//! a **process** crash (`kill -9` included) loses nothing; the
//! `fsync` on window boundaries is what bounds loss on a **power**
//! failure to the in-flight window. Replay stops trusting a segment at
//! the first framing/CRC failure and reports what it discarded —
//! callers account those alerts as dropped rather than resurrecting
//! guesses.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use alertops_model::Alert;
pub use alertops_wire::crc32;
use alertops_wire::{Frame, WireDecoder, WireEncoder, WAL_MAGIC, WAL_VERSION};
use serde::{Deserialize, Serialize};

use crate::wal_v1;

/// One journaled record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WalRecord {
    /// An accepted alert, written before it was routed.
    Alert(Alert),
    /// The window with this cluster sequence number closed; seals the
    /// segment it ends.
    Boundary {
        /// The cluster coordinator's window sequence number.
        window: u64,
    },
}

/// Which segment layout a [`Wal`] appends in. Replay reads both
/// regardless — this only selects what new segments speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WalFormat {
    /// Length+CRC-framed NDJSON lines (the pre-binary layout; see
    /// [`crate::wal_v1`]). The benchmark baseline.
    V1Json,
    /// `alertops-wire` binary frames behind the `AOWL` magic header.
    #[default]
    V2Binary,
}

impl WalFormat {
    /// Stable label for bench rows and reports (`v1-json` /
    /// `v2-binary`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WalFormat::V1Json => "v1-json",
            WalFormat::V2Binary => "v2-binary",
        }
    }
}

/// Mutable writer state behind the [`Wal`]'s lock.
#[derive(Debug)]
struct WalState {
    writer: BufWriter<File>,
    /// Index of the open segment file.
    segment: u64,
    /// Records appended to the open segment so far.
    pending_records: u64,
    /// Sealed segments currently on disk.
    sealed: Vec<u64>,
    /// v2: the open segment's frame encoder; its string table resets at
    /// every rotation, keeping segments self-contained.
    encoder: WireEncoder,
    /// v2: reusable frame buffer, so appends allocate nothing steady
    /// state.
    scratch: Vec<u8>,
}

/// Point-in-time depth of a log, for gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalDepth {
    /// Sealed window segments retained on disk.
    pub sealed_segments: u64,
    /// Records in the open (in-flight window) segment.
    pub pending_records: u64,
}

/// A node's write-ahead log. Appends are serialized by an internal
/// lock; the cluster calls from its single driver thread, the
/// standalone daemon from its router/coordinator threads.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    retain: usize,
    format: WalFormat,
    state: Mutex<WalState>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:010}.wal"))
}

/// Lists the segment indices present in `dir`, ascending.
fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let name = entry?.file_name();
                let name = name.to_string_lossy();
                if let Some(stem) = name
                    .strip_prefix("seg-")
                    .and_then(|s| s.strip_suffix(".wal"))
                {
                    if let Ok(index) = stem.parse::<u64>() {
                        indices.push(index);
                    }
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Creates a fresh segment file, writing the v2 header when the log
/// speaks binary.
fn create_segment(dir: &Path, index: u64, format: WalFormat) -> io::Result<BufWriter<File>> {
    let file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(segment_path(dir, index))?;
    let mut writer = BufWriter::new(file);
    if format == WalFormat::V2Binary {
        writer.write_all(&WAL_MAGIC)?;
        writer.write_all(&[WAL_VERSION])?;
        writer.flush()?;
    }
    Ok(writer)
}

impl Wal {
    /// Opens (creating if needed) the log in `dir` in the default
    /// (binary) append format, retaining at most `retain` sealed
    /// window segments. Existing segments are left in place and a
    /// fresh open segment is started after them — replay first
    /// ([`replay`]), then open, then re-append what the replay handed
    /// back, is the restart protocol (see `AlertCluster`).
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> io::Result<Self> {
        Self::open_with_format(dir, retain, WalFormat::default())
    }

    /// [`open`](Self::open) with an explicit append format. Replay is
    /// format-agnostic either way; this only selects what *new*
    /// segments speak (the v1 option exists for the format-comparison
    /// bench and the compat tests).
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through.
    pub fn open_with_format(
        dir: impl Into<PathBuf>,
        retain: usize,
        format: WalFormat,
    ) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let existing = segment_indices(&dir)?;
        let segment = existing.last().map_or(0, |last| last + 1);
        let writer = create_segment(&dir, segment, format)?;
        Ok(Self {
            dir,
            retain,
            format,
            state: Mutex::new(WalState {
                writer,
                segment,
                pending_records: 0,
                sealed: existing,
                encoder: WireEncoder::new(),
                scratch: Vec::new(),
            }),
        })
    }

    /// Removes every segment file in `dir` (the consume step of
    /// replay-and-rewrite).
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through.
    pub fn wipe(dir: &Path) -> io::Result<()> {
        for index in segment_indices(dir)? {
            fs::remove_file(segment_path(dir, index))?;
        }
        Ok(())
    }

    /// The directory this log writes to.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The format new segments are appended in.
    #[must_use]
    pub fn format(&self) -> WalFormat {
        self.format
    }

    /// Appends one alert record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through; the record must be considered
    /// unjournaled if this fails.
    pub fn append(&self, alert: &Alert) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match self.format {
            WalFormat::V1Json => {
                let line = wal_v1::frame(&WalRecord::Alert(alert.clone()));
                writeln!(state.writer, "{line}")?;
            }
            WalFormat::V2Binary => {
                let mut scratch = std::mem::take(&mut state.scratch);
                scratch.clear();
                state.encoder.encode_alert_into(alert, &mut scratch);
                let result = state.writer.write_all(&scratch);
                state.scratch = scratch;
                result?;
            }
        }
        state.writer.flush()?;
        state.pending_records += 1;
        Ok(())
    }

    /// Journals an opaque online-QoA model checkpoint
    /// (`alertops_core::QoaCheckpoint::to_bytes`) into the open
    /// segment, so the boundary that seals it carries the model state
    /// as of that window's close and a whole-cluster restart can
    /// resume the feedback loop at identical weights.
    ///
    /// Binary-only: the v1 NDJSON layout predates the QoA loop and its
    /// record schema is frozen, so a v1 log silently skips the
    /// checkpoint (restart then restarts the model from scratch — the
    /// documented v1 limitation).
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through.
    pub fn qoa_state(&self, bytes: &[u8]) -> io::Result<()> {
        if self.format == WalFormat::V1Json {
            return Ok(());
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut scratch = std::mem::take(&mut state.scratch);
        scratch.clear();
        state
            .encoder
            .encode_into(&Frame::QoaState(bytes.to_vec()), &mut scratch);
        let result = state.writer.write_all(&scratch);
        state.scratch = scratch;
        result?;
        state.writer.flush()?;
        Ok(())
    }

    /// Seals the in-flight window: appends the boundary record,
    /// flushes, `fsync`s, rotates to a fresh segment (resetting the
    /// binary format's string table), and prunes sealed segments
    /// beyond the retained history.
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through.
    pub fn boundary(&self, window: u64) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match self.format {
            WalFormat::V1Json => {
                let line = wal_v1::frame(&WalRecord::Boundary { window });
                writeln!(state.writer, "{line}")?;
            }
            WalFormat::V2Binary => {
                let mut scratch = std::mem::take(&mut state.scratch);
                scratch.clear();
                state
                    .encoder
                    .encode_into(&Frame::Boundary { window }, &mut scratch);
                let result = state.writer.write_all(&scratch);
                state.scratch = scratch;
                result?;
            }
        }
        state.writer.flush()?;
        state.writer.get_ref().sync_data()?;

        let sealed = state.segment;
        let next = sealed + 1;
        state.writer = create_segment(&self.dir, next, self.format)?;
        state.segment = next;
        state.pending_records = 0;
        state.encoder = WireEncoder::new();
        state.sealed.push(sealed);
        while state.sealed.len() > self.retain {
            let oldest = state.sealed.remove(0);
            fs::remove_file(segment_path(&self.dir, oldest))?;
        }
        Ok(())
    }

    /// Current depth, for the cluster's WAL gauges.
    #[must_use]
    pub fn depth(&self) -> WalDepth {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        WalDepth {
            sealed_segments: state.sealed.len() as u64,
            pending_records: state.pending_records,
        }
    }
}

/// What [`replay`] recovered from a log directory.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// The sealed windows in order: `(window sequence, alerts)`.
    pub windows: Vec<(u64, Vec<Alert>)>,
    /// Alerts journaled after the last boundary — the in-flight window
    /// at crash time.
    pub tail: Vec<Alert>,
    /// Records that failed framing/CRC/decode validation. Each one
    /// also discards the rest of its segment (everything after a torn
    /// record is untrustworthy).
    pub torn_records: u64,
    /// Boundary records whose window sequence was already sealed
    /// earlier in the log (a re-append bug or a replayed-then-crashed
    /// restart). Their alerts are merged into the first occurrence —
    /// counted, never dropped, never duplicated as windows.
    pub duplicate_boundaries: u64,
    /// Total alerts recovered (windows plus tail).
    pub recovered_alerts: u64,
    /// Online-QoA model checkpoints recovered, in log order:
    /// `(window sequence, opaque checkpoint bytes)` — the bytes the
    /// coordinator journaled via [`Wal::qoa_state`] just before the
    /// boundary that sealed that window. Empty for v1 logs and for
    /// clusters with the feedback loop off. Restart restores from the
    /// last entry (the newest model).
    pub qoa_states: Vec<(u64, Vec<u8>)>,
    /// A checkpoint journaled after the last boundary — the restart
    /// protocol re-journals the restored model into the fresh open
    /// segment, so a second restart before any close still finds it.
    pub tail_qoa: Option<Vec<u8>>,
}

/// The accumulating replay state shared by the v1 and v2 segment
/// readers.
struct ReplayState {
    windows: Vec<(u64, Vec<Alert>)>,
    current: Vec<Alert>,
    /// A QoA checkpoint seen since the last boundary; attached to the
    /// window that seals it.
    pending_qoa: Option<Vec<u8>>,
    qoa_states: Vec<(u64, Vec<u8>)>,
    torn_records: u64,
    duplicate_boundaries: u64,
}

impl ReplayState {
    fn seal(&mut self, window: u64) {
        let alerts = std::mem::take(&mut self.current);
        if let Some(bytes) = self.pending_qoa.take() {
            self.qoa_states.push((window, bytes));
        }
        if let Some((_, existing)) = self.windows.iter_mut().find(|(w, _)| *w == window) {
            // A window seq sealed twice: keep one window, keep every
            // alert, count the anomaly.
            self.duplicate_boundaries += 1;
            existing.extend(alerts);
        } else {
            self.windows.push((window, alerts));
        }
    }

    /// Reads one v1 (NDJSON-line) segment.
    fn replay_v1_segment(&mut self, bytes: &[u8]) {
        for line in bytes.split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            match wal_v1::unframe(line) {
                Some(WalRecord::Alert(alert)) => self.current.push(alert),
                Some(WalRecord::Boundary { window }) => self.seal(window),
                None => {
                    self.torn_records += 1;
                    return; // rest of this segment is untrustworthy
                }
            }
        }
    }

    /// Reads one v2 (binary) segment; `bytes` excludes the 5-byte
    /// header.
    fn replay_v2_segment(&mut self, bytes: &[u8]) {
        let mut decoder = WireDecoder::new();
        for item in decoder.feed(bytes) {
            match item {
                Ok(Frame::Alert(alert)) => self.current.push(*alert),
                Ok(Frame::Boundary { window }) => self.seal(window),
                // The coordinator journals the online-QoA model just
                // before the sealing boundary; the checkpoint belongs
                // to whichever window seals next.
                Ok(Frame::QoaState(bytes)) => self.pending_qoa = Some(bytes),
                // Any other frame kind has no business in a WAL
                // segment; treat it exactly like corruption.
                Ok(_) | Err(_) => {
                    self.torn_records += 1;
                    return;
                }
            }
        }
        // A partial frame at end of file is the torn tail of a crash
        // mid-write.
        if decoder.finish().is_some() {
            self.torn_records += 1;
        }
    }
}

/// Reads every segment in `dir` and reconstructs the journaled
/// windows, sniffing each segment's format from its header — v1 and
/// v2 segments can coexist in one log (an upgrade mid-history).
/// Tolerant by design: a missing directory is an empty log; a torn or
/// corrupt record ends trust in its segment (counted, the rest of that
/// segment skipped) but later segments are still read.
///
/// # Errors
///
/// Filesystem errors other than a missing directory pass through.
pub fn replay(dir: &Path) -> io::Result<WalReplay> {
    let mut state = ReplayState {
        windows: Vec::new(),
        current: Vec::new(),
        pending_qoa: None,
        qoa_states: Vec::new(),
        torn_records: 0,
        duplicate_boundaries: 0,
    };
    for index in segment_indices(dir)? {
        let bytes = fs::read(segment_path(dir, index))?;
        if bytes.starts_with(&WAL_MAGIC) {
            if bytes.get(WAL_MAGIC.len()) == Some(&WAL_VERSION) {
                state.replay_v2_segment(&bytes[WAL_MAGIC.len() + 1..]);
            } else {
                // A magic header with an unknown (or missing) version
                // byte: written by a future incarnation or torn inside
                // the header — either way, untrustworthy.
                state.torn_records += 1;
            }
        } else {
            state.replay_v1_segment(&bytes);
        }
    }
    let recovered_alerts = state
        .windows
        .iter()
        .map(|(_, w)| w.len() as u64)
        .sum::<u64>()
        + state.current.len() as u64;
    Ok(WalReplay {
        windows: state.windows,
        tail: state.current,
        torn_records: state.torn_records,
        duplicate_boundaries: state.duplicate_boundaries,
        recovered_alerts,
        qoa_states: state.qoa_states,
        tail_qoa: state.pending_qoa,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, SimTime, StrategyId};

    fn alert(id: u64) -> Alert {
        Alert::builder(AlertId(id), StrategyId(id % 5))
            .title("haproxy process number warning")
            .service("Block Storage")
            .raised_at(SimTime::from_secs(id * 60))
            .build()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alertops-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn roundtrip_in(format: WalFormat) {
        let dir = temp_dir(&format!("roundtrip-{}", format.label()));
        let wal = Wal::open_with_format(&dir, 8, format).unwrap();
        assert_eq!(wal.format(), format);
        for id in 0..4 {
            wal.append(&alert(id)).unwrap();
        }
        wal.boundary(0).unwrap();
        for id in 4..6 {
            wal.append(&alert(id)).unwrap();
        }
        wal.boundary(1).unwrap();
        wal.append(&alert(6)).unwrap();
        assert_eq!(wal.depth().sealed_segments, 2);
        assert_eq!(wal.depth().pending_records, 1);

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.windows.len(), 2);
        assert_eq!(replayed.windows[0].0, 0);
        assert_eq!(replayed.windows[0].1.len(), 4);
        assert_eq!(replayed.windows[1].0, 1);
        assert_eq!(replayed.windows[1].1, vec![alert(4), alert(5)]);
        assert_eq!(replayed.tail, vec![alert(6)]);
        assert_eq!(replayed.torn_records, 0);
        assert_eq!(replayed.recovered_alerts, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_boundary_replay_roundtrips_in_both_formats() {
        roundtrip_in(WalFormat::V2Binary);
        roundtrip_in(WalFormat::V1Json);
    }

    #[test]
    fn v2_segments_carry_the_magic_header() {
        let dir = temp_dir("magic");
        let wal = Wal::open(&dir, 8).unwrap();
        wal.append(&alert(1)).unwrap();
        drop(wal);
        let bytes = fs::read(segment_path(&dir, 0)).unwrap();
        assert_eq!(&bytes[..4], b"AOWL");
        assert_eq!(bytes[4], 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_format_logs_replay_as_one_history() {
        let dir = temp_dir("mixed");
        // A pre-binary incarnation seals window 0...
        {
            let wal = Wal::open_with_format(&dir, 8, WalFormat::V1Json).unwrap();
            wal.append(&alert(1)).unwrap();
            wal.boundary(0).unwrap();
        }
        // ...then the upgraded incarnation continues in binary. (Each
        // open starts a fresh segment after the existing ones, so the
        // v1 leftovers are untouched.)
        {
            let wal = Wal::open(&dir, 8).unwrap();
            wal.append(&alert(2)).unwrap();
            wal.boundary(1).unwrap();
            wal.append(&alert(3)).unwrap();
        }
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.torn_records, 0);
        assert_eq!(
            replayed.windows,
            vec![(0, vec![alert(1)]), (1, vec![alert(2)])]
        );
        assert_eq!(replayed.tail, vec![alert(3)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn qoa_checkpoints_ride_the_sealing_boundary() {
        let dir = temp_dir("qoa-state");
        let wal = Wal::open(&dir, 8).unwrap();
        wal.append(&alert(1)).unwrap();
        wal.qoa_state(&[9, 8, 7]).unwrap();
        wal.boundary(0).unwrap();
        wal.append(&alert(2)).unwrap();
        wal.boundary(1).unwrap();
        wal.qoa_state(&[1, 2]).unwrap();
        wal.boundary(2).unwrap();
        // A checkpoint in the open (unsealed) segment is never
        // attributed to a window; it surfaces as the tail checkpoint.
        wal.qoa_state(&[5]).unwrap();

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.torn_records, 0);
        assert_eq!(
            replayed.qoa_states,
            vec![(0, vec![9, 8, 7]), (2, vec![1, 2])]
        );
        assert_eq!(replayed.tail_qoa, Some(vec![5]));
        assert_eq!(replayed.windows.len(), 3);
        assert_eq!(replayed.recovered_alerts, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_logs_skip_qoa_checkpoints() {
        let dir = temp_dir("qoa-v1");
        let wal = Wal::open_with_format(&dir, 8, WalFormat::V1Json).unwrap();
        wal.append(&alert(1)).unwrap();
        wal.qoa_state(&[1, 2, 3]).unwrap();
        wal.boundary(0).unwrap();
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.torn_records, 0, "v1 segment stays well-formed");
        assert_eq!(replayed.windows, vec![(0, vec![alert(1)])]);
        assert!(replayed.qoa_states.is_empty());
        assert_eq!(replayed.tail_qoa, None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_the_rolling_history() {
        let dir = temp_dir("prune");
        let wal = Wal::open(&dir, 2).unwrap();
        for window in 0..5u64 {
            wal.append(&alert(window * 10)).unwrap();
            wal.boundary(window).unwrap();
        }
        assert_eq!(wal.depth().sealed_segments, 2);
        let replayed = replay(&dir).unwrap();
        let indices: Vec<u64> = replayed.windows.iter().map(|(w, _)| *w).collect();
        assert_eq!(indices, vec![3, 4], "only the retained windows remain");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_not_parsed() {
        let dir = temp_dir("torn");
        let wal = Wal::open(&dir, 8).unwrap();
        wal.append(&alert(1)).unwrap();
        wal.boundary(0).unwrap();
        wal.append(&alert(2)).unwrap();
        wal.append(&alert(3)).unwrap();
        drop(wal);
        // Simulate a crash mid-write: chop bytes off the open segment.
        let open = segment_path(&dir, 1);
        let len = fs::metadata(&open).unwrap().len();
        let file = OpenOptions::new().write(true).open(&open).unwrap();
        file.set_len(len - 9).unwrap();

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.windows.len(), 1, "sealed window survives");
        assert_eq!(replayed.tail, vec![alert(2)], "intact tail record survives");
        assert_eq!(replayed.torn_records, 1, "the chopped record is counted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_future_version_is_quarantined_whole() {
        let dir = temp_dir("future");
        fs::create_dir_all(&dir).unwrap();
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.push(WAL_VERSION + 1);
        bytes.extend_from_slice(b"whatever a future format writes");
        fs::write(segment_path(&dir, 0), bytes).unwrap();
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.torn_records, 1);
        assert_eq!(replayed.recovered_alerts, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_after_existing_segments() {
        let dir = temp_dir("reopen");
        {
            let wal = Wal::open(&dir, 8).unwrap();
            wal.append(&alert(1)).unwrap();
            wal.boundary(0).unwrap();
        }
        let wal = Wal::open(&dir, 8).unwrap();
        wal.append(&alert(2)).unwrap();
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.windows.len(), 1);
        assert_eq!(replayed.tail, vec![alert(2)]);
        drop(wal);
        Wal::wipe(&dir).unwrap();
        assert_eq!(replay(&dir).unwrap().recovered_alerts, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
