//! The cluster driver: N in-process `ingestd` nodes behind one
//! range-routing front door, merged into one global governance
//! snapshot per window.
//!
//! # Shape
//!
//! ```text
//!              route(alert)                 close_window()
//!                   │                             │
//!                   ▼                             ▼
//!            ┌─────────────┐   WindowDelta  ┌───────────────┐
//!  WAL ◀──── │  RangeMap    │ ◀──per node───│  coordinator:  │
//!  append    │  node_of(id) │               │  merge_all +   │
//!            └──────┬──────┘                │  from_delta    │
//!                   ▼                       └──────┬────────┘
//!          node 0 .. node N-1                      ▼
//!          (Ingestd daemons,            GovernanceSnapshot
//!           defer_emerging)             (+ single AO-LDA pass)
//! ```
//!
//! Each node is a full [`alertops_ingestd::Ingestd`] daemon over the
//! contiguous strategy range the [`RangeMap`](crate::RangeMap) assigns
//! it. The cluster is the coordinator one level up: it collects each
//! node's [`WindowDelta`] at window close and merges them with the
//! same commutative-monoid merge the daemon uses across shards — so a
//! 4-node cluster, a 1-node cluster, and the batch governor publish
//! byte-identical snapshots over the same stream.
//!
//! # Durability
//!
//! The cluster appends every accepted alert to the owning node's
//! write-ahead log *before* routing it ([`crate::wal`]), and writes the
//! window boundary to each **alive** node's log at close. A killed
//! node's in-memory state is gone, but its log is not: rejoin replays
//! the retained windows through a fresh daemon (rebuilding the rolling
//! detection history), rewrites the log, and restores the in-flight
//! tail as pending work. A node that dies with no live peer is the
//! same story at cluster scale: [`AlertCluster::spawn`] finds the old
//! logs and re-ingests them through the full pipeline before accepting
//! new traffic.
//!
//! Because boundaries are only written to alive nodes, alerts routed
//! to a dead node keep accumulating in its open segment; they are
//! delivered in the first window closed after rejoin. Within one
//! window (kill and rejoin between two closes) this is invisible —
//! snapshots stay byte-identical to the no-fault run. Across a close
//! the affected alerts shift one window later (and the dead node's
//! shards are published in [`GovernanceSnapshot::degraded`]), then the
//! stream reconverges; nothing is dropped or double-counted either
//! way, which the conservation law checks end to end:
//!
//! ```text
//! ingested == delivered + dropped + quarantined + in_flight
//! ```
//!
//! # Caveats (deliberate)
//!
//! - Under [`alertops_ingestd::OverflowPolicy::Drop`], a shed alert is
//!   already journaled (write-ahead), so replay can resurrect it into
//!   the rebuilt detection history — the durable log being *more*
//!   complete than the lossy live run. Clusters that need exact
//!   history equivalence under faults use `Block` (the default).
//! - The emerging (AO-LDA) detector is sequential state owned by the
//!   cluster coordinator; node kill/rejoin never touches it, but a
//!   whole-cluster restart rebuilds it from the retained window
//!   history only (the trade documented in
//!   [`alertops_core::StreamingGovernor::restore`]).
//! - The online QoA model is coordinator state of the same shape, but
//!   it takes the other side of that trade: its checkpoint is
//!   journaled into every alive node's WAL just before each boundary
//!   (`Frame::QoaState`), so a whole-cluster restart restores the
//!   exact weights and EMAs instead of relearning — labels are not
//!   journaled, so the replayed windows could not reproduce them.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use alertops_core::{
    EmergingMode, GovernanceSnapshot, OnlineQoaModel, QoaCheckpoint, QoaMode, StreamingGovernor,
    WindowDelta,
};
use alertops_ingestd::{shard_catalog, Ingestd, IngestdConfig, IngestdHandle};
use alertops_model::{Alert, AlertStrategy, QoaLabel, StrategyId};
use alertops_react::EmergingAlertDetector;
use alertops_wire::{Frame, WireDecoder, WireEncoder};

use crate::metrics::ClusterMetrics;
use crate::range::{node_catalog, RangeMap, StrategyRange};
use crate::wal::{self, Wal, WalFormat};

/// Builds one node's per-shard streaming governor from that shard's
/// sub-catalog. Shared by spawn, rejoin, and handoff respawns.
pub type GovernorFactory = Arc<dyn Fn(&[AlertStrategy]) -> StreamingGovernor + Send + Sync>;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of ingestd nodes. Each owns a contiguous strategy range.
    pub nodes: usize,
    /// Per-node daemon configuration. `tick` must be `None`: window
    /// closes are cluster-coordinated ([`AlertCluster::close_window`]),
    /// never per-node wall clock. `streaming.emerging.mode` expresses
    /// the *cluster's* intent — nodes are forced into the
    /// forward-documents role and the cluster coordinator runs the one
    /// sequential AO-LDA pass. That includes any storm-load token
    /// budget (`streaming.emerging.config.budget`): it is applied once,
    /// by the coordinator, after the cross-node merge, so node count
    /// cannot change the sampled token set. `streaming.qoa.mode` works
    /// the same way: nodes are forced into the forward-samples role
    /// (`defer_qoa`) and the cluster coordinator owns the one
    /// sequential `partial_fit` pass, journaling its checkpoint into
    /// every alive node's WAL at each boundary.
    pub node: IngestdConfig,
    /// Directory holding one WAL subdirectory per node
    /// (`<wal_root>/node-<i>/`). Created if missing; existing logs are
    /// replayed on spawn (lossless restart).
    pub wal_root: PathBuf,
    /// Segment format new WAL appends use (binary by default). Replay
    /// reads both formats regardless, so logs written under either
    /// setting restart losslessly.
    pub wal_format: WalFormat,
}

impl ClusterConfig {
    /// Validates cluster invariants (node count, per-node config, no
    /// per-node tick).
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("a cluster needs at least one node".into());
        }
        if self.node.tick.is_some() {
            return Err("cluster nodes must not tick; closes are cluster-coordinated".into());
        }
        self.node.validate()
    }

    /// Sealed-segment retention per node: one more than the governor's
    /// rolling history depth. Replay needs the *previous* window's full
    /// scope as well as the current one, so that the last re-published
    /// window's new/resolved findings (deltas against that previous
    /// scope) come back byte-identical, not just the end state.
    #[must_use]
    pub fn wal_retain(&self) -> usize {
        self.node.streaming.history_windows.max(1) + 1
    }
}

/// One node slot: its log (always present) and its daemon (absent
/// while killed).
#[derive(Debug)]
struct NodeSlot {
    dir: PathBuf,
    wal: Arc<Wal>,
    handle: Option<IngestdHandle>,
    /// Alerts journaled for this node since its last boundary — the
    /// in-flight window, including alerts routed while dead.
    pending: u64,
    /// The node-internal `dropped` counter at the last close, so each
    /// close surfaces only the new overflow shedding.
    last_dropped: u64,
}

/// The checkpoint a range handoff ships from source to target,
/// serialized through the `alertops-wire` binary frame codec — the
/// protocol is wire-shaped even though both ends live in this
/// process. This is [`alertops_wire::HandoffFrame`] under its
/// cluster-side name.
pub use alertops_wire::HandoffFrame as HandoffShipment;

/// What a completed handoff did, for callers and benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffReport {
    /// The strategy range that moved.
    pub range: StrategyRange,
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Alerts shipped (sealed history plus in-flight tail).
    pub moved_alerts: u64,
    /// End-to-end latency in microseconds (seal, ship, respawn).
    pub micros: u64,
}

/// Point-in-time cluster conservation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Alerts accepted at the cluster edge (quarantined included).
    pub ingested: u64,
    /// Alerts folded into published window closes.
    pub delivered: u64,
    /// Alerts lost: node overflow shedding plus WAL truncation losses.
    pub dropped: u64,
    /// Alerts rejected at the edge (strategy outside the catalog).
    pub quarantined: u64,
    /// Alerts journaled but not yet part of a closed window.
    pub in_flight: u64,
    /// Cluster windows published.
    pub windows_closed: u64,
}

impl ClusterCounters {
    /// The cluster conservation law. Exact at any quiescent point
    /// (route/close calls not mid-flight), including with nodes dead:
    /// a dead node's alerts are `in_flight` until the first close
    /// after its rejoin.
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.ingested == self.delivered + self.dropped + self.quarantined + self.in_flight
    }
}

/// A running cluster. Single-threaded driver: all mutation goes
/// through `&mut self`, which is what makes window closes a true
/// barrier and the merge deterministic.
pub struct AlertCluster {
    config: ClusterConfig,
    catalog: Vec<AlertStrategy>,
    /// Catalog membership for edge quarantine.
    known: std::collections::BTreeSet<u64>,
    map: RangeMap,
    slots: Vec<NodeSlot>,
    make_governor: GovernorFactory,
    /// Next cluster window sequence number.
    seq: u64,
    latest: Option<GovernanceSnapshot>,
    emerging: Option<EmergingAlertDetector>,
    /// The one sequential online-QoA model, when the loop is on.
    /// Checkpointed into every alive node's WAL at each boundary.
    qoa: Option<OnlineQoaModel>,
    metrics: ClusterMetrics,
}

impl std::fmt::Debug for AlertCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlertCluster")
            .field("nodes", &self.config.nodes)
            .field("seq", &self.seq)
            .field("alive", &self.alive_nodes())
            .finish_non_exhaustive()
    }
}

fn spawn_node(
    config: &IngestdConfig,
    node_cat: &[AlertStrategy],
    make_governor: &GovernorFactory,
) -> io::Result<IngestdHandle> {
    let mut config = config.clone();
    // Node role: forward emerging documents up instead of running the
    // sequential pass locally — the cluster coordinator owns it.
    if config.streaming.emerging.mode != EmergingMode::Off {
        config.streaming.emerging.mode = EmergingMode::Forward;
        config.defer_emerging = true;
    }
    // Same for the QoA feedback loop: nodes extract and forward
    // per-strategy samples; the cluster coordinator owns the one
    // sequential model and pushes verdicts back down.
    if config.streaming.qoa.mode != QoaMode::Off {
        config.streaming.qoa.mode = QoaMode::Forward;
        config.defer_qoa = true;
    }
    Ingestd::spawn(&config, |shard, shards| {
        make_governor(&shard_catalog(node_cat, shards, shard))
    })
}

impl AlertCluster {
    /// Starts (or restarts) the cluster over `catalog`. If the WAL
    /// directories under [`ClusterConfig::wal_root`] hold a previous
    /// incarnation's logs, they are replayed through the full pipeline
    /// first — sealed windows are re-ingested and re-published in
    /// order (restoring the latest snapshot, the detection history,
    /// and the window sequence), and in-flight tails come back as
    /// pending work. Restart is lossless with no live peer.
    ///
    /// # Errors
    ///
    /// Config validation surfaces as [`io::ErrorKind::InvalidInput`];
    /// filesystem and spawn errors pass through.
    pub fn spawn(
        config: ClusterConfig,
        catalog: Vec<AlertStrategy>,
        make_governor: GovernorFactory,
    ) -> io::Result<Self> {
        config
            .validate()
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;

        let metrics = ClusterMetrics::new(config.nodes);
        metrics.nodes.set(config.nodes as u64);

        // Recover any previous incarnation's logs before the fresh
        // partition exists: replay routes alerts by the *new* map, so
        // recovery survives topology changes between runs.
        let mut recovered_windows: BTreeMap<u64, Vec<Alert>> = BTreeMap::new();
        let mut recovered_tail: Vec<Alert> = Vec::new();
        // The newest decodable QoA checkpoint across every node's log.
        // Every alive node journals the same bytes at each boundary,
        // but a node killed mid-history carries stale ones — the
        // checkpoint's own absorbed-window count disambiguates.
        let mut recovered_qoa: Option<QoaCheckpoint> = None;
        for node in 0..config.nodes {
            let dir = config.wal_root.join(format!("node-{node}"));
            let replayed = wal::replay(&dir)?;
            metrics.wal_replayed_alerts.add(replayed.recovered_alerts);
            metrics.wal_torn_records.add(replayed.torn_records);
            for (seq, alerts) in replayed.windows {
                recovered_windows.entry(seq).or_default().extend(alerts);
            }
            recovered_tail.extend(replayed.tail);
            for bytes in replayed
                .qoa_states
                .iter()
                .map(|(_, bytes)| bytes)
                .chain(replayed.tail_qoa.iter())
            {
                if let Some(ckpt) = QoaCheckpoint::from_bytes(bytes) {
                    if recovered_qoa
                        .as_ref()
                        .is_none_or(|best| best.windows_absorbed <= ckpt.windows_absorbed)
                    {
                        recovered_qoa = Some(ckpt);
                    }
                }
            }
            Wal::wipe(&dir)?;
        }

        let map = RangeMap::partition(&catalog, config.nodes);
        let known = catalog.iter().map(|s| s.id().0).collect();
        let mut slots = Vec::with_capacity(config.nodes);
        for node in 0..config.nodes {
            let dir = config.wal_root.join(format!("node-{node}"));
            let wal = Arc::new(Wal::open_with_format(
                &dir,
                config.wal_retain(),
                config.wal_format,
            )?);
            let node_cat = node_catalog(&catalog, &map, node);
            let handle = spawn_node(&config.node, &node_cat, &make_governor)?;
            slots.push(NodeSlot {
                dir,
                wal,
                handle: Some(handle),
                pending: 0,
                last_dropped: 0,
            });
        }
        metrics.nodes_alive.set(config.nodes as u64);

        let emerging = (config.node.streaming.emerging.mode != EmergingMode::Off)
            .then(|| EmergingAlertDetector::new(config.node.streaming.emerging.config.clone()));

        let mut cluster = Self {
            config,
            catalog,
            known,
            map,
            slots,
            make_governor,
            seq: 0,
            latest: None,
            emerging,
            // Parked during the replay below: the labels that trained
            // the model were never journaled, so re-closing the
            // retained windows must not relearn from empty ones.
            qoa: None,
            metrics,
        };

        // Re-ingest the recovered stream: each sealed window routes and
        // closes at its original sequence number, so counters, the
        // published snapshot, and per-node boundaries all line up with
        // where the previous incarnation stopped.
        for (seq, mut window) in recovered_windows {
            window.sort_by_key(|a| (a.raised_at(), a.id()));
            cluster.seq = seq;
            for alert in window {
                cluster.route(alert)?;
            }
            cluster.close_window()?;
        }
        recovered_tail.sort_by_key(|a| (a.raised_at(), a.id()));
        for alert in recovered_tail {
            cluster.route(alert)?;
        }

        // Bring the feedback loop back: restore the journaled model
        // (exact weights, not a relearn), push its current verdicts
        // down so the next close is governed identically to an
        // uninterrupted run, and re-journal the checkpoint into each
        // fresh open segment so even a restart before the next close
        // still finds it.
        if cluster.config.node.streaming.qoa.mode != QoaMode::Off {
            let qoa_config = cluster.config.node.streaming.qoa.config;
            let model = recovered_qoa
                .and_then(|ckpt| OnlineQoaModel::from_checkpoint(qoa_config, &ckpt))
                .unwrap_or_else(|| OnlineQoaModel::new(qoa_config));
            let verdicts = model.verdicts();
            let bytes = model.checkpoint().to_bytes();
            for slot in &cluster.slots {
                if let Some(handle) = &slot.handle {
                    handle.push_qoa_verdicts(&verdicts);
                }
                slot.wal.qoa_state(&bytes)?;
            }
            cluster.qoa = Some(model);
        }
        Ok(cluster)
    }

    /// The routing table.
    #[must_use]
    pub fn range_map(&self) -> &RangeMap {
        &self.map
    }

    /// Nodes currently running.
    #[must_use]
    pub fn alive_nodes(&self) -> usize {
        self.slots.iter().filter(|s| s.handle.is_some()).count()
    }

    /// Whether `node` is currently running.
    #[must_use]
    pub fn is_alive(&self, node: usize) -> bool {
        self.slots.get(node).is_some_and(|s| s.handle.is_some())
    }

    /// Routes one alert: quarantines unknown strategies at the edge,
    /// journals the rest to the owning node's WAL (write-ahead), and
    /// hands it to the node's daemon if the node is alive. Routing to
    /// a dead node succeeds — the alert is durable and pending, and is
    /// delivered in the first window closed after the node rejoins.
    ///
    /// # Errors
    ///
    /// A WAL append failure rejects the alert (it was counted
    /// `ingested` and then `dropped`; nothing unaccounted).
    pub fn route(&mut self, alert: Alert) -> io::Result<()> {
        self.metrics.ingested.inc();
        if !self.known.contains(&alert.strategy().0) {
            self.metrics.quarantined.inc();
            return Ok(());
        }
        let node = self.map.node_of(alert.strategy());
        let slot = &mut self.slots[node];
        if let Err(e) = slot.wal.append(&alert) {
            self.metrics.dropped.inc();
            return Err(e);
        }
        slot.pending += 1;
        if let Some(handle) = &slot.handle {
            handle.route(alert);
        }
        Ok(())
    }

    /// Closes the cluster window: every alive node closes and returns
    /// its [`WindowDelta`]; the deltas merge through the commutative
    /// monoid into one [`GovernanceSnapshot`] (the same merge a single
    /// daemon applies across its shards — cluster == 1-node == batch,
    /// byte for byte); the cluster's single AO-LDA pass runs over the
    /// merged window documents; and each alive node's WAL is sealed at
    /// this sequence number. Dead nodes contribute nothing this window
    /// — their shards are listed in the snapshot's `degraded` (flat
    /// `node * shards + shard` encoding) and their journaled alerts
    /// stay in flight.
    ///
    /// # Errors
    ///
    /// WAL boundary failures pass through.
    pub fn close_window(&mut self) -> io::Result<GovernanceSnapshot> {
        self.close_window_labeled(Vec::new())
    }

    /// [`close_window`](Self::close_window) with the window's OCE
    /// feedback labels attached. When the QoA loop is on, the
    /// coordinator joins the labels with the merged per-node feature
    /// samples, runs the one sequential `partial_fit` pass, embeds the
    /// [`alertops_core::QoaWindowReport`] in the snapshot, pushes the
    /// updated verdicts down every alive node (to govern from the
    /// *next* close — the one-window feedback lag that keeps cluster
    /// == 1-node == batch byte-identical), and journals the model
    /// checkpoint into each alive node's sealing WAL segment.
    ///
    /// # Errors
    ///
    /// WAL checkpoint/boundary failures pass through.
    pub fn close_window_labeled(
        &mut self,
        labels: Vec<QoaLabel>,
    ) -> io::Result<GovernanceSnapshot> {
        let seq = self.seq;
        self.seq += 1;
        let shards = self.config.node.shards;

        let mut deltas = Vec::with_capacity(self.slots.len());
        let mut degraded = Vec::new();
        let mut closed_nodes = Vec::with_capacity(self.slots.len());
        for (node, slot) in self.slots.iter_mut().enumerate() {
            let Some(handle) = &slot.handle else {
                degraded.extend((0..shards).map(|s| node * shards + s));
                continue;
            };
            let closed = handle
                .flush_window()
                .expect("node coordinator alive while handle held");
            degraded.extend(closed.snapshot.degraded.iter().map(|s| node * shards + s));
            deltas.push(closed.delta);

            // Surface node-internal overflow shedding since the last
            // close; everything else pending was just delivered.
            let node_dropped = handle.counters().dropped;
            let shed = node_dropped.saturating_sub(slot.last_dropped);
            slot.last_dropped = node_dropped;
            self.metrics.dropped.add(shed);
            closed_nodes.push(node);
        }
        degraded.sort_unstable();

        let merged = WindowDelta::merge_all(&deltas);
        let mut snapshot =
            GovernanceSnapshot::from_delta(&merged, &self.config.node.streaming.storm);
        snapshot.window_index = seq;
        snapshot.degraded = degraded;
        if let Some(detector) = self.emerging.as_mut() {
            snapshot.emerging = Some(detector.observe_docs(&merged.emerging_docs));
        }
        if let Some(model) = self.qoa.as_mut() {
            let report = {
                let _span = self.metrics.qoa.update_timer();
                model.observe_window(&merged.qoa_samples, &labels)
            };
            self.metrics.qoa.record_report(&report);
            let verdicts = model.verdicts();
            let bytes = model.checkpoint().to_bytes();
            for &node in &closed_nodes {
                let slot = &self.slots[node];
                if let Some(handle) = &slot.handle {
                    handle.push_qoa_verdicts(&verdicts);
                }
                // Journaled before the boundary below, so the sealing
                // segment carries the model state as of this close.
                slot.wal.qoa_state(&bytes)?;
            }
            snapshot.qoa = Some(report);
        }

        // Seal every alive node's log at this sequence number.
        for &node in &closed_nodes {
            let slot = &mut self.slots[node];
            slot.wal.boundary(seq)?;
            slot.pending = 0;
        }

        self.metrics.delivered.add(snapshot.alert_count as u64);
        self.metrics.windows_closed.inc();
        if !snapshot.degraded.is_empty() {
            self.metrics.degraded_windows.inc();
        }
        self.latest = Some(snapshot.clone());
        Ok(snapshot)
    }

    /// Kills `node`: its daemon stops and every alert it held in
    /// memory is discarded — the in-process model of `kill -9`. The
    /// node's WAL survives untouched; [`rejoin`](Self::rejoin) brings
    /// the state back from it. No-op if already dead.
    pub fn kill(&mut self, node: usize) {
        if let Some(handle) = self.slots[node].handle.take() {
            handle.shutdown();
            self.metrics.nodes_alive.sub(1);
        }
    }

    /// Rejoins a killed `node`: replays its WAL, rewrites the log, and
    /// respawns the daemon — sealed windows rebuild the rolling
    /// detection history (closes discarded: those windows were already
    /// published and counted), the in-flight tail is re-routed as
    /// pending. If the log was truncated while dead, the unrecoverable
    /// alerts are counted `dropped` so conservation stays exact.
    /// No-op if the node is already running (chaos schedules shuffle
    /// kill/rejoin order freely).
    ///
    /// # Errors
    ///
    /// Replay, WAL, and spawn failures pass through; the node stays
    /// dead on error.
    pub fn rejoin(&mut self, node: usize) -> io::Result<()> {
        if self.slots[node].handle.is_some() {
            return Ok(());
        }
        let replayed = wal::replay(&self.slots[node].dir)?;
        self.metrics
            .wal_replayed_alerts
            .add(replayed.recovered_alerts);
        self.metrics.wal_torn_records.add(replayed.torn_records);

        let node_cat = node_catalog(&self.catalog, &self.map, node);
        let handle = spawn_node(&self.config.node, &node_cat, &self.make_governor)?;
        Wal::wipe(&self.slots[node].dir)?;
        let wal = Arc::new(Wal::open_with_format(
            &self.slots[node].dir,
            self.config.wal_retain(),
            self.config.wal_format,
        )?);

        for (seq, alerts) in &replayed.windows {
            for alert in alerts {
                wal.append(alert)?;
                handle.route(alert.clone());
            }
            let _ = handle.flush_window();
            wal.boundary(*seq)?;
        }
        // A rejoining node governs its next close with the
        // coordinator's current verdicts, exactly like its peers; the
        // fresh log is re-seeded with the model checkpoint so a
        // whole-cluster restart right after this rejoin still finds it.
        if let Some(model) = &self.qoa {
            handle.push_qoa_verdicts(&model.verdicts());
            wal.qoa_state(&model.checkpoint().to_bytes())?;
        }
        // Shedding during history replay re-routes alerts that were
        // already accounted at their original close; don't re-count.
        let slot = &mut self.slots[node];
        slot.last_dropped = handle.counters().dropped;

        for alert in &replayed.tail {
            wal.append(alert)?;
            handle.route(alert.clone());
        }
        let recovered_tail = replayed.tail.len() as u64;
        let lost = slot.pending.saturating_sub(recovered_tail);
        self.metrics.dropped.add(lost);
        slot.pending = recovered_tail;
        slot.wal = wal;
        slot.handle = Some(handle);
        self.metrics.nodes_alive.add(1);
        Ok(())
    }

    /// Hands `range` off to node `to` live: the source seals its state,
    /// ships the range's slice of its rolling checkpoint and in-flight
    /// tail (serialized through the [`HandoffShipment`] wire format),
    /// the routing table is carved, and both ends respawn with their
    /// new catalogs — the source without the range's history, the
    /// target with its own history merged window-by-window with the
    /// shipped one. Mid-stream safe: in-flight alerts for the range
    /// move with it, so the handoff window closes byte-identical to a
    /// run that never rebalanced, with nothing dropped or
    /// double-counted.
    ///
    /// # Errors
    ///
    /// Requires the whole range to be owned by one alive source node
    /// and `to` to be alive ([`io::ErrorKind::InvalidInput`]
    /// otherwise); WAL and spawn errors pass through.
    ///
    /// # Panics
    ///
    /// Panics if the shipped checkpoint fails binary-frame
    /// round-tripping — a codec bug, not an operational state.
    pub fn handoff(&mut self, range: StrategyRange, to: usize) -> io::Result<HandoffReport> {
        let from = self.map.node_of(StrategyId(range.start));
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        if self.map.node_of(StrategyId(range.end)) != from {
            return Err(invalid(format!(
                "range {}..={} spans multiple source nodes",
                range.start, range.end
            )));
        }
        if to >= self.slots.len() {
            return Err(invalid(format!("target node {to} outside cluster")));
        }
        if !self.is_alive(from) || !self.is_alive(to) {
            return Err(invalid(format!(
                "handoff needs both ends alive (source {from}, target {to})"
            )));
        }
        if from == to {
            return Ok(HandoffReport {
                range,
                from,
                to,
                moved_alerts: 0,
                micros: 0,
            });
        }
        let started = Instant::now();

        // Seal both ends: in-memory state is discarded, the WALs are
        // the (complete) truth.
        for node in [from, to] {
            if let Some(handle) = self.slots[node].handle.take() {
                handle.shutdown();
            }
            self.metrics.nodes_alive.sub(1);
        }
        let src = wal::replay(&self.slots[from].dir)?;
        let dst = wal::replay(&self.slots[to].dir)?;
        self.metrics
            .wal_replayed_alerts
            .add(src.recovered_alerts + dst.recovered_alerts);
        self.metrics
            .wal_torn_records
            .add(src.torn_records + dst.torn_records);

        // Split the source by the moving range.
        let in_range = |a: &Alert| range.contains(a.strategy());
        let mut kept_windows = Vec::with_capacity(src.windows.len());
        let mut window_seqs = Vec::with_capacity(src.windows.len());
        let mut moved_windows = Vec::with_capacity(src.windows.len());
        for (seq, alerts) in src.windows {
            let (moved, kept): (Vec<Alert>, Vec<Alert>) = alerts.into_iter().partition(in_range);
            window_seqs.push(seq);
            moved_windows.push(moved);
            kept_windows.push((seq, kept));
        }
        let (moved_tail, kept_tail): (Vec<Alert>, Vec<Alert>) =
            src.tail.into_iter().partition(in_range);

        // Ship the checkpoint through its wire format.
        let shipment = HandoffShipment {
            checkpoint: alertops_core::StreamingCheckpoint {
                start_index: window_seqs.first().copied().unwrap_or(self.seq),
                windows: moved_windows,
            },
            window_seqs,
            tail: moved_tail,
        };
        // A handoff frame carries whole windows, so it is exempt from
        // the ingress frame bound — trust stays with the CRC.
        let wire = WireEncoder::new().encode(&Frame::Handoff(Box::new(shipment)));
        let mut decoder = WireDecoder::with_max_frame_len(usize::MAX);
        let mut frames = decoder.feed(&wire);
        let shipment = match (frames.pop(), frames.is_empty(), decoder.finish()) {
            (Some(Ok(Frame::Handoff(shipment))), true, None) => *shipment,
            other => panic!("shipment round-trips as one handoff frame, got {other:?}"),
        };
        let moved_alerts = shipment.checkpoint.alert_count() as u64 + shipment.tail.len() as u64;

        self.map.reassign(range, to);

        // Respawn the source without the range.
        self.restore_node(from, kept_windows, kept_tail)?;

        // Respawn the target with its history merged window-by-window
        // with the shipment (keyed by sequence number: the two ends may
        // have different retained depths or boundary gaps from past
        // faults).
        let mut merged: BTreeMap<u64, Vec<Alert>> = BTreeMap::new();
        for (seq, alerts) in dst.windows {
            merged.entry(seq).or_default().extend(alerts);
        }
        for (seq, alerts) in shipment.window_seqs.iter().zip(shipment.checkpoint.windows) {
            merged.entry(*seq).or_default().extend(alerts);
        }
        let mut target_windows: Vec<(u64, Vec<Alert>)> = merged.into_iter().collect();
        for (_, alerts) in &mut target_windows {
            alerts.sort_by_key(|a| (a.raised_at(), a.id()));
        }
        let mut target_tail = dst.tail;
        target_tail.extend(shipment.tail);
        target_tail.sort_by_key(|a| (a.raised_at(), a.id()));
        self.restore_node(to, target_windows, target_tail)?;

        // Pending moves with the alerts: total in-flight is conserved,
        // minus anything a truncated log could not give back.
        let pending_before = self.slots[from].pending + self.slots[to].pending;
        let kept_pending = self.restored_pending(from);
        let target_pending = self.restored_pending(to);
        let lost = pending_before.saturating_sub(kept_pending + target_pending);
        self.metrics.dropped.add(lost);
        self.slots[from].pending = kept_pending;
        self.slots[to].pending = target_pending;

        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.handoffs.inc();
        self.metrics.handoff_micros.observe(micros);
        Ok(HandoffReport {
            range,
            from,
            to,
            moved_alerts,
            micros,
        })
    }

    /// Tail length restored for `node` by the last `restore_node` call
    /// (its open-segment depth: everything re-journaled past the last
    /// boundary).
    fn restored_pending(&self, node: usize) -> u64 {
        self.slots[node].wal.depth().pending_records
    }

    /// Respawns `node` from explicit recovered state: re-journals and
    /// re-ingests each sealed window at its original sequence
    /// (publishing nothing — the windows were already published), then
    /// restores `tail` as the in-flight window.
    fn restore_node(
        &mut self,
        node: usize,
        windows: Vec<(u64, Vec<Alert>)>,
        tail: Vec<Alert>,
    ) -> io::Result<()> {
        let node_cat = node_catalog(&self.catalog, &self.map, node);
        let handle = spawn_node(&self.config.node, &node_cat, &self.make_governor)?;
        Wal::wipe(&self.slots[node].dir)?;
        let wal = Arc::new(Wal::open_with_format(
            &self.slots[node].dir,
            self.config.wal_retain(),
            self.config.wal_format,
        )?);
        for (seq, alerts) in &windows {
            for alert in alerts {
                wal.append(alert)?;
                handle.route(alert.clone());
            }
            let _ = handle.flush_window();
            wal.boundary(*seq)?;
        }
        // Same protocol as rejoin: current verdicts down, checkpoint
        // into the fresh log.
        if let Some(model) = &self.qoa {
            handle.push_qoa_verdicts(&model.verdicts());
            wal.qoa_state(&model.checkpoint().to_bytes())?;
        }
        let slot = &mut self.slots[node];
        slot.last_dropped = handle.counters().dropped;
        for alert in &tail {
            wal.append(alert)?;
            handle.route(alert.clone());
        }
        slot.wal = wal;
        slot.handle = Some(handle);
        self.metrics.nodes_alive.add(1);
        Ok(())
    }

    /// Chaos hook: chops `bytes` off the end of `node`'s newest WAL
    /// segment, simulating a torn write or disk corruption. The damage
    /// surfaces at the next replay (rejoin or restart) as torn
    /// records; the lost alerts are counted `dropped` there.
    ///
    /// # Errors
    ///
    /// Filesystem errors pass through; no segment is a no-op.
    pub fn truncate_wal_tail(&mut self, node: usize, bytes: u64) -> io::Result<()> {
        let dir = &self.slots[node].dir;
        let mut newest: Option<PathBuf> = None;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "wal")
                && newest.as_ref().is_none_or(|n| *n < path)
            {
                newest = Some(path);
            }
        }
        let Some(path) = newest else { return Ok(()) };
        let len = std::fs::metadata(&path)?.len();
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(len.saturating_sub(bytes))?;
        Ok(())
    }

    /// The most recently published cluster snapshot.
    #[must_use]
    pub fn latest_snapshot(&self) -> Option<GovernanceSnapshot> {
        self.latest.clone()
    }

    /// FNV-1a digest of the online QoA model (weights, biases, EMAs,
    /// absorbed-window count), or `None` with the loop off. Equal
    /// digests mean bit-identical models — what the restart suite
    /// compares across a shutdown/spawn cycle.
    #[must_use]
    pub fn qoa_model_digest(&self) -> Option<u64> {
        self.qoa.as_ref().map(OnlineQoaModel::digest)
    }

    /// The sequence number the next window close will publish under —
    /// what a feedback oracle should label the in-flight window as.
    /// Starts past any windows recovered from WAL replay at spawn.
    #[must_use]
    pub fn next_window_seq(&self) -> u64 {
        self.seq
    }

    /// Point-in-time conservation counters.
    #[must_use]
    pub fn counters(&self) -> ClusterCounters {
        ClusterCounters {
            ingested: self.metrics.ingested.get(),
            delivered: self.metrics.delivered.get(),
            dropped: self.metrics.dropped.get(),
            quarantined: self.metrics.quarantined.get(),
            in_flight: self.slots.iter().map(|s| s.pending).sum(),
            windows_closed: self.metrics.windows_closed.get(),
        }
    }

    /// The cluster's metric handles.
    #[must_use]
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Renders the `alertops_cluster_*` Prometheus exposition,
    /// refreshing the point-in-time gauges (WAL depth per node,
    /// in-flight total) first.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        for (slot, gauges) in self.slots.iter().zip(&self.metrics.wal) {
            let depth = slot.wal.depth();
            gauges.sealed_segments.set(depth.sealed_segments);
            gauges.pending_records.set(depth.pending_records);
        }
        self.metrics
            .in_flight
            .set(self.slots.iter().map(|s| s.pending).sum());
        self.metrics.render()
    }

    /// Stops every node. The WALs stay on disk; a later
    /// [`spawn`](Self::spawn) over the same `wal_root` restarts
    /// losslessly.
    pub fn shutdown(mut self) {
        for slot in &mut self.slots {
            if let Some(handle) = slot.handle.take() {
                handle.shutdown();
            }
        }
    }
}
