//! Cluster-level observability: topology, WAL depth, handoff latency,
//! and the cluster conservation counters, as one `alertops-obs`
//! registry rendered in Prometheus text exposition.
//!
//! Naming mirrors the daemon's `alertops_ingestd_*` families one level
//! up: every series here is `alertops_cluster_*`. Node-scoped series
//! (WAL depth) carry a `node="<index>"` label so a 4-node cluster
//! scrapes as 4 labelled series per family, not 4 families.

use std::sync::Arc;

use alertops_core::QoaMetrics;
use alertops_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Per-node WAL depth gauges.
#[derive(Debug)]
pub(crate) struct NodeWalGauges {
    pub sealed_segments: Arc<Gauge>,
    pub pending_records: Arc<Gauge>,
}

/// The cluster's metric handles. Everything is an observer: recording
/// never changes routing, merging, or WAL contents.
#[derive(Debug)]
pub struct ClusterMetrics {
    registry: MetricsRegistry,
    /// Configured node count (static topology gauge).
    pub nodes: Arc<Gauge>,
    /// Nodes currently alive (falls on kill, rises on rejoin).
    pub nodes_alive: Arc<Gauge>,
    /// Conservation: alerts accepted by [`crate::AlertCluster::route`]
    /// (including quarantined ones, mirroring the daemon convention).
    pub ingested: Arc<Counter>,
    /// Conservation: alerts folded into a published window close.
    pub delivered: Arc<Counter>,
    /// Conservation: alerts lost for good — node-internal overflow
    /// shedding surfaced at window close, plus WAL truncation losses
    /// discovered at replay.
    pub dropped: Arc<Counter>,
    /// Conservation: alerts rejected at the cluster edge (strategy id
    /// outside the catalog — nothing would ever govern them).
    pub quarantined: Arc<Counter>,
    /// Conservation: alerts routed (and journaled) but not yet part of
    /// a closed window — the in-flight windows across all nodes.
    pub in_flight: Arc<Gauge>,
    /// Cluster windows closed (merged and published).
    pub windows_closed: Arc<Counter>,
    /// Closed windows that carried at least one degraded shard
    /// (including every shard of a dead node).
    pub degraded_windows: Arc<Counter>,
    /// Alerts recovered from WAL replay (sealed windows plus tails).
    pub wal_replayed_alerts: Arc<Counter>,
    /// Torn/corrupt WAL records detected at replay.
    pub wal_torn_records: Arc<Counter>,
    /// Completed range handoffs.
    pub handoffs: Arc<Counter>,
    /// End-to-end handoff latency (seal, ship, respawn both ends), µs.
    pub handoff_micros: Arc<Histogram>,
    /// The coordinator's online-QoA model update, when the feedback
    /// loop is on — the same `alertops_qoa_*` families a local-mode
    /// governor or standalone daemon records into.
    pub qoa: QoaMetrics,
    pub(crate) wal: Vec<NodeWalGauges>,
}

impl ClusterMetrics {
    /// Registers the cluster families for a topology of `nodes` nodes.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        let registry = MetricsRegistry::new();
        let wal = (0..nodes)
            .map(|node| {
                let label = node.to_string();
                NodeWalGauges {
                    sealed_segments: registry.gauge(
                        "alertops_cluster_wal_sealed_segments",
                        "Sealed window segments retained in a node's write-ahead log.",
                        &[("node", &label)],
                    ),
                    pending_records: registry.gauge(
                        "alertops_cluster_wal_pending_records",
                        "Records in a node's open (in-flight window) WAL segment.",
                        &[("node", &label)],
                    ),
                }
            })
            .collect();
        Self {
            nodes: registry.gauge(
                "alertops_cluster_nodes",
                "Configured cluster node count.",
                &[],
            ),
            nodes_alive: registry.gauge(
                "alertops_cluster_nodes_alive",
                "Nodes currently running (kill decrements, rejoin increments).",
                &[],
            ),
            ingested: registry.counter(
                "alertops_cluster_ingested_total",
                "Alerts accepted at the cluster edge (quarantined included).",
                &[],
            ),
            delivered: registry.counter(
                "alertops_cluster_delivered_total",
                "Alerts folded into published cluster window closes.",
                &[],
            ),
            dropped: registry.counter(
                "alertops_cluster_dropped_total",
                "Alerts lost: node overflow shedding plus WAL truncation losses.",
                &[],
            ),
            quarantined: registry.counter(
                "alertops_cluster_quarantined_total",
                "Alerts rejected at the cluster edge (strategy outside the catalog).",
                &[],
            ),
            in_flight: registry.gauge(
                "alertops_cluster_in_flight",
                "Alerts journaled but not yet part of a closed window.",
                &[],
            ),
            windows_closed: registry.counter(
                "alertops_cluster_windows_closed_total",
                "Cluster windows merged and published.",
                &[],
            ),
            degraded_windows: registry.counter(
                "alertops_cluster_degraded_windows_total",
                "Published windows carrying at least one degraded shard.",
                &[],
            ),
            wal_replayed_alerts: registry.counter(
                "alertops_cluster_wal_replayed_alerts_total",
                "Alerts recovered from write-ahead-log replay.",
                &[],
            ),
            wal_torn_records: registry.counter(
                "alertops_cluster_wal_torn_records_total",
                "Torn or corrupt WAL records detected at replay.",
                &[],
            ),
            handoffs: registry.counter(
                "alertops_cluster_handoffs_total",
                "Completed live range handoffs.",
                &[],
            ),
            handoff_micros: registry.histogram(
                "alertops_cluster_handoff_micros",
                "End-to-end range handoff latency in microseconds.",
                &[],
            ),
            qoa: QoaMetrics::register(&registry),
            wal,
            registry,
        }
    }

    /// Renders the Prometheus text exposition of every cluster series.
    /// Callers refresh point-in-time gauges (WAL depth, in-flight)
    /// first; [`crate::AlertCluster::render_metrics`] does.
    #[must_use]
    pub fn render(&self) -> String {
        self.registry.render()
    }
}
