//! A log-linear histogram for latency-style values.
//!
//! Layout (HdrHistogram-coarse): values 0..8 get exact unit buckets;
//! from there every power-of-two octave `[2^k, 2^(k+1))` is split into
//! [`HISTOGRAM_SUB_BUCKETS`] linear sub-buckets. A bucket's width is
//! therefore at most 1/8 of its lower bound, which bounds the relative
//! error of any quantile estimate at **12.5%** — plenty for p50/p95/p99
//! dashboards, at a fixed 496 buckets (≈4 KiB of atomics) per
//! histogram and zero allocation after construction.
//!
//! Recording is two relaxed `fetch_add`s. Reads tear benignly: a
//! snapshot taken mid-record can miss in-flight observations but every
//! cumulative count it renders is internally monotone, which is the
//! property the exposition lint checks.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::span::Span;

/// Linear sub-buckets per power-of-two octave.
pub const HISTOGRAM_SUB_BUCKETS: usize = 8;

/// Total buckets: 8 unit buckets + 61 octaves × 8 sub-buckets.
const NUM_BUCKETS: usize = 8 * 62;

/// Bucket index for a recorded value.
fn bucket_index(value: u64) -> usize {
    if value < 8 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as usize; // >= 3
    let low = ((value >> (octave - 3)) & 0b111) as usize;
    8 * (octave - 2) + low
}

/// Inclusive upper bound of a bucket (the Prometheus `le` value).
fn bucket_upper(index: usize) -> u64 {
    if index < 8 {
        return index as u64;
    }
    let octave = index / 8 + 2;
    let low = (index % 8) as u128;
    let exclusive = (8 + low + 1) << (octave - 3);
    u64::try_from(exclusive - 1).unwrap_or(u64::MAX)
}

/// A concurrent log-linear histogram of `u64` observations
/// (conventionally microseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: Box::new([(); NUM_BUCKETS].map(|()| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Starts a [`Span`] that records its elapsed microseconds here on
    /// drop.
    #[must_use]
    pub fn time(&self) -> Span<'_> {
        Span::new(self)
    }

    /// A point-in-time copy for rendering and quantile estimation.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A consistent-at-read copy of a [`Histogram`]'s buckets.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total observations (the sum of all bucket counts, so it is
    /// always consistent with the rendered cumulative series).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the rank-`ceil(q·count)` observation. Relative
    /// error is bounded by the bucket width, ≤ 12.5%. Returns 0 for an
    /// empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return bucket_upper(index);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// `(upper_bound, cumulative_count)` for every bucket whose count
    /// is non-zero — the series Prometheus `_bucket{le=...}` lines are
    /// rendered from. Cumulative counts are monotone by construction.
    #[must_use]
    pub fn cumulative_nonzero(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            if *count > 0 {
                cumulative += count;
                out.push((bucket_upper(index), cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_ascending() {
        // Every value maps to a bucket whose bounds contain it, and
        // bucket upper bounds strictly ascend.
        let mut last_upper = None;
        for index in 0..NUM_BUCKETS {
            let upper = bucket_upper(index);
            if let Some(last) = last_upper {
                assert!(upper > last, "bucket {index} not ascending");
            }
            last_upper = Some(upper);
        }
        for v in [0u64, 1, 7, 8, 9, 15, 16, 17, 100, 1_000, 123_456_789] {
            let idx = bucket_index(v);
            assert!(v <= bucket_upper(idx), "{v} above its bucket bound");
            if idx > 0 {
                assert!(v > bucket_upper(idx - 1), "{v} below its bucket");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_carry_bounded_relative_error() {
        let h = Histogram::new();
        // A known distribution: 90 fast (100µs), 9 medium (1ms), 1 slow
        // (50ms).
        for _ in 0..90 {
            h.observe(100);
        }
        for _ in 0..9 {
            h.observe(1_000);
        }
        h.observe(50_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.sum(), 90 * 100 + 9 * 1_000 + 50_000);
        for (q, exact) in [(0.5, 100u64), (0.95, 1_000), (0.99, 1_000), (1.0, 50_000)] {
            let estimate = snap.quantile(q);
            assert!(estimate >= exact, "p{q} underestimated: {estimate}");
            #[allow(clippy::cast_precision_loss)]
            let rel = (estimate - exact) as f64 / exact as f64;
            assert!(rel <= 0.125, "p{q} relative error {rel} > 12.5%");
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().snapshot().quantile(0.99), 0);
    }

    #[test]
    fn cumulative_series_is_monotone() {
        let h = Histogram::new();
        for v in [3u64, 3, 64, 1_000_000, 12] {
            h.observe(v);
        }
        let series = h.snapshot().cumulative_nonzero();
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(w[0].0 < w[1].0, "le values ascend");
            assert!(w[0].1 <= w[1].1, "cumulative counts are monotone");
        }
        assert_eq!(series.last().unwrap().1, 5);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.time();
        }
        assert_eq!(h.snapshot().count(), 1);
    }
}
