//! RAII span timer.

use std::time::Instant;

use crate::histogram::Histogram;

/// A scope timer: created by [`Histogram::time`], records the elapsed
/// wall-clock microseconds into its histogram when dropped.
///
/// Spans are observers — they read the clock and bump two atomics, and
/// never influence the code they wrap. Use [`Span::cancel`] to abandon
/// a measurement (e.g. on an error path that should not pollute a
/// latency distribution).
#[derive(Debug)]
pub struct Span<'h> {
    histogram: Option<&'h Histogram>,
    started: Instant,
}

impl<'h> Span<'h> {
    pub(crate) fn new(histogram: &'h Histogram) -> Self {
        Self {
            histogram: Some(histogram),
            started: Instant::now(),
        }
    }

    /// Microseconds elapsed since the span started.
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Drops the span without recording anything.
    pub fn cancel(mut self) {
        self.histogram = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(histogram) = self.histogram {
            histogram.observe(self.elapsed_micros());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancelled_span_records_nothing() {
        let h = Histogram::new();
        h.time().cancel();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn span_observes_elapsed_time() {
        let h = Histogram::new();
        {
            let span = h.time();
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(span.elapsed_micros() >= 2_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert!(snap.sum() >= 2_000);
    }
}
