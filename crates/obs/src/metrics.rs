//! Counters and gauges: one relaxed atomic each.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// All operations use `Ordering::Relaxed`: metrics are statistics, not
/// synchronization, and a relaxed `fetch_add` compiles to a single
/// `lock xadd` — cheap enough for any hot path in this workspace.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Scales a unit-interval score into thousandths for an integer
/// [`Gauge`] (`0.0..=1.0` → `0..=1000`), clamping anything outside
/// the interval (including NaN, which maps to 0). The convention for
/// exposing QoA scores and EMAs — name such gauges `*_milli`.
#[must_use]
pub fn milli(score: f64) -> u64 {
    if score.is_nan() {
        return 0;
    }
    (score.clamp(0.0, 1.0) * 1000.0).round() as u64
}

/// A gauge: a value that can move both ways (queue depth, history
/// size). Stored as `u64` because every gauge in this workspace is a
/// non-negative count; [`Gauge::sub`] saturates at zero rather than
/// wrapping, so a racy decrement can never render as 2^64.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        // fetch_update never fails with a `Some`-returning closure.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn milli_clamps_and_rounds() {
        assert_eq!(milli(0.0), 0);
        assert_eq!(milli(1.0), 1000);
        assert_eq!(milli(0.5), 500);
        assert_eq!(milli(0.0004), 0);
        assert_eq!(milli(0.0006), 1);
        assert_eq!(milli(-3.0), 0);
        assert_eq!(milli(17.0), 1000);
        assert_eq!(milli(f64::NAN), 0);
        assert_eq!(milli(f64::INFINITY), 1000);
    }

    #[test]
    fn gauge_moves_both_ways_and_saturates() {
        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates instead of wrapping");
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
