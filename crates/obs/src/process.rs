//! Process-level resource observation: resident set size.
//!
//! The soak harness's memory gate needs the process's RSS from inside
//! the process, with no external tooling and no new dependencies. On
//! Linux that is one line of `/proc/self/status`; elsewhere the probe
//! degrades to `None` and callers treat the ceiling check as
//! unsupported rather than failing spuriously.
//!
//! Like everything in this crate the probe is an observer: reading it
//! never perturbs the governed outputs, it only costs one small procfs
//! read — cheap enough to sample once per window close.

use std::sync::Arc;

use crate::metrics::Gauge;
use crate::registry::MetricsRegistry;

/// The conventional family name for the process RSS gauge.
pub const RSS_GAUGE_NAME: &str = "alertops_process_rss_bytes";

/// Current resident set size of this process in bytes, or `None` when
/// the platform does not expose `/proc/self/status` (or its `VmRSS:`
/// line is missing/unparseable).
#[must_use]
pub fn rss_bytes() -> Option<u64> {
    parse_vmrss(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Extracts `VmRSS:` (reported in kB) from a `/proc/<pid>/status`
/// document and scales it to bytes.
fn parse_vmrss(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line
        .strip_prefix("VmRSS:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Registers (or fetches) the process-RSS gauge on `registry`.
#[must_use]
pub fn rss_gauge(registry: &MetricsRegistry) -> Arc<Gauge> {
    registry.gauge(
        RSS_GAUGE_NAME,
        "Resident set size of this process in bytes (0 where unsupported).",
        &[],
    )
}

/// Samples the current RSS into `gauge` and returns it. Leaves the
/// gauge untouched (and returns `None`) where the probe is
/// unsupported.
pub fn sample_rss(gauge: &Gauge) -> Option<u64> {
    let rss = rss_bytes()?;
    gauge.set(rss);
    Some(rss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_procfs_status_document() {
        let doc = "Name:\tingestd\nVmPeak:\t  202000 kB\nVmRSS:\t  101376 kB\nThreads:\t9\n";
        assert_eq!(parse_vmrss(doc), Some(101_376 * 1024));
        assert_eq!(parse_vmrss("Name:\tingestd\n"), None);
        assert_eq!(parse_vmrss("VmRSS:\tgarbage kB\n"), None);
    }

    #[test]
    fn live_probe_reports_a_sane_rss_on_linux() {
        let Some(rss) = rss_bytes() else {
            return; // unsupported platform: nothing to assert
        };
        // A running test binary occupies somewhere between 100 KiB and
        // 100 GiB — generous bounds that catch unit mistakes (pages vs
        // kB vs bytes), not environment variance.
        assert!(rss > 100 * 1024, "implausibly small rss: {rss}");
        assert!(rss < 100 * 1024 * 1024 * 1024, "implausibly large: {rss}");
    }

    #[test]
    fn gauge_sampling_publishes_the_probe() {
        let registry = MetricsRegistry::new();
        let gauge = rss_gauge(&registry);
        let sampled = sample_rss(&gauge);
        if let Some(rss) = sampled {
            assert_eq!(gauge.get(), rss);
            let text = registry.render();
            assert!(text.contains(RSS_GAUGE_NAME));
            crate::lint_exposition(&text).unwrap();
        }
    }
}
