//! Metric registration and naming.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::encode;
use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};

/// What a family of series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One labelled series inside a family.
#[derive(Debug)]
pub(crate) struct Series {
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) instrument: Instrument,
}

#[derive(Debug)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// All series sharing one metric name.
#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    pub(crate) series: Vec<Series>,
}

/// Owns metric names, help text, and label sets.
///
/// The registry's mutex is touched only when a metric is registered or
/// the exposition is rendered — instrumented code registers once, caches
/// the returned `Arc` handle, and records through relaxed atomics from
/// then on. Registering the same `(name, labels)` pair again returns the
/// *same* handle, so independent components (e.g. shard workers) that
/// name the same series share one aggregate instrument.
///
/// # Panics
///
/// Registering a name under two different instrument kinds (say, a
/// counter and then a histogram) is a programmer error and panics at
/// registration time, long before any exposition is scraped.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter series.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, MetricKind::Counter, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Registers (or retrieves) a gauge series.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, MetricKind::Gauge, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Registers (or retrieves) a histogram series.
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, help, labels, MetricKind::Histogram, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked during registration"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}"
        );
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            return clone_instrument(&existing.instrument);
        }
        let instrument = make();
        let handle = clone_instrument(&instrument);
        family.series.push(Series { labels, instrument });
        handle
    }

    /// Renders the Prometheus text exposition of every registered
    /// series.
    #[must_use]
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        encode::render_families(&families)
    }
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_instrument() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", "X.", &[("shard", "0")]);
        let b = r.counter("x_total", "X.", &[("shard", "0")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles hit the same atomic");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", "X.", &[("shard", "0")]);
        let b = r.counter("x_total", "X.", &[("shard", "1")]);
        a.inc();
        assert_eq!(b.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as counter and histogram")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        let _c = r.counter("x_total", "X.", &[]);
        let _h = r.histogram("x_total", "X.", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let r = MetricsRegistry::new();
        let _c = r.counter("bad name", "X.", &[]);
    }
}
