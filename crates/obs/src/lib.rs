//! `alertops-obs`: the observability substrate of the workspace.
//!
//! The paper's whole argument is that alerting signals must be
//! *governed*; this crate makes the governing system itself observable.
//! It is deliberately tiny and `std`-only:
//!
//! - [`Counter`] / [`Gauge`] — relaxed-ordering atomics. One
//!   `fetch_add` on the hot path, nothing else.
//! - [`Histogram`] — a log-linear latency histogram (every power of two
//!   split into 8 linear sub-buckets, so quantile estimates carry a
//!   bounded ≤ 12.5% relative error). Recording is two relaxed
//!   `fetch_add`s; no locks, no allocation.
//! - [`Span`] — an RAII timer that records its elapsed microseconds
//!   into a histogram on drop.
//! - [`MetricsRegistry`] — names, help text, and label sets live here,
//!   behind a mutex that is touched only at registration and render
//!   time, never on the hot path. Handles are `Arc`s the instrumented
//!   code caches.
//! - [`render`](MetricsRegistry::render) — Prometheus text exposition
//!   (`# HELP` / `# TYPE`, cumulative `_bucket{le=...}` series), plus
//!   [`lint_exposition`] so CI can prove the output well-formed.
//!
//! Everything here is an *observer*: recording into a metric never
//! changes control flow, takes a lock on a data path, or perturbs the
//! deterministic outputs of the system it watches. The workspace's
//! chaos-determinism suite runs with metrics on and off and asserts
//! byte-identical governance snapshots either way.
//!
//! # Example
//!
//! ```
//! use alertops_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let ingested = registry.counter("demo_ingested_total", "Frames ingested.", &[]);
//! let latency = registry.histogram("demo_close_micros", "Window close latency.", &[]);
//! ingested.inc();
//! {
//!     let _span = latency.time(); // records on drop
//! }
//! let text = registry.render();
//! assert!(text.contains("# TYPE demo_ingested_total counter"));
//! assert!(text.contains("demo_ingested_total 1"));
//! assert!(alertops_obs::lint_exposition(&text).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod encode;
mod histogram;
mod metrics;
pub mod process;
mod registry;
mod span;

pub use encode::{lint_exposition, render_sample};
pub use histogram::{Histogram, HistogramSnapshot, HISTOGRAM_SUB_BUCKETS};
pub use metrics::{milli, Counter, Gauge};
pub use registry::MetricsRegistry;
pub use span::Span;
