//! Prometheus text-format exposition: rendering and a structural lint.
//!
//! The renderer emits the subset of the text format this workspace
//! needs: `# HELP` / `# TYPE` headers, integer-valued samples, and
//! cumulative histogram series (`_bucket{le=...}` + `_sum` + `_count`).
//! The lint re-parses that output and proves the structural properties
//! CI cares about: headers present, no duplicate series, bucket
//! cumulative counts monotone, and `_count` equal to the `+Inf` bucket.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

use crate::registry::{Family, Instrument};

/// Formats one exposition sample line (no trailing newline).
///
/// This is the same formatter the registry renderer uses; components
/// that expose pre-existing atomic counters (e.g. the ingestd
/// conservation counters) call it so their hand-rendered lines are
/// byte-compatible with registry output.
#[must_use]
pub fn render_sample(name: &str, labels: &[(&str, &str)], value: u64) -> String {
    let mut line = String::with_capacity(name.len() + 24);
    line.push_str(name);
    push_labels(&mut line, labels.iter().map(|(k, v)| (*k, *v)));
    let _ = write!(line, " {value}");
    line
}

fn push_labels<'a>(out: &mut String, labels: impl Iterator<Item = (&'a str, &'a str)>) {
    let mut first = true;
    for (key, value) in labels {
        out.push(if first { '{' } else { ',' });
        first = false;
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    if !first {
        out.push('}');
    }
}

fn labels_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut out = String::new();
    push_labels(
        &mut out,
        labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(std::iter::once(("le", le))),
    );
    out
}

/// Renders every family in registration (BTreeMap = lexicographic)
/// order.
pub(crate) fn render_families(families: &BTreeMap<String, Family>) -> String {
    let mut out = String::new();
    for (name, family) in families {
        let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
        let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
        for series in &family.series {
            let labels: Vec<(&str, &str)> = series
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match &series.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{}", render_sample(name, &labels, c.get()));
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{}", render_sample(name, &labels, g.get()));
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let count = snap.count();
                    for (upper, cumulative) in snap.cumulative_nonzero() {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            labels_with_le(&series.labels, &upper.to_string())
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {count}",
                        labels_with_le(&series.labels, "+Inf")
                    );
                    let _ = writeln!(
                        out,
                        "{}",
                        render_sample(&format!("{name}_sum"), &labels, snap.sum())
                    );
                    let _ = writeln!(
                        out,
                        "{}",
                        render_sample(&format!("{name}_count"), &labels, count)
                    );
                }
            }
        }
    }
    out
}

/// Structural lint for an exposition document produced by this crate
/// (or anything emitting the same subset of the text format).
///
/// Checks, in order of severity:
/// 1. every `# TYPE` name is declared at most once, with a known kind;
/// 2. every sample's base name has both `# TYPE` and `# HELP`;
/// 3. no series (name + label set) appears twice;
/// 4. per histogram series, `le` bounds strictly ascend, cumulative
///    bucket counts are monotone non-decreasing, and the `+Inf` bucket
///    equals the `_count` sample.
///
/// # Errors
///
/// Returns the first violation found, described with its line.
pub fn lint_exposition(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // histogram series key -> (last le, last cumulative, inf count)
    let mut buckets: HashMap<String, (Option<f64>, u64, Option<u64>)> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default().to_string();
            let kind = parts.next().unwrap_or_default().to_string();
            if !matches!(kind.as_str(), "counter" | "gauge" | "histogram") {
                return Err(format!("unknown type {kind:?} in {line:?}"));
            }
            if types.insert(name.clone(), kind).is_some() {
                return Err(format!("duplicate # TYPE for {name:?}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default().to_string();
            if !helps.insert(name.clone()) {
                return Err(format!("duplicate # HELP for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal
        }

        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample {line:?}"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("non-integer value in {line:?}"))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unclosed labels in {line:?}"))?;
                (name, labels)
            }
            None => (series, ""),
        };
        if !seen_series.insert(series.to_string()) {
            return Err(format!("duplicate series {series:?}"));
        }

        // Resolve the family name: histogram samples carry suffixes.
        let (family, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                name.strip_suffix(s).and_then(|base| {
                    (types.get(base).map(String::as_str) == Some("histogram")).then_some((base, *s))
                })
            })
            .unwrap_or((name, ""));
        let kind = types
            .get(family)
            .ok_or_else(|| format!("sample {name:?} has no # TYPE"))?;
        if !helps.contains(family) {
            return Err(format!("sample {name:?} has no # HELP"));
        }
        if (kind == "histogram") == suffix.is_empty() {
            return Err(format!("sample {name:?} inconsistent with type {kind}"));
        }

        if suffix == "_bucket" {
            let mut le = None;
            let mut rest_labels: Vec<&str> = Vec::new();
            for part in labels.split(',') {
                match part.strip_prefix("le=\"") {
                    Some(v) => le = Some(v.trim_end_matches('"').to_string()),
                    None => rest_labels.push(part),
                }
            }
            let le = le.ok_or_else(|| format!("bucket without le in {line:?}"))?;
            let key = format!("{family}{{{}}}", rest_labels.join(","));
            let entry = buckets.entry(key.clone()).or_insert((None, 0, None));
            if le == "+Inf" {
                if entry.2.replace(value).is_some() {
                    return Err(format!("duplicate +Inf bucket for {key:?}"));
                }
            } else {
                let bound: f64 = le
                    .parse()
                    .map_err(|_| format!("bad le {le:?} in {line:?}"))?;
                if entry.2.is_some() {
                    return Err(format!("bucket after +Inf for {key:?}"));
                }
                if let Some(prev) = entry.0 {
                    if bound <= prev {
                        return Err(format!("le bounds not ascending for {key:?}"));
                    }
                }
                entry.0 = Some(bound);
            }
            if value < entry.1 {
                return Err(format!("bucket counts not monotone for {key:?}"));
            }
            entry.1 = value;
        } else if suffix == "_count" {
            let key = format!("{family}{{{labels}}}");
            counts.insert(key, value);
        }
    }

    for (key, (_, _, inf)) in &buckets {
        let inf = inf.ok_or_else(|| format!("histogram {key:?} missing +Inf bucket"))?;
        let count = counts
            .get(key)
            .ok_or_else(|| format!("histogram {key:?} missing _count"))?;
        if inf != *count {
            return Err(format!(
                "histogram {key:?}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn render_sample_formats_labels_and_escapes() {
        assert_eq!(render_sample("x_total", &[], 7), "x_total 7");
        assert_eq!(
            render_sample("x_total", &[("reason", "over\"sized\"")], 1),
            "x_total{reason=\"over\\\"sized\\\"\"} 1"
        );
    }

    #[test]
    fn registry_render_passes_lint() {
        let r = MetricsRegistry::new();
        let c = r.counter("demo_total", "Demo counter.", &[("shard", "0")]);
        c.add(3);
        let g = r.gauge("demo_depth", "Demo gauge.", &[]);
        g.set(9);
        let h = r.histogram("demo_micros", "Demo histogram.", &[]);
        for v in [5u64, 100, 100, 9_000] {
            h.observe(v);
        }
        let empty = r.histogram("demo_idle_micros", "Never observed.", &[]);
        let _ = empty; // registered-but-empty histograms must still lint
        let text = r.render();
        assert!(text.contains("# TYPE demo_total counter"));
        assert!(text.contains("# TYPE demo_micros histogram"));
        assert!(text.contains("demo_micros_count 4"));
        assert!(text.contains("le=\"+Inf\"} 4"));
        lint_exposition(&text).unwrap();
    }

    #[test]
    fn lint_rejects_duplicate_series() {
        let text = "# HELP x_total X.\n# TYPE x_total counter\nx_total 1\nx_total 2\n";
        assert!(lint_exposition(text)
            .unwrap_err()
            .contains("duplicate series"));
    }

    #[test]
    fn lint_rejects_missing_headers() {
        assert!(lint_exposition("x_total 1\n")
            .unwrap_err()
            .contains("no # TYPE"));
        let no_help = "# TYPE x_total counter\nx_total 1\n";
        assert!(lint_exposition(no_help).unwrap_err().contains("no # HELP"));
    }

    #[test]
    fn lint_rejects_non_monotone_buckets() {
        let text = concat!(
            "# HELP h_micros H.\n",
            "# TYPE h_micros histogram\n",
            "h_micros_bucket{le=\"10\"} 5\n",
            "h_micros_bucket{le=\"20\"} 3\n",
            "h_micros_bucket{le=\"+Inf\"} 5\n",
            "h_micros_sum 50\n",
            "h_micros_count 5\n",
        );
        assert!(lint_exposition(text).unwrap_err().contains("not monotone"));
    }

    #[test]
    fn lint_rejects_count_inf_mismatch() {
        let text = concat!(
            "# HELP h_micros H.\n",
            "# TYPE h_micros histogram\n",
            "h_micros_bucket{le=\"+Inf\"} 5\n",
            "h_micros_sum 50\n",
            "h_micros_count 4\n",
        );
        assert!(lint_exposition(text).unwrap_err().contains("!= _count"));
    }
}
