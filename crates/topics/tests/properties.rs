//! Property-based tests over the topic-model substrate.

use proptest::prelude::*;

use alertops_topics::math::{digamma, dirichlet_expectation, js_divergence, normalize_in_place};
use alertops_topics::{LdaConfig, OnlineLda};

proptest! {
    #[test]
    fn digamma_is_monotone_increasing(x in 0.01f64..50.0, delta in 0.01f64..5.0) {
        prop_assert!(digamma(x + delta) > digamma(x));
    }

    #[test]
    fn digamma_recurrence(x in 0.05f64..100.0) {
        prop_assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-8);
    }

    #[test]
    fn dirichlet_expectation_components_nonpositive(
        gamma in prop::collection::vec(0.01f64..100.0, 1..20),
    ) {
        // E[log θ_k] ≤ 0 always; strictly negative once K ≥ 2 (for K = 1
        // the distribution is the constant θ = 1, so E[log θ] = 0).
        for e in dirichlet_expectation(&gamma) {
            prop_assert!(e <= 1e-12);
            if gamma.len() >= 2 {
                prop_assert!(e < 0.0);
            }
        }
    }

    #[test]
    fn normalize_produces_distribution(
        v in prop::collection::vec(0.0f64..100.0, 1..20),
    ) {
        let mut v = v;
        let had_mass = v.iter().sum::<f64>() > 0.0;
        normalize_in_place(&mut v);
        if had_mass {
            prop_assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn js_divergence_symmetric_and_bounded(
        p in prop::collection::vec(0.001f64..1.0, 4),
        q in prop::collection::vec(0.001f64..1.0, 4),
    ) {
        let mut p = p;
        let mut q = q;
        normalize_in_place(&mut p);
        normalize_in_place(&mut q);
        let pq = js_divergence(&p, &q);
        let qp = js_divergence(&q, &p);
        prop_assert!((pq - qp).abs() < 1e-9);
        prop_assert!((0.0..=2.0f64.ln() + 1e-9).contains(&pq));
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn lda_topics_are_distributions_after_any_batch(
        docs in prop::collection::vec(
            prop::collection::vec((0usize..12, 1u32..4), 1..6),
            1..8,
        ),
        seed in 0u64..100,
    ) {
        // Deduplicate ids within each doc (BagOfWords contract).
        let docs: Vec<Vec<(usize, u32)>> = docs
            .into_iter()
            .map(|d| {
                let mut m = std::collections::BTreeMap::new();
                for (id, c) in d {
                    *m.entry(id).or_insert(0) += c;
                }
                m.into_iter().collect()
            })
            .collect();
        let mut lda = OnlineLda::new(LdaConfig {
            num_topics: 3,
            vocab_size: 12,
            seed,
            ..LdaConfig::default()
        });
        lda.update_batch(&docs);
        for row in lda.topics() {
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "topic sums to {}", sum);
            prop_assert!(row.iter().all(|&p| p >= 0.0));
        }
        // Inference also yields a distribution.
        let theta = lda.infer(&docs[0]);
        prop_assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }
}
