//! Property-based tests over the topic-model substrate.
//!
//! The `sparse_*` properties are the differential wall around the sparse
//! AO-LDA kernel: every one compares the production [`OnlineLda`] against
//! the verbatim pre-rewrite dense implementation
//! ([`DenseOnlineLda`]) and asserts **bit-identical** results — `==` on
//! `f64`s, no tolerance — because the streaming/offline and shard/cluster
//! differentials downstream compare serialized bytes.

use proptest::prelude::*;

use alertops_topics::dense::DenseOnlineLda;
use alertops_topics::math::{
    digamma, dirichlet_expectation, dirichlet_expectation_sparse, js_divergence,
    js_divergence_prepared, neg_entropy, normalize_in_place, DigammaCache,
};
use alertops_topics::{LdaConfig, LdaWorkspace, OnlineLda};

/// Deduplicates word ids within each doc (the `BagOfWords` contract).
fn to_bows(docs: Vec<Vec<(usize, u32)>>) -> Vec<Vec<(usize, u32)>> {
    docs.into_iter()
        .map(|d| {
            let mut m = std::collections::BTreeMap::new();
            for (id, c) in d {
                *m.entry(id).or_insert(0) += c;
            }
            m.into_iter().collect()
        })
        .collect()
}

/// A corpus strategy with some out-of-vocab ids mixed in (vocab is 12).
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<(usize, u32)>>> {
    prop::collection::vec(prop::collection::vec((0usize..15, 1u32..4), 1..7), 1..10)
        .prop_map(to_bows)
}

proptest! {
    #[test]
    fn digamma_is_monotone_increasing(x in 0.01f64..50.0, delta in 0.01f64..5.0) {
        prop_assert!(digamma(x + delta) > digamma(x));
    }

    #[test]
    fn digamma_recurrence(x in 0.05f64..100.0) {
        prop_assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-8);
    }

    #[test]
    fn dirichlet_expectation_components_nonpositive(
        gamma in prop::collection::vec(0.01f64..100.0, 1..20),
    ) {
        // E[log θ_k] ≤ 0 always; strictly negative once K ≥ 2 (for K = 1
        // the distribution is the constant θ = 1, so E[log θ] = 0).
        for e in dirichlet_expectation(&gamma) {
            prop_assert!(e <= 1e-12);
            if gamma.len() >= 2 {
                prop_assert!(e < 0.0);
            }
        }
    }

    #[test]
    fn normalize_produces_distribution(
        v in prop::collection::vec(0.0f64..100.0, 1..20),
    ) {
        let mut v = v;
        let had_mass = v.iter().sum::<f64>() > 0.0;
        normalize_in_place(&mut v);
        if had_mass {
            prop_assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn js_divergence_symmetric_and_bounded(
        p in prop::collection::vec(0.001f64..1.0, 4),
        q in prop::collection::vec(0.001f64..1.0, 4),
    ) {
        let mut p = p;
        let mut q = q;
        normalize_in_place(&mut p);
        normalize_in_place(&mut q);
        let pq = js_divergence(&p, &q);
        let qp = js_divergence(&q, &p);
        prop_assert!((pq - qp).abs() < 1e-9);
        prop_assert!((0.0..=2.0f64.ln() + 1e-9).contains(&pq));
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn lda_topics_are_distributions_after_any_batch(
        docs in prop::collection::vec(
            prop::collection::vec((0usize..12, 1u32..4), 1..6),
            1..8,
        ),
        seed in 0u64..100,
    ) {
        // Deduplicate ids within each doc (BagOfWords contract).
        let docs: Vec<Vec<(usize, u32)>> = docs
            .into_iter()
            .map(|d| {
                let mut m = std::collections::BTreeMap::new();
                for (id, c) in d {
                    *m.entry(id).or_insert(0) += c;
                }
                m.into_iter().collect()
            })
            .collect();
        let mut lda = OnlineLda::new(LdaConfig {
            num_topics: 3,
            vocab_size: 12,
            seed,
            ..LdaConfig::default()
        });
        lda.update_batch(&docs);
        for row in lda.topics() {
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "topic sums to {}", sum);
            prop_assert!(row.iter().all(|&p| p >= 0.0));
        }
        // Inference also yields a distribution.
        let theta = lda.infer(&docs[0]);
        prop_assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    /// The tentpole guarantee: the sparse kernel's λ trajectory is
    /// bit-identical to the dense sweep's across seeded corpora and
    /// multiple sequential updates, with a shared workspace in play the
    /// whole time (duplicate docs exercise the per-batch memo, ids ≥ 12
    /// the out-of-vocab path).
    #[test]
    fn sparse_update_batch_is_bit_identical_to_dense(
        corpus in corpus_strategy(),
        seed in 0u64..50,
        updates in 1usize..6,
    ) {
        let config = LdaConfig {
            num_topics: 3,
            vocab_size: 12,
            seed,
            ..LdaConfig::default()
        };
        let mut sparse = OnlineLda::new(config.clone());
        let mut dense = DenseOnlineLda::new(config);
        prop_assert_eq!(sparse.lambda(), dense.lambda(), "seeded init diverged");
        let mut ws = LdaWorkspace::new();
        for round in 0..updates {
            let sb = sparse.update_batch_with(&corpus, &mut ws);
            let db = dense.update_batch(&corpus);
            prop_assert_eq!(
                sb.to_bits(), db.to_bits(),
                "bound diverged at round {}: {} vs {}", round, sb, db
            );
            prop_assert_eq!(sparse.lambda(), dense.lambda(), "λ diverged at round {}", round);
        }
        prop_assert_eq!(sparse.topics(), dense.topics());
    }

    /// Inference and scoring agree bitwise with the dense oracle, via
    /// both the per-doc and the batched (β-sharing, memoizing) paths.
    #[test]
    fn sparse_infer_and_score_match_dense(
        corpus in corpus_strategy(),
        seed in 0u64..50,
    ) {
        let config = LdaConfig {
            num_topics: 3,
            vocab_size: 12,
            seed,
            ..LdaConfig::default()
        };
        let mut sparse = OnlineLda::new(config.clone());
        let mut dense = DenseOnlineLda::new(config);
        let mut ws = LdaWorkspace::new();
        sparse.update_batch_with(&corpus, &mut ws);
        dense.update_batch(&corpus);

        let batched = sparse.infer_batch_with(&corpus, &mut ws);
        for (doc, via_batch) in corpus.iter().zip(&batched) {
            let d = dense.infer(doc);
            prop_assert_eq!(&sparse.infer(doc), &d, "infer diverged");
            prop_assert_eq!(&sparse.infer_with(doc, &mut ws), &d, "infer_with diverged");
            prop_assert_eq!(via_batch, &d, "infer_batch_with diverged");
        }
        let ss = sparse.score_with(&corpus, &mut ws);
        let ds = dense.score(&corpus);
        prop_assert_eq!(ss.to_bits(), ds.to_bits(), "score diverged: {} vs {}", ss, ds);
    }

    /// The grow-vocab path: η-padding a λ snapshot (what
    /// `AdaptiveOnlineLda::grow_vocab` does to history) and seeding a
    /// wider model via `set_lambda`, then updating with docs that reach
    /// the new columns, stays bit-identical to the dense oracle given the
    /// same padded prior.
    #[test]
    fn sparse_grow_vocab_then_update_matches_dense(
        corpus_small in corpus_strategy(),
        corpus_wide in corpus_strategy(),
        seed in 0u64..50,
    ) {
        let small = LdaConfig {
            num_topics: 3,
            vocab_size: 12,
            seed,
            ..LdaConfig::default()
        };
        let mut narrow = OnlineLda::new(small.clone());
        narrow.update_batch(&corpus_small);

        // Widen the learned λ with the η padding growth uses.
        let wide_config = LdaConfig { vocab_size: 20, ..small };
        let padded: Vec<Vec<f64>> = narrow
            .lambda()
            .iter()
            .map(|row| {
                let mut r = row.clone();
                r.resize(20, wide_config.eta);
                r
            })
            .collect();

        let mut sparse = OnlineLda::new(wide_config.clone());
        let mut dense = DenseOnlineLda::new(wide_config);
        sparse.set_lambda(padded.clone());
        dense.set_lambda(padded);
        prop_assert_eq!(sparse.lambda(), dense.lambda());

        // Shift some ids up so the new columns 12..20 are exercised.
        let wide_docs: Vec<Vec<(usize, u32)>> = corpus_wide
            .iter()
            .map(|d| d.iter().map(|&(id, c)| (id + 8, c)).collect())
            .collect();
        let mut ws = LdaWorkspace::new();
        sparse.update_batch_with(&wide_docs, &mut ws);
        dense.update_batch(&wide_docs);
        prop_assert_eq!(sparse.lambda(), dense.lambda(), "post-growth λ diverged");
        for doc in &wide_docs {
            prop_assert_eq!(sparse.infer(doc), dense.infer(doc));
        }
    }

    /// The window-fit fast path — warm-started passes, bound early exit,
    /// folded inference — is bit-identical to the dense oracle across
    /// pass budgets and tolerances. The window gets a duplicated doc
    /// (exercising the shared warm init) and an empty doc (the uniform
    /// mixture edge), and both sides must agree on the λ trajectory, the
    /// mixtures, *and* how many passes the early exit actually ran.
    #[test]
    fn sparse_fit_window_is_bit_identical_to_dense(
        corpus in corpus_strategy(),
        seed in 0u64..50,
        passes in 1usize..8,
        tol_exp in 0i32..4, // 0 disables the early exit, else 1e-tol_exp
    ) {
        let pass_tol = if tol_exp == 0 { 0.0 } else { 10f64.powi(-tol_exp) };
        let config = LdaConfig {
            num_topics: 3,
            vocab_size: 12,
            seed,
            ..LdaConfig::default()
        };
        let mut docs = corpus.clone();
        docs.push(corpus[0].clone());
        docs.push(Vec::new());

        let mut sparse = OnlineLda::new(config.clone());
        let mut dense = DenseOnlineLda::new(config);
        let mut ws = LdaWorkspace::new();
        let sm = sparse.fit_window_with(&docs, passes, pass_tol, &mut ws);
        let dm = dense.fit_window(&docs, passes, pass_tol);
        prop_assert_eq!(
            sparse.updates(), dense.updates(),
            "early exit stopped after different pass counts"
        );
        prop_assert_eq!(&sm, &dm, "window mixtures diverged");
        prop_assert_eq!(sparse.lambda(), dense.lambda(), "post-window λ diverged");

        // A second window through the same workspace: the warm memo must
        // reset cleanly, so back-to-back fits stay on the oracle too.
        let second: Vec<Vec<(usize, u32)>> = docs
            .iter()
            .map(|d| d.iter().map(|&(id, c)| ((id + 3) % 14, c)).collect())
            .collect();
        let second = to_bows(second);
        let sm2 = sparse.fit_window_with(&second, passes, pass_tol, &mut ws);
        let dm2 = dense.fit_window(&second, passes, pass_tol);
        prop_assert_eq!(sparse.updates(), dense.updates());
        prop_assert_eq!(&sm2, &dm2, "second-window mixtures diverged");
        prop_assert_eq!(sparse.lambda(), dense.lambda());
    }

    /// Growing the vocabulary (η-padded λ via `set_lambda`, what
    /// `AdaptiveOnlineLda::grow_vocab` does) and then running the sparse
    /// window fit over docs that reach the new columns stays on the
    /// dense oracle bit-for-bit.
    #[test]
    fn sparse_grow_vocab_then_fit_window_matches_dense(
        corpus_small in corpus_strategy(),
        corpus_wide in corpus_strategy(),
        seed in 0u64..50,
        passes in 1usize..6,
    ) {
        let small = LdaConfig {
            num_topics: 3,
            vocab_size: 12,
            seed,
            ..LdaConfig::default()
        };
        let mut narrow = OnlineLda::new(small.clone());
        narrow.update_batch(&corpus_small);

        let wide_config = LdaConfig { vocab_size: 20, ..small };
        let padded: Vec<Vec<f64>> = narrow
            .lambda()
            .iter()
            .map(|row| {
                let mut r = row.clone();
                r.resize(20, wide_config.eta);
                r
            })
            .collect();
        let mut sparse = OnlineLda::new(wide_config.clone());
        let mut dense = DenseOnlineLda::new(wide_config);
        sparse.set_lambda(padded.clone());
        dense.set_lambda(padded);

        let wide_docs: Vec<Vec<(usize, u32)>> = corpus_wide
            .iter()
            .map(|d| d.iter().map(|&(id, c)| (id + 8, c)).collect())
            .collect();
        let mut ws = LdaWorkspace::new();
        let sm = sparse.fit_window_with(&wide_docs, passes, 1e-2, &mut ws);
        let dm = dense.fit_window(&wide_docs, passes, 1e-2);
        prop_assert_eq!(sparse.updates(), dense.updates());
        prop_assert_eq!(&sm, &dm, "post-growth window mixtures diverged");
        prop_assert_eq!(sparse.lambda(), dense.lambda(), "post-growth λ diverged");
    }

    /// The prepared (entropy-hoisted) JS form agrees with the plain form
    /// to round-off everywhere the emergence scan uses it, zero-padded
    /// columns included.
    #[test]
    fn js_prepared_agrees_with_plain(
        p in prop::collection::vec(0.0f64..1.0, 8),
        q in prop::collection::vec(0.0f64..1.0, 8),
        pad in 0usize..4,
    ) {
        let mut p = p;
        let mut q = q;
        normalize_in_place(&mut p);
        normalize_in_place(&mut q);
        // Vocabulary growth pads history topics with zero columns.
        p.resize(p.len() + pad, 0.0);
        q.resize(q.len() + pad, 0.0);
        let plain = js_divergence(&p, &q);
        let prepared = js_divergence_prepared(&p, neg_entropy(&p), &q, neg_entropy(&q));
        prop_assert!(
            (plain - prepared).abs() < 1e-9,
            "prepared {} vs plain {}", prepared, plain
        );
    }

    /// The digamma memo is exact: any eval sequence returns the same bits
    /// as the uncached function, hits and misses alike.
    #[test]
    fn cached_digamma_is_bit_identical(
        xs in prop::collection::vec(0.001f64..500.0, 1..40),
        repeat in 1usize..4,
    ) {
        let mut cache = DigammaCache::new();
        for _ in 0..repeat {
            for &x in &xs {
                prop_assert_eq!(cache.eval(x).to_bits(), digamma(x).to_bits());
            }
        }
    }

    /// The batched sparse Dirichlet expectation equals the dense
    /// per-row sweep on the cells it touches.
    #[test]
    fn sparse_dirichlet_expectation_matches_dense(
        row in prop::collection::vec(0.01f64..50.0, 4..24),
        picks in prop::collection::vec(0usize..24, 1..12),
    ) {
        let mut ids: Vec<usize> = picks.into_iter().filter(|&i| i < row.len()).collect();
        if ids.is_empty() {
            ids.push(0); // row.len() >= 4, so id 0 always exists
        }
        let row_sum: f64 = row.iter().sum();
        let dense: Vec<f64> = dirichlet_expectation(&row).iter().map(|e| e.exp()).collect();
        let mut out = Vec::new();
        dirichlet_expectation_sparse(&row, row_sum, &ids, &mut out);
        for (slot, &id) in ids.iter().enumerate() {
            prop_assert_eq!(out[slot].to_bits(), dense[id].to_bits());
        }
    }
}
