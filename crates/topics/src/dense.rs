//! The dense reference implementation of online variational-Bayes LDA.
//!
//! This is a verbatim preservation of the pre-sparse kernel: every float
//! operation (order included) is exactly what `OnlineLda` computed before
//! the sparse rewrite. It exists so the differential property tests in
//! `tests/properties.rs` can assert that the sparse kernel in
//! [`crate::lda`] is **bit-identical** — same λ, same inferred mixtures,
//! same scores — across seeded corpora. It is not meant for production
//! use: every update pays dense `[topics × vocab]` digamma sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use alertops_text::BagOfWords;

use crate::lda::WarmGamma;
use crate::math::{digamma, dirichlet_expectation, normalize_in_place};
use crate::LdaConfig;

/// Dense online variational-Bayes LDA — the differential oracle for
/// [`crate::OnlineLda`]. Same public surface, same semantics, kept
/// deliberately unoptimized.
#[derive(Debug, Clone)]
pub struct DenseOnlineLda {
    config: LdaConfig,
    /// Variational parameter λ, K×W.
    lambda: Vec<Vec<f64>>,
    /// exp(E[log β]), K×W, kept in sync with λ.
    exp_elog_beta: Vec<Vec<f64>>,
    /// Number of minibatch updates applied so far.
    updates: u64,
    /// Number of documents seen so far.
    docs_seen: usize,
}

impl DenseOnlineLda {
    /// Creates a model with λ initialized from a seeded gamma-like
    /// distribution, byte-for-byte the same RNG sequence as
    /// [`crate::OnlineLda::new`].
    ///
    /// # Panics
    ///
    /// Panics if `num_topics` or `vocab_size` is zero, or if `kappa` is
    /// outside `(0.5, 1.0]`.
    #[must_use]
    pub fn new(config: LdaConfig) -> Self {
        assert!(config.num_topics > 0, "num_topics must be positive");
        assert!(config.vocab_size > 0, "vocab_size must be positive");
        assert!(
            config.kappa > 0.5 && config.kappa <= 1.0,
            "kappa must lie in (0.5, 1] for convergence, got {}",
            config.kappa
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let lambda: Vec<Vec<f64>> = (0..config.num_topics)
            .map(|_| {
                (0..config.vocab_size)
                    .map(|_| 100.0 / config.vocab_size as f64 * rng.gen_range(0.5..1.5))
                    .collect()
            })
            .collect();
        let exp_elog_beta = lambda.iter().map(|row| exp_dirichlet_row(row)).collect();
        Self {
            config,
            lambda,
            exp_elog_beta,
            updates: 0,
            docs_seen: 0,
        }
    }

    /// The configuration this model was built with.
    #[must_use]
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// The number of minibatch updates applied.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The current learning rate ρ_t = (τ₀ + t)^{−κ}.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        (self.config.tau0 + self.updates as f64).powf(-self.config.kappa)
    }

    /// Applies one online update from a minibatch of documents; the dense
    /// original of [`crate::OnlineLda::update_batch`].
    pub fn update_batch(&mut self, batch: &[BagOfWords]) -> f64 {
        self.update_pass(batch, None)
    }

    /// One online update, optionally warm-started from `warm`; the dense
    /// original of the sparse kernel's private `update_pass`. The memo is
    /// read-only while the batch runs and refreshed after the document
    /// loop, so duplicate documents see the same init — the same
    /// discipline the sparse side follows, making the two bit-identical.
    fn update_pass(&mut self, batch: &[BagOfWords], mut warm: Option<&mut WarmGamma>) -> f64 {
        let nonempty: Vec<&BagOfWords> = batch.iter().filter(|d| !d.is_empty()).collect();
        if nonempty.is_empty() {
            return 0.0;
        }
        let k = self.config.num_topics;
        let w = self.config.vocab_size;
        let mut sstats = vec![vec![0.0; w]; k];
        let mut bound = 0.0;
        let mut word_total = 0u64;
        let mut converged: Vec<(&BagOfWords, Vec<f64>)> = Vec::new();

        for doc in &nonempty {
            let init = warm
                .as_deref()
                .and_then(|m| m.get(doc.as_slice()))
                .map(Vec::as_slice);
            let (gamma, phi_contrib) = self.e_step(doc, init);
            // Accumulate sufficient statistics: sstats[k][w] += phi_kw * n_w.
            for (slot, &(id, count)) in phi_contrib.iter().zip(doc.iter()) {
                if id >= w {
                    continue;
                }
                for (topic, &p) in slot.iter().enumerate() {
                    sstats[topic][id] += p * f64::from(count);
                }
            }
            bound += self.doc_log_likelihood(doc, &gamma);
            word_total += doc.iter().map(|&(_, c)| u64::from(c)).sum::<u64>();
            if warm.is_some() {
                converged.push((*doc, gamma));
            }
        }

        // End-of-pass write-back. Duplicate occurrences converged to the
        // same bits (same init, same β), so writing each is identical to
        // the sparse side's one-write-per-distinct-document.
        if let Some(m) = warm.as_mut() {
            for (doc, gamma) in converged {
                match m.get_mut(doc.as_slice()) {
                    Some(slot) => slot.clone_from(&gamma),
                    None => {
                        m.insert((*doc).clone(), gamma);
                    }
                }
            }
        }

        // M-step: blend λ toward the batch estimate with step ρ.
        let rho = self.learning_rate();
        self.docs_seen += nonempty.len();
        let d = self.config.corpus_size.unwrap_or(self.docs_seen) as f64;
        let scale = d / nonempty.len() as f64;
        for (lam_row, ss_row) in self.lambda.iter_mut().zip(&sstats) {
            for (lam, &ss) in lam_row.iter_mut().zip(ss_row) {
                *lam = (1.0 - rho) * *lam + rho * (self.config.eta + scale * ss);
            }
        }
        for (beta_row, lam_row) in self.exp_elog_beta.iter_mut().zip(&self.lambda) {
            *beta_row = exp_dirichlet_row(lam_row);
        }
        self.updates += 1;
        if word_total == 0 {
            0.0
        } else {
            bound / word_total as f64
        }
    }

    /// Infers the topic mixture θ of a document against the current
    /// topics; the dense original of [`crate::OnlineLda::infer`].
    #[must_use]
    pub fn infer(&self, doc: &BagOfWords) -> Vec<f64> {
        let k = self.config.num_topics;
        if doc.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let (mut gamma, _) = self.e_step(doc, None);
        normalize_in_place(&mut gamma);
        gamma
    }

    /// Fits one window: up to `passes` updates over `docs` with warm-started
    /// γ and a relative-bound early exit, returning the final pass's
    /// normalized γ per document; the dense original of
    /// [`crate::OnlineLda::fit_window_with`]. Same memo discipline (fresh
    /// per window; read during a pass, written back after it) and the same
    /// exit rule on the bitwise-equal bound sequence, so the two stop
    /// after the same pass and return the same mixture bits.
    pub fn fit_window(
        &mut self,
        docs: &[BagOfWords],
        passes: usize,
        pass_tol: f64,
    ) -> Vec<Vec<f64>> {
        let mut memo = WarmGamma::default();
        let warm = &mut memo;
        let mut prev: Option<f64> = None;
        for _ in 0..passes.max(1) {
            let bound = self.update_pass(docs, Some(warm));
            if let Some(p) = prev {
                if pass_tol > 0.0 && (bound - p).abs() <= pass_tol * p.abs() {
                    break;
                }
            }
            prev = Some(bound);
        }

        // After the last pass's write-back the memo holds every
        // non-empty document's final converged γ.
        let k = self.config.num_topics;
        docs.iter()
            .map(|doc| {
                if doc.is_empty() {
                    vec![1.0 / k as f64; k]
                } else {
                    let mut mixture = warm[doc.as_slice()].clone();
                    normalize_in_place(&mut mixture);
                    mixture
                }
            })
            .collect()
    }

    /// The current topic-word distributions (normalized λ rows).
    #[must_use]
    pub fn topics(&self) -> Vec<Vec<f64>> {
        self.lambda
            .iter()
            .map(|row| {
                let mut r = row.clone();
                normalize_in_place(&mut r);
                r
            })
            .collect()
    }

    /// The `n` highest-probability word ids of topic `topic`.
    ///
    /// # Panics
    ///
    /// Panics if `topic >= num_topics`.
    #[must_use]
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let row = &self.lambda[topic];
        let mut ids: Vec<usize> = (0..row.len()).collect();
        ids.sort_unstable_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
        ids.truncate(n);
        ids
    }

    /// Per-word log likelihood of `corpus` under the current model; the
    /// dense original of [`crate::OnlineLda::score`].
    #[must_use]
    pub fn score(&self, corpus: &[BagOfWords]) -> f64 {
        let mut total = 0.0;
        let mut words = 0u64;
        for doc in corpus.iter().filter(|d| !d.is_empty()) {
            let (gamma, _) = self.e_step(doc, None);
            total += self.doc_log_likelihood(doc, &gamma);
            words += doc.iter().map(|&(_, c)| u64::from(c)).sum::<u64>();
        }
        if words == 0 {
            0.0
        } else {
            total / words as f64
        }
    }

    /// Variational E-step for one document, starting γ from `init` (the
    /// warm-start memo) or the cold `α + 1`. Returns the converged γ and,
    /// per word position, the topic responsibilities φ.
    fn e_step(&self, doc: &BagOfWords, init: Option<&[f64]>) -> (Vec<f64>, Vec<Vec<f64>>) {
        let k = self.config.num_topics;
        let mut gamma = match init {
            Some(g) => g.to_vec(),
            None => vec![self.config.alpha + 1.0; k],
        };
        let mut exp_elog_theta: Vec<f64> = dirichlet_expectation(&gamma)
            .into_iter()
            .map(f64::exp)
            .collect();

        let ids: Vec<usize> = doc.iter().map(|&(id, _)| id).collect();
        let counts: Vec<f64> = doc.iter().map(|&(_, c)| f64::from(c)).collect();

        let phinorm = |theta: &[f64]| -> Vec<f64> {
            ids.iter()
                .map(|&id| {
                    let mut s = 1e-100;
                    if id < self.config.vocab_size {
                        for (topic, t) in theta.iter().enumerate() {
                            s += t * self.exp_elog_beta[topic][id];
                        }
                    }
                    s
                })
                .collect()
        };
        let mut norms = phinorm(&exp_elog_theta);

        for _ in 0..self.config.max_e_steps {
            let last_gamma = gamma.clone();
            for (topic, g) in gamma.iter_mut().enumerate() {
                let mut dot = 0.0;
                for ((&id, &count), &norm) in ids.iter().zip(&counts).zip(&norms) {
                    if id < self.config.vocab_size {
                        dot += count / norm * self.exp_elog_beta[topic][id];
                    }
                }
                *g = self.config.alpha + exp_elog_theta[topic] * dot;
            }
            exp_elog_theta = dirichlet_expectation(&gamma)
                .into_iter()
                .map(f64::exp)
                .collect();
            norms = phinorm(&exp_elog_theta);
            let mean_change: f64 = gamma
                .iter()
                .zip(&last_gamma)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / k as f64;
            if mean_change < self.config.e_step_tol {
                break;
            }
        }

        // Final responsibilities φ for sufficient statistics.
        let phi: Vec<Vec<f64>> = ids
            .iter()
            .zip(&norms)
            .map(|(&id, &norm)| {
                (0..k)
                    .map(|topic| {
                        if id < self.config.vocab_size {
                            exp_elog_theta[topic] * self.exp_elog_beta[topic][id] / norm
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        (gamma, phi)
    }

    /// log p(doc | θ̂, β̂) with θ̂ the normalized γ and β̂ the normalized λ.
    fn doc_log_likelihood(&self, doc: &BagOfWords, gamma: &[f64]) -> f64 {
        let mut theta = gamma.to_vec();
        normalize_in_place(&mut theta);
        let lambda_sums: Vec<f64> = self.lambda.iter().map(|r| r.iter().sum()).collect();
        doc.iter()
            .filter(|&&(id, _)| id < self.config.vocab_size)
            .map(|&(id, count)| {
                let p_word: f64 = theta
                    .iter()
                    .enumerate()
                    .map(|(topic, &t)| t * self.lambda[topic][id] / lambda_sums[topic])
                    .sum();
                f64::from(count) * p_word.max(1e-300).ln()
            })
            .sum()
    }

    /// Direct access to the unnormalized variational parameter λ.
    #[must_use]
    pub fn lambda(&self) -> &[Vec<f64>] {
        &self.lambda
    }

    /// Replaces λ wholesale (dimensions must match) and refreshes the
    /// cached `exp(E[log β])`.
    ///
    /// # Panics
    ///
    /// Panics if the shape of `lambda` is not K×W or any entry is not
    /// strictly positive.
    pub fn set_lambda(&mut self, lambda: Vec<Vec<f64>>) {
        assert_eq!(lambda.len(), self.config.num_topics, "lambda row count");
        for row in &lambda {
            assert_eq!(row.len(), self.config.vocab_size, "lambda column count");
            assert!(
                row.iter().all(|&x| x > 0.0),
                "lambda entries must be positive"
            );
        }
        self.exp_elog_beta = lambda.iter().map(|row| exp_dirichlet_row(row)).collect();
        self.lambda = lambda;
    }
}

/// exp(ψ(λ_w) − ψ(Σλ)) for one row.
fn exp_dirichlet_row(row: &[f64]) -> Vec<f64> {
    let total: f64 = row.iter().sum();
    let psi_total = digamma(total);
    row.iter()
        .map(|&x| (digamma(x) - psi_total).exp())
        .collect()
}
