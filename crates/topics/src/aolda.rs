//! Adaptive online LDA (AOLDA) over time windows.
//!
//! The paper's emerging-alert detection (R4) cites the AOLDA approach of
//! its references [30], [31]: alerts are bucketed into consecutive time
//! windows; each window gets its own topic model whose *prior* is adapted
//! from the topics of the preceding windows, so stable alert themes keep
//! their identity across windows while genuinely new themes — *emerging*
//! ones — stand out as topics with no historical counterpart.
//!
//! Emergence is quantified per topic as the minimum Jensen–Shannon
//! divergence to any topic of the recent history: high divergence ⇒ no
//! historical counterpart ⇒ emerging.

use serde::{Deserialize, Serialize};

use alertops_text::BagOfWords;

use crate::lda::{LdaConfig, LdaWorkspace, OnlineLda};
use crate::math::{js_divergence_prepared, neg_entropy};

/// Configuration for [`AdaptiveOnlineLda`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AoldaConfig {
    /// Base LDA configuration (topics, vocabulary, priors, seed).
    pub lda: LdaConfig,
    /// Weight of historical topics when seeding a window's prior, in
    /// `[0, 1)`. `0` disables adaptation (plain per-window LDA).
    pub adaptation_weight: f64,
    /// How many previous windows feed the adaptive prior and the
    /// emergence baseline.
    pub history: usize,
    /// Full passes over the window's documents when fitting its model.
    pub passes_per_window: usize,
    /// Relative tolerance for the per-window pass loop's early exit:
    /// after pass `p ≥ 2`, fitting stops once the variational bound
    /// satisfies `|b_p − b_{p−1}| ≤ pass_tol · |b_{p−1}|` — the window
    /// has converged and further passes would only re-derive the same λ.
    /// Measured on our alert workloads the bound's per-pass delta decays
    /// geometrically, so the default of `1e-2` keeps topics visually and
    /// behaviourally indistinguishable from running all
    /// [`passes_per_window`](Self::passes_per_window) passes while
    /// cutting the typical window to roughly three passes out of the
    /// configured fifteen-plus. Tighten toward `1e-3` (≈ 4–5 passes) if
    /// a corpus shows bound oscillation; set `0.0` (or negative) to
    /// always run every pass.
    pub pass_tol: f64,
    /// Minimum weight a historical topic needs to serve as an emergence
    /// baseline. Topics that never described real documents (weight ≈ 0)
    /// are spread-out junk whose moderate divergence to everything would
    /// otherwise mask genuinely new themes.
    pub min_baseline_weight: f64,
    /// JS-divergence threshold above which a topic counts as emerging
    /// (bounded by ln 2 ≈ 0.693). The default of 0.25 separates re-learned
    /// stable themes (novelty ≲ 0.05 with adaptation on) from genuinely
    /// new vocabulary (novelty ≳ 0.3 in our alert workloads).
    pub emerging_threshold: f64,
}

impl Default for AoldaConfig {
    fn default() -> Self {
        Self {
            lda: LdaConfig::default(),
            adaptation_weight: 0.5,
            history: 3,
            passes_per_window: 20,
            pass_tol: 1e-2,
            min_baseline_weight: 0.05,
            emerging_threshold: 0.25,
        }
    }
}

/// One topic of one window, with its emergence assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowTopic {
    /// Topic index within the window's model.
    pub topic: usize,
    /// The topic-word probability distribution (length W).
    pub distribution: Vec<f64>,
    /// Minimum JS divergence to any topic of the history windows;
    /// `0.0` for the first window (no baseline).
    pub novelty: f64,
    /// Whether `novelty` exceeded the emerging threshold.
    pub emerging: bool,
    /// The topic's share of the window's document mass, in `[0, 1]`.
    pub weight: f64,
}

/// The fitted summary of one time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicWindow {
    /// Zero-based window index.
    pub index: usize,
    /// Number of (non-empty) documents in the window.
    pub doc_count: usize,
    /// Per-topic summaries.
    pub topics: Vec<WindowTopic>,
    /// Per-document topic mixtures, parallel to the input slice.
    pub doc_mixtures: Vec<Vec<f64>>,
}

impl TopicWindow {
    /// Indices of documents whose dominant topic is emerging — the
    /// "emerging alerts" R4 surfaces to OCEs.
    #[must_use]
    pub fn emerging_doc_indices(&self) -> Vec<usize> {
        let emerging: Vec<usize> = self
            .topics
            .iter()
            .filter(|t| t.emerging)
            .map(|t| t.topic)
            .collect();
        if emerging.is_empty() {
            return Vec::new();
        }
        self.doc_mixtures
            .iter()
            .enumerate()
            .filter(|(_, mixture)| {
                let dominant = mixture
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i);
                dominant.is_some_and(|d| emerging.contains(&d))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The emerging topics of this window.
    #[must_use]
    pub fn emerging_topics(&self) -> Vec<&WindowTopic> {
        self.topics.iter().filter(|t| t.emerging).collect()
    }
}

/// Adaptive online LDA over a stream of time windows.
///
/// # Example
///
/// ```
/// use alertops_topics::{AdaptiveOnlineLda, AoldaConfig, LdaConfig};
///
/// let mut aolda = AdaptiveOnlineLda::new(AoldaConfig {
///     lda: LdaConfig { num_topics: 2, vocab_size: 6, ..LdaConfig::default() },
///     ..AoldaConfig::default()
/// });
/// let window0 = vec![vec![(0, 2), (1, 1)], vec![(0, 1), (2, 2)]];
/// let summary = aolda.process_window(&window0);
/// assert_eq!(summary.index, 0);
/// assert_eq!(summary.topics.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveOnlineLda {
    config: AoldaConfig,
    /// Recent window summaries, newest last, bounded by
    /// [`history`](AoldaConfig::history) — older windows can no longer
    /// influence the adaptive prior or the emergence baseline, so a
    /// long-running stream does not accumulate them.
    windows: Vec<TopicWindow>,
    /// Unnormalized λ snapshots of recent windows, newest last.
    lambda_history: Vec<Vec<Vec<f64>>>,
    /// Total windows ever processed (not bounded by retention).
    windows_processed: usize,
    /// Scratch buffers reused across windows; carries no model state
    /// (see [`LdaWorkspace`]), so cloning or replacing it never changes
    /// results.
    workspace: LdaWorkspace,
}

impl AdaptiveOnlineLda {
    /// Creates an AOLDA pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `adaptation_weight` is outside `[0, 1)` or
    /// `emerging_threshold` is not positive.
    #[must_use]
    pub fn new(config: AoldaConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.adaptation_weight),
            "adaptation_weight must lie in [0, 1)"
        );
        assert!(
            config.emerging_threshold > 0.0,
            "emerging_threshold must be positive"
        );
        Self {
            config,
            windows: Vec::new(),
            lambda_history: Vec::new(),
            windows_processed: 0,
            workspace: LdaWorkspace::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AoldaConfig {
        &self.config
    }

    /// The retained recent windows (at most
    /// [`history`](AoldaConfig::history) of them), oldest first.
    #[must_use]
    pub fn windows(&self) -> &[TopicWindow] {
        &self.windows
    }

    /// Total windows processed since construction, including windows
    /// that have aged out of the retained history.
    #[must_use]
    pub fn windows_processed(&self) -> usize {
        self.windows_processed
    }

    /// Grows the model's vocabulary to `vocab_size` words mid-stream.
    ///
    /// Word ids must be stable-growth (new words only ever *append* ids
    /// — [`alertops_text::Vocabulary`] guarantees this), so growth is a
    /// pure widening: historical λ snapshots are padded with the
    /// topic-word prior η (the mass a never-seen word would have
    /// carried), and retained topic distributions are padded with zero
    /// probability. A subsequent window whose topics concentrate on the
    /// new columns therefore diverges sharply from every baseline —
    /// exactly the "new vocabulary ⇒ emerging" signal R4 wants.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size` is smaller than the current vocabulary —
    /// shrinking would invalidate issued word ids.
    pub fn grow_vocab(&mut self, vocab_size: usize) {
        let current = self.config.lda.vocab_size;
        assert!(
            vocab_size >= current,
            "vocab_size may only grow ({current} -> {vocab_size})"
        );
        if vocab_size == current {
            return;
        }
        let eta = self.config.lda.eta;
        for lambda in &mut self.lambda_history {
            for row in lambda.iter_mut() {
                row.resize(vocab_size, eta);
            }
        }
        for window in &mut self.windows {
            for topic in &mut window.topics {
                topic.distribution.resize(vocab_size, 0.0);
            }
        }
        self.config.lda.vocab_size = vocab_size;
    }

    /// Fits the next window over `docs` and returns its summary.
    ///
    /// The window's model is seeded from a blend of a fresh prior and the
    /// mean λ of the last [`history`](AoldaConfig::history) windows,
    /// weighted by [`adaptation_weight`](AoldaConfig::adaptation_weight).
    pub fn process_window(&mut self, docs: &[BagOfWords]) -> &TopicWindow {
        let window_index = self.windows_processed;
        let lda_config = LdaConfig {
            corpus_size: Some(docs.len().max(1)),
            // Vary the seed per window so non-adapted topics don't line up
            // by construction; determinism is preserved.
            seed: self.config.lda.seed.wrapping_add(window_index as u64),
            ..self.config.lda.clone()
        };
        let mut model = OnlineLda::new(lda_config);

        // Adaptive prior: blend fresh λ with historical mean λ.
        let w = self.config.adaptation_weight;
        if w > 0.0 && !self.lambda_history.is_empty() {
            let hist: Vec<&Vec<Vec<f64>>> = self
                .lambda_history
                .iter()
                .rev()
                .take(self.config.history)
                .collect();
            let fresh = model.lambda().to_vec();
            let blended: Vec<Vec<f64>> = fresh
                .iter()
                .enumerate()
                .map(|(k, fresh_row)| {
                    fresh_row
                        .iter()
                        .enumerate()
                        .map(|(word, &f)| {
                            let h: f64 = hist.iter().map(|lam| lam[k][word]).sum::<f64>()
                                / hist.len() as f64;
                            (1.0 - w) * f + w * h
                        })
                        .collect()
                })
                .collect();
            model.set_lambda(blended);
        }

        let doc_mixtures: Vec<Vec<f64>> = model.fit_window_with(
            docs,
            self.config.passes_per_window,
            self.config.pass_tol,
            &mut self.workspace,
        );
        let topics_dist = model.topics();
        let k = topics_dist.len();

        // Topic weights: average share of document mass.
        let mut weights = vec![0.0; k];
        for mixture in &doc_mixtures {
            for (slot, &p) in weights.iter_mut().zip(mixture) {
                *slot += p;
            }
        }
        let denom = doc_mixtures.len().max(1) as f64;
        for slot in &mut weights {
            *slot /= denom;
        }

        // Emergence: min JS divergence against history topics. Each
        // distribution's Σp·ln p term is pair-independent, so it is
        // computed once here instead of inside every pair.
        let baseline: Vec<(&Vec<f64>, f64)> = self
            .windows
            .iter()
            .rev()
            .take(self.config.history)
            .flat_map(|win| {
                win.topics
                    .iter()
                    .filter(|t| t.weight >= self.config.min_baseline_weight)
                    .map(|t| (&t.distribution, neg_entropy(&t.distribution)))
            })
            .collect();
        let topics: Vec<WindowTopic> = topics_dist
            .into_iter()
            .enumerate()
            .map(|(topic, distribution)| {
                let novelty = if baseline.is_empty() {
                    0.0
                } else {
                    let plogp = neg_entropy(&distribution);
                    baseline
                        .iter()
                        .map(|&(b, b_plogp)| {
                            js_divergence_prepared(&distribution, plogp, b, b_plogp)
                        })
                        .fold(f64::INFINITY, f64::min)
                };
                WindowTopic {
                    topic,
                    // A topic must both lack a historical counterpart AND
                    // actually describe documents in this window; junk
                    // topics (weight ≈ 0) are never "emerging".
                    emerging: !baseline.is_empty()
                        && novelty > self.config.emerging_threshold
                        && weights[topic] >= self.config.min_baseline_weight,
                    novelty,
                    distribution,
                    weight: weights[topic],
                }
            })
            .collect();

        self.lambda_history.push(model.lambda().to_vec());
        if self.lambda_history.len() > self.config.history {
            let excess = self.lambda_history.len() - self.config.history;
            self.lambda_history.drain(..excess);
        }
        self.windows.push(TopicWindow {
            index: window_index,
            doc_count: docs.iter().filter(|d| !d.is_empty()).count(),
            topics,
            doc_mixtures,
        });
        let retain = self.config.history.max(1);
        if self.windows.len() > retain {
            let excess = self.windows.len() - retain;
            self.windows.drain(..excess);
        }
        self.windows_processed += 1;
        self.windows.last().expect("window just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Docs about "storage" (ids 0..3).
    fn storage_docs(n: usize) -> Vec<BagOfWords> {
        (0..n).map(|i| vec![(i % 4, 2), ((i + 1) % 4, 1)]).collect()
    }

    /// Docs about a brand-new theme (ids 8..11).
    fn novel_docs(n: usize) -> Vec<BagOfWords> {
        (0..n)
            .map(|i| vec![(8 + i % 4, 2), (8 + (i + 1) % 4, 1)])
            .collect()
    }

    fn config(k: usize) -> AoldaConfig {
        AoldaConfig {
            lda: LdaConfig {
                num_topics: k,
                vocab_size: 12,
                ..LdaConfig::default()
            },
            passes_per_window: 25,
            ..AoldaConfig::default()
        }
    }

    #[test]
    fn first_window_is_never_emerging() {
        let mut aolda = AdaptiveOnlineLda::new(config(2));
        let win = aolda.process_window(&storage_docs(10));
        assert!(win.topics.iter().all(|t| !t.emerging));
        assert!(win.topics.iter().all(|t| t.novelty == 0.0));
        assert!(win.emerging_doc_indices().is_empty());
    }

    #[test]
    fn stable_theme_stays_non_emerging() {
        let mut aolda = AdaptiveOnlineLda::new(config(2));
        aolda.process_window(&storage_docs(10));
        let win = aolda.process_window(&storage_docs(10));
        // Same theme again: topics should find close historical
        // counterparts.
        assert!(
            win.topics.iter().all(|t| !t.emerging),
            "stable window flagged emerging: {:?}",
            win.topics.iter().map(|t| t.novelty).collect::<Vec<_>>()
        );
    }

    #[test]
    fn novel_theme_is_flagged_emerging() {
        let mut aolda = AdaptiveOnlineLda::new(config(2));
        aolda.process_window(&storage_docs(10));
        aolda.process_window(&storage_docs(10));
        // Third window: half old theme, half brand-new vocabulary.
        let mut docs = storage_docs(6);
        docs.extend(novel_docs(6));
        let win = aolda.process_window(&docs);
        assert!(
            win.topics.iter().any(|t| t.emerging),
            "novel theme not flagged: novelties {:?}",
            win.topics.iter().map(|t| t.novelty).collect::<Vec<_>>()
        );
        // The emerging docs should be (mostly) the novel ones (indices 6..).
        let emerging_docs = win.emerging_doc_indices();
        assert!(!emerging_docs.is_empty());
        let novel_hits = emerging_docs.iter().filter(|&&i| i >= 6).count();
        assert!(
            novel_hits * 2 >= emerging_docs.len(),
            "emerging docs mostly stale: {emerging_docs:?}"
        );
    }

    #[test]
    fn topic_weights_sum_to_one_per_window() {
        let mut aolda = AdaptiveOnlineLda::new(config(3));
        let win = aolda.process_window(&storage_docs(8));
        let total: f64 = win.topics.iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-6, "weights sum to {total}");
    }

    #[test]
    fn window_indices_increment() {
        let mut aolda = AdaptiveOnlineLda::new(config(2));
        for i in 0..3 {
            let win = aolda.process_window(&storage_docs(4));
            assert_eq!(win.index, i);
        }
        assert_eq!(aolda.windows().len(), 3);
    }

    #[test]
    fn lambda_history_is_bounded() {
        let mut aolda = AdaptiveOnlineLda::new(AoldaConfig {
            history: 2,
            ..config(2)
        });
        for _ in 0..5 {
            aolda.process_window(&storage_docs(4));
        }
        assert!(aolda.lambda_history.len() <= 2);
    }

    #[test]
    fn zero_adaptation_weight_is_allowed() {
        let mut aolda = AdaptiveOnlineLda::new(AoldaConfig {
            adaptation_weight: 0.0,
            ..config(2)
        });
        aolda.process_window(&storage_docs(4));
        aolda.process_window(&storage_docs(4));
        assert_eq!(aolda.windows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "adaptation_weight")]
    fn rejects_adaptation_weight_of_one() {
        let _ = AdaptiveOnlineLda::new(AoldaConfig {
            adaptation_weight: 1.0,
            ..config(2)
        });
    }

    #[test]
    fn empty_window_is_handled() {
        let mut aolda = AdaptiveOnlineLda::new(config(2));
        let win = aolda.process_window(&[]);
        assert_eq!(win.doc_count, 0);
        assert_eq!(win.doc_mixtures.len(), 0);
    }

    #[test]
    fn windows_retention_is_bounded_but_indices_keep_counting() {
        let mut aolda = AdaptiveOnlineLda::new(AoldaConfig {
            history: 2,
            ..config(2)
        });
        for i in 0..5 {
            let win = aolda.process_window(&storage_docs(4));
            assert_eq!(win.index, i, "index counts all windows ever processed");
        }
        assert_eq!(aolda.windows_processed(), 5);
        assert!(aolda.windows().len() <= 2);
        assert_eq!(aolda.windows().last().unwrap().index, 4);
    }

    #[test]
    fn grow_vocab_widens_state_and_preserves_determinism() {
        // Reference: a model born at the larger vocabulary.
        let big = AoldaConfig {
            lda: LdaConfig {
                num_topics: 2,
                vocab_size: 12,
                ..LdaConfig::default()
            },
            passes_per_window: 25,
            ..AoldaConfig::default()
        };
        let small = AoldaConfig {
            lda: LdaConfig {
                vocab_size: 4,
                ..big.lda.clone()
            },
            ..big.clone()
        };

        // Growth widens history in place: every retained distribution and
        // λ snapshot matches the new width, and probabilities still
        // normalize (zero padding adds no mass).
        let mut grown = AdaptiveOnlineLda::new(small);
        grown.process_window(&storage_docs(8));
        grown.grow_vocab(12);
        assert_eq!(grown.config().lda.vocab_size, 12);
        for win in grown.windows() {
            for t in &win.topics {
                assert_eq!(t.distribution.len(), 12);
                let sum: f64 = t.distribution.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "padded topic sums to {sum}");
            }
        }

        // Windows processed after growth use the full width, and a novel
        // theme living entirely in the new columns is flagged emerging.
        grown.process_window(&storage_docs(8));
        let win = grown.process_window(&novel_docs(8));
        assert_eq!(win.topics[0].distribution.len(), 12);
        assert!(
            win.topics.iter().any(|t| t.emerging),
            "novel columns not emerging after growth: {:?}",
            win.topics.iter().map(|t| t.novelty).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grow_vocab_to_same_size_is_a_no_op() {
        let mut a = AdaptiveOnlineLda::new(config(2));
        let mut b = AdaptiveOnlineLda::new(config(2));
        a.process_window(&storage_docs(6));
        b.process_window(&storage_docs(6));
        a.grow_vocab(12);
        assert_eq!(
            a.process_window(&storage_docs(6)),
            b.process_window(&storage_docs(6))
        );
    }

    #[test]
    #[should_panic(expected = "only grow")]
    fn grow_vocab_rejects_shrinking() {
        let mut aolda = AdaptiveOnlineLda::new(config(2));
        aolda.grow_vocab(3);
    }

    #[test]
    fn doc_mixtures_are_normalized() {
        let mut aolda = AdaptiveOnlineLda::new(config(2));
        let win = aolda.process_window(&storage_docs(5));
        for m in &win.doc_mixtures {
            assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
