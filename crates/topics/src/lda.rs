//! Online variational-Bayes latent Dirichlet allocation.
//!
//! Implements the algorithm of Hoffman, Blei & Bach, *Online Learning for
//! Latent Dirichlet Allocation* (NIPS 2010): stochastic variational
//! inference where each minibatch contributes a noisy natural-gradient
//! step on the topic-word variational parameter λ with step size
//! `ρ_t = (τ₀ + t)^{−κ}`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use alertops_text::BagOfWords;

use crate::math::{digamma, dirichlet_expectation, normalize_in_place};

/// Configuration for [`OnlineLda`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of topics K.
    pub num_topics: usize,
    /// Vocabulary size W. Word ids ≥ `vocab_size` are ignored.
    pub vocab_size: usize,
    /// Dirichlet prior on per-document topic mixtures (symmetric).
    pub alpha: f64,
    /// Dirichlet prior on per-topic word distributions (symmetric).
    pub eta: f64,
    /// Learning-rate offset τ₀ (≥ 0); larger slows early updates.
    pub tau0: f64,
    /// Learning-rate decay κ ∈ (0.5, 1] for convergence guarantees.
    pub kappa: f64,
    /// Maximum E-step iterations per document.
    pub max_e_steps: usize,
    /// E-step convergence threshold on mean |Δγ|.
    pub e_step_tol: f64,
    /// Expected total corpus size D used to scale minibatch statistics.
    /// `None` uses the cumulative number of documents seen so far.
    pub corpus_size: Option<usize>,
    /// RNG seed for the λ initialization.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            num_topics: 10,
            vocab_size: 0,
            alpha: 0.1,
            eta: 0.01,
            tau0: 1.0,
            kappa: 0.7,
            max_e_steps: 100,
            e_step_tol: 1e-3,
            corpus_size: None,
            seed: 42,
        }
    }
}

/// Online variational-Bayes LDA.
///
/// See the [crate-level example](crate) for typical usage: create with a
/// config, feed minibatches via [`update_batch`](Self::update_batch),
/// query topic mixtures with [`infer`](Self::infer) and topic-word
/// distributions with [`topics`](Self::topics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineLda {
    config: LdaConfig,
    /// Variational parameter λ, K×W.
    lambda: Vec<Vec<f64>>,
    /// exp(E[log β]), K×W, kept in sync with λ.
    exp_elog_beta: Vec<Vec<f64>>,
    /// Number of minibatch updates applied so far.
    updates: u64,
    /// Number of documents seen so far.
    docs_seen: usize,
}

impl OnlineLda {
    /// Creates a model with λ initialized from a seeded gamma-like
    /// distribution (uniform in `[0.5, 1.5)` scaled by 100/W, matching
    /// the spirit of Hoffman's `gamma(100, 1/100)` init).
    ///
    /// # Panics
    ///
    /// Panics if `num_topics` or `vocab_size` is zero, or if `kappa` is
    /// outside `(0.5, 1.0]`.
    #[must_use]
    pub fn new(config: LdaConfig) -> Self {
        assert!(config.num_topics > 0, "num_topics must be positive");
        assert!(config.vocab_size > 0, "vocab_size must be positive");
        assert!(
            config.kappa > 0.5 && config.kappa <= 1.0,
            "kappa must lie in (0.5, 1] for convergence, got {}",
            config.kappa
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let lambda: Vec<Vec<f64>> = (0..config.num_topics)
            .map(|_| {
                (0..config.vocab_size)
                    .map(|_| 100.0 / config.vocab_size as f64 * rng.gen_range(0.5..1.5))
                    .collect()
            })
            .collect();
        let exp_elog_beta = lambda.iter().map(|row| exp_dirichlet_row(row)).collect();
        Self {
            config,
            lambda,
            exp_elog_beta,
            updates: 0,
            docs_seen: 0,
        }
    }

    /// The configuration this model was built with.
    #[must_use]
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// The number of minibatch updates applied.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The current learning rate ρ_t = (τ₀ + t)^{−κ}.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        (self.config.tau0 + self.updates as f64).powf(-self.config.kappa)
    }

    /// Applies one online update from a minibatch of documents and
    /// returns the batch's variational bound per word (higher is better),
    /// computed *before* the update — useful for convergence monitoring.
    ///
    /// Empty documents are skipped; an entirely empty batch is a no-op
    /// returning 0.
    pub fn update_batch(&mut self, batch: &[BagOfWords]) -> f64 {
        let nonempty: Vec<&BagOfWords> = batch.iter().filter(|d| !d.is_empty()).collect();
        if nonempty.is_empty() {
            return 0.0;
        }
        let k = self.config.num_topics;
        let w = self.config.vocab_size;
        let mut sstats = vec![vec![0.0; w]; k];
        let mut bound = 0.0;
        let mut word_total = 0u64;

        for doc in &nonempty {
            let (gamma, phi_contrib) = self.e_step(doc);
            // Accumulate sufficient statistics: sstats[k][w] += phi_kw * n_w.
            for (slot, &(id, count)) in phi_contrib.iter().zip(doc.iter()) {
                if id >= w {
                    continue;
                }
                for (topic, &p) in slot.iter().enumerate() {
                    sstats[topic][id] += p * f64::from(count);
                }
            }
            bound += self.doc_log_likelihood(doc, &gamma);
            word_total += doc.iter().map(|&(_, c)| u64::from(c)).sum::<u64>();
        }

        // M-step: blend λ toward the batch estimate with step ρ.
        let rho = self.learning_rate();
        self.docs_seen += nonempty.len();
        let d = self.config.corpus_size.unwrap_or(self.docs_seen) as f64;
        let scale = d / nonempty.len() as f64;
        for (lam_row, ss_row) in self.lambda.iter_mut().zip(&sstats) {
            for (lam, &ss) in lam_row.iter_mut().zip(ss_row) {
                *lam = (1.0 - rho) * *lam + rho * (self.config.eta + scale * ss);
            }
        }
        for (beta_row, lam_row) in self.exp_elog_beta.iter_mut().zip(&self.lambda) {
            *beta_row = exp_dirichlet_row(lam_row);
        }
        self.updates += 1;
        if word_total == 0 {
            0.0
        } else {
            bound / word_total as f64
        }
    }

    /// Infers the topic mixture θ of a document against the current
    /// topics (frozen; does not update the model). Returns a length-K
    /// probability vector; uniform for an empty document.
    #[must_use]
    pub fn infer(&self, doc: &BagOfWords) -> Vec<f64> {
        let k = self.config.num_topics;
        if doc.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let (mut gamma, _) = self.e_step(doc);
        normalize_in_place(&mut gamma);
        gamma
    }

    /// The current topic-word distributions: K rows, each a length-W
    /// probability vector (the normalized λ rows).
    #[must_use]
    pub fn topics(&self) -> Vec<Vec<f64>> {
        self.lambda
            .iter()
            .map(|row| {
                let mut r = row.clone();
                normalize_in_place(&mut r);
                r
            })
            .collect()
    }

    /// The `n` highest-probability word ids of topic `topic`.
    ///
    /// # Panics
    ///
    /// Panics if `topic >= num_topics`.
    #[must_use]
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let row = &self.lambda[topic];
        let mut ids: Vec<usize> = (0..row.len()).collect();
        ids.sort_unstable_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
        ids.truncate(n);
        ids
    }

    /// Per-word log likelihood of `corpus` under the current model
    /// (higher is better). Returns 0 for an empty corpus.
    #[must_use]
    pub fn score(&self, corpus: &[BagOfWords]) -> f64 {
        let mut total = 0.0;
        let mut words = 0u64;
        for doc in corpus.iter().filter(|d| !d.is_empty()) {
            let (gamma, _) = self.e_step(doc);
            total += self.doc_log_likelihood(doc, &gamma);
            words += doc.iter().map(|&(_, c)| u64::from(c)).sum::<u64>();
        }
        if words == 0 {
            0.0
        } else {
            total / words as f64
        }
    }

    /// Variational E-step for one document. Returns the converged γ and,
    /// per word position, the (unnormalized-then-normalized) topic
    /// responsibilities φ.
    fn e_step(&self, doc: &BagOfWords) -> (Vec<f64>, Vec<Vec<f64>>) {
        let k = self.config.num_topics;
        let mut gamma = vec![self.config.alpha + 1.0; k];
        let mut exp_elog_theta: Vec<f64> = dirichlet_expectation(&gamma)
            .into_iter()
            .map(f64::exp)
            .collect();

        let ids: Vec<usize> = doc.iter().map(|&(id, _)| id).collect();
        let counts: Vec<f64> = doc.iter().map(|&(_, c)| f64::from(c)).collect();

        let phinorm = |theta: &[f64]| -> Vec<f64> {
            ids.iter()
                .map(|&id| {
                    let mut s = 1e-100;
                    if id < self.config.vocab_size {
                        for (topic, t) in theta.iter().enumerate() {
                            s += t * self.exp_elog_beta[topic][id];
                        }
                    }
                    s
                })
                .collect()
        };
        let mut norms = phinorm(&exp_elog_theta);

        for _ in 0..self.config.max_e_steps {
            let last_gamma = gamma.clone();
            for (topic, g) in gamma.iter_mut().enumerate() {
                let mut dot = 0.0;
                for ((&id, &count), &norm) in ids.iter().zip(&counts).zip(&norms) {
                    if id < self.config.vocab_size {
                        dot += count / norm * self.exp_elog_beta[topic][id];
                    }
                }
                *g = self.config.alpha + exp_elog_theta[topic] * dot;
            }
            exp_elog_theta = dirichlet_expectation(&gamma)
                .into_iter()
                .map(f64::exp)
                .collect();
            norms = phinorm(&exp_elog_theta);
            let mean_change: f64 = gamma
                .iter()
                .zip(&last_gamma)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / k as f64;
            if mean_change < self.config.e_step_tol {
                break;
            }
        }

        // Final responsibilities φ for sufficient statistics.
        let phi: Vec<Vec<f64>> = ids
            .iter()
            .zip(&norms)
            .map(|(&id, &norm)| {
                (0..k)
                    .map(|topic| {
                        if id < self.config.vocab_size {
                            exp_elog_theta[topic] * self.exp_elog_beta[topic][id] / norm
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        (gamma, phi)
    }

    /// log p(doc | θ̂, β̂) with θ̂ the normalized γ and β̂ the normalized λ —
    /// a cheap likelihood proxy adequate for monitoring and tests.
    fn doc_log_likelihood(&self, doc: &BagOfWords, gamma: &[f64]) -> f64 {
        let mut theta = gamma.to_vec();
        normalize_in_place(&mut theta);
        let lambda_sums: Vec<f64> = self.lambda.iter().map(|r| r.iter().sum()).collect();
        doc.iter()
            .filter(|&&(id, _)| id < self.config.vocab_size)
            .map(|&(id, count)| {
                let p_word: f64 = theta
                    .iter()
                    .enumerate()
                    .map(|(topic, &t)| t * self.lambda[topic][id] / lambda_sums[topic])
                    .sum();
                f64::from(count) * p_word.max(1e-300).ln()
            })
            .sum()
    }

    /// Direct access to the unnormalized variational parameter λ
    /// (K rows × W columns). Exposed for AOLDA's adaptive priors.
    #[must_use]
    pub fn lambda(&self) -> &[Vec<f64>] {
        &self.lambda
    }

    /// Replaces λ wholesale (dimensions must match) and refreshes the
    /// cached `exp(E[log β])`. Used by AOLDA to seed a window's model
    /// from adapted priors.
    ///
    /// # Panics
    ///
    /// Panics if the shape of `lambda` is not K×W or any entry is not
    /// strictly positive.
    pub fn set_lambda(&mut self, lambda: Vec<Vec<f64>>) {
        assert_eq!(lambda.len(), self.config.num_topics, "lambda row count");
        for row in &lambda {
            assert_eq!(row.len(), self.config.vocab_size, "lambda column count");
            assert!(
                row.iter().all(|&x| x > 0.0),
                "lambda entries must be positive"
            );
        }
        self.exp_elog_beta = lambda.iter().map(|row| exp_dirichlet_row(row)).collect();
        self.lambda = lambda;
    }
}

/// exp(ψ(λ_w) − ψ(Σλ)) for one row.
fn exp_dirichlet_row(row: &[f64]) -> Vec<f64> {
    let total: f64 = row.iter().sum();
    let psi_total = digamma(total);
    row.iter()
        .map(|&x| (digamma(x) - psi_total).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint word clusters: ids 0..3 ("storage" words) and
    /// 4..7 ("memory" words).
    fn synthetic_corpus() -> Vec<BagOfWords> {
        let mut docs = Vec::new();
        for i in 0..20 {
            if i % 2 == 0 {
                docs.push(vec![(0, 2), (1, 1), (2, 1), (3, 2)]);
            } else {
                docs.push(vec![(4, 2), (5, 1), (6, 2), (7, 1)]);
            }
        }
        docs
    }

    fn config(k: usize) -> LdaConfig {
        LdaConfig {
            num_topics: k,
            vocab_size: 8,
            corpus_size: Some(20),
            ..LdaConfig::default()
        }
    }

    #[test]
    fn topics_are_probability_distributions() {
        let mut lda = OnlineLda::new(config(2));
        for _ in 0..5 {
            lda.update_batch(&synthetic_corpus());
        }
        for row in lda.topics() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn separates_disjoint_clusters() {
        let mut lda = OnlineLda::new(config(2));
        for _ in 0..30 {
            lda.update_batch(&synthetic_corpus());
        }
        // The top-4 words of the two topics should be the two clusters.
        let mut t0: Vec<usize> = lda.top_words(0, 4);
        let mut t1: Vec<usize> = lda.top_words(1, 4);
        t0.sort_unstable();
        t1.sort_unstable();
        let clusters = [vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        assert!(
            (t0 == clusters[0] && t1 == clusters[1]) || (t0 == clusters[1] && t1 == clusters[0]),
            "topics did not separate clusters: {t0:?} vs {t1:?}"
        );
    }

    #[test]
    fn inference_assigns_doc_to_its_cluster_topic() {
        let mut lda = OnlineLda::new(config(2));
        for _ in 0..30 {
            lda.update_batch(&synthetic_corpus());
        }
        let storage_doc = vec![(0, 3), (2, 2)];
        let memory_doc = vec![(5, 3), (7, 2)];
        let ts = lda.infer(&storage_doc);
        let tm = lda.infer(&memory_doc);
        let dominant = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_ne!(dominant(&ts), dominant(&tm));
        assert!(ts.iter().cloned().fold(f64::MIN, f64::max) > 0.8);
    }

    #[test]
    fn training_improves_score() {
        let corpus = synthetic_corpus();
        let mut lda = OnlineLda::new(config(2));
        let before = lda.score(&corpus);
        for _ in 0..30 {
            lda.update_batch(&corpus);
        }
        let after = lda.score(&corpus);
        assert!(after > before, "score did not improve: {before} -> {after}");
    }

    #[test]
    fn infer_returns_normalized_mixture() {
        let lda = OnlineLda::new(config(3));
        let doc = vec![(1, 2), (6, 1)];
        let theta = lda.infer(&doc);
        assert_eq!(theta.len(), 3);
        assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Empty doc → uniform.
        let theta = lda.infer(&Vec::new());
        assert!(theta.iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut lda = OnlineLda::new(config(2));
        let lambda_before = lda.lambda().to_vec();
        let bound = lda.update_batch(&[]);
        assert_eq!(bound, 0.0);
        assert_eq!(lda.updates(), 0);
        assert_eq!(lda.lambda(), &lambda_before[..]);
    }

    #[test]
    fn learning_rate_decays() {
        let mut lda = OnlineLda::new(config(2));
        let r0 = lda.learning_rate();
        lda.update_batch(&synthetic_corpus());
        let r1 = lda.learning_rate();
        assert!(r1 < r0);
        assert!(r0 <= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = OnlineLda::new(config(2));
        let mut b = OnlineLda::new(config(2));
        a.update_batch(&synthetic_corpus());
        b.update_batch(&synthetic_corpus());
        assert_eq!(a.lambda(), b.lambda());
        let mut c = OnlineLda::new(LdaConfig {
            seed: 7,
            ..config(2)
        });
        c.update_batch(&synthetic_corpus());
        assert_ne!(a.lambda(), c.lambda());
    }

    #[test]
    fn out_of_vocab_ids_are_ignored() {
        let mut lda = OnlineLda::new(config(2));
        let weird = vec![vec![(0, 1), (999, 5)]];
        lda.update_batch(&weird); // must not panic
        let theta = lda.infer(&vec![(999, 3)]);
        assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn rejects_bad_kappa() {
        let _ = OnlineLda::new(LdaConfig {
            kappa: 0.3,
            ..config(2)
        });
    }

    #[test]
    fn set_lambda_roundtrip() {
        let mut lda = OnlineLda::new(config(2));
        let mut lam = lda.lambda().to_vec();
        lam[0][0] = 5.0;
        lda.set_lambda(lam.clone());
        assert_eq!(lda.lambda(), &lam[..]);
    }

    #[test]
    #[should_panic(expected = "lambda row count")]
    fn set_lambda_rejects_bad_shape() {
        let mut lda = OnlineLda::new(config(2));
        lda.set_lambda(vec![vec![1.0; 8]]);
    }
}
